"""Legacy setup shim: lets ``pip install -e .`` / ``setup.py develop``
work in offline environments that lack the ``wheel`` package."""
from setuptools import setup

setup()
