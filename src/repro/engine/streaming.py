"""Streaming round execution: fixed-size column blocks, lazy pools.

The monolithic engine materialises every relation's full delivery pool
in parent memory each round -- ``O(n x replication)`` bytes, which is
what caps the repository at n=1e6 (ROADMAP item 2).  The MPC model
itself never requires that: it charges each *server* for what it
receives per round, so a faithful simulation only ever needs per-worker
loads (a ``p``-length bincount) plus, at local-evaluation time, one
worker subrange's fragments at a time.

This module holds the data-structure layer of that streaming mode:

* :func:`iter_blocks` -- the ``[start, end)`` block schedule of a
  relation under a ``chunk_rows`` budget.  Blocks are numpy *views*
  over the source columns (no row copies); the transient routing state
  per block is ``O(chunk_rows x replication)``.
* :class:`PoolBuilder` -- accumulates per-block worker-grouped
  mini-pools and finalises them into one
  :class:`~repro.mpc.simulator.ColumnPool` with a k-way per-worker
  merge (one pass of slice copies, freeing each block as it goes)
  instead of one monolithic stable sort.  Because blocks arrive in
  ascending source order, a single source-sorted stream stays
  source-sorted through the merge -- the sort-free direct-address join
  keeps its precondition; multiple interleaved streams fall back to
  ``source_sorted=False`` exactly like the monolithic multi-stage path.
* :class:`LazyContribution` -- one streamed routing step's delivery,
  recorded as *recipe* (step + source columns + block schedule) rather
  than materialised rows.  Loads are accounted eagerly from a counting
  pass; rows are only produced on demand, one worker shard at a time,
  through :func:`materialize_shard`.
* :func:`plan_worker_shards` -- contiguous worker ranges whose pooled
  bytes fit a budget, so shard-wise evaluation's peak memory is
  ``O(shard budget)`` independent of ``n``.

Parity contract: a streamed execution re-routes blocks with the exact
:meth:`~repro.engine.steps.RoutingStep.route_columns` code the
monolithic path uses, restricted to shardable steps (routing depends
on row content only), so the multiset of (row, destination) pairs --
and therefore answers, per-server loads and capacity behaviour -- is
identical by construction.  The cost of never holding the full pool is
recomputation: each worker shard re-routes the source blocks, an
accepted CPU-for-memory trade bounded by ``1 + num_shards`` routing
passes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.backend import require_numpy
from repro.mpc.simulator import ColumnPool

#: Environment knob for the default streaming block size (rows per
#: block).  Unset / empty / "0" / "none" means monolithic execution.
CHUNK_ROWS_ENV = "REPRO_CHUNK_ROWS"

#: Environment knob for the shard-wise evaluation budget: target bytes
#: of pooled rows materialised per worker shard.
SHARD_BYTES_ENV = "REPRO_SHARD_BYTES"

#: Default shard budget: large enough that the join's transient arrays
#: stay cache-friendly multiples of it, small enough that budget plus
#: ~2-3x join temporaries fits the streaming RSS gates.
DEFAULT_SHARD_BYTES = 512 * 1024 * 1024


def resolve_chunk_rows(chunk_rows: int | None = None) -> int | None:
    """The effective streaming block size, or None for monolithic.

    An explicit argument wins; otherwise the ``REPRO_CHUNK_ROWS``
    environment variable is consulted.  Non-positive, unset and
    ``"none"``/``"inf"`` values all mean "monolithic" -- chunk size
    infinity degenerates to today's code path by definition.
    """
    if chunk_rows is None:
        raw = os.environ.get(CHUNK_ROWS_ENV, "").strip().lower()
        if not raw or raw in ("none", "inf"):
            return None
        try:
            chunk_rows = int(raw)
        except ValueError:
            raise ValueError(
                f"{CHUNK_ROWS_ENV} must be an integer, got {raw!r}"
            ) from None
    if chunk_rows is None or chunk_rows <= 0:
        return None
    return int(chunk_rows)


def resolve_shard_bytes(shard_bytes: int | None = None) -> int:
    """The effective shard-wise evaluation budget in bytes."""
    if shard_bytes is None:
        raw = os.environ.get(SHARD_BYTES_ENV, "").strip()
        if raw:
            shard_bytes = int(raw)
    if shard_bytes is None or shard_bytes <= 0:
        return DEFAULT_SHARD_BYTES
    return int(shard_bytes)


def iter_blocks(
    num_rows: int, chunk_rows: int
) -> Iterator[tuple[int, int]]:
    """The ``[start, end)`` block schedule of ``num_rows`` rows.

    An empty relation yields no blocks; the final block may be short.
    """
    if chunk_rows < 1:
        raise ValueError(f"need chunk_rows >= 1, got {chunk_rows}")
    for start in range(0, num_rows, chunk_rows):
        yield start, min(start + chunk_rows, num_rows)


class PoolBuilder:
    """Accumulate worker-grouped block pools; merge once at the end.

    Each appended block is already grouped by receiving worker (a
    small per-block stable sort); :meth:`finalize` k-way merges the
    blocks per worker with one allocation and a single pass of slice
    copies.  Within each worker, rows keep block order -- blocks are
    appended in ascending source order, so a single source-sorted
    stream's fragments stay sorted through the merge.

    Appending pools from more than one ``stream`` (distinct routing
    steps feeding one relation) clears ``source_sorted``, mirroring the
    monolithic multi-stage conservatism.
    """

    def __init__(
        self, num_workers: int, arity: int | None = None
    ) -> None:
        self.num_workers = num_workers
        self._blocks: list[ColumnPool] = []
        self._streams: set[Any] = set()
        self._sorted = True
        self._arity = arity

    def append(
        self, block: ColumnPool, stream: Any = None, sorted_block: bool = True
    ) -> None:
        """Add one worker-grouped block pool (in source order)."""
        if block.num_workers != self.num_workers:
            raise ValueError(
                f"block covers {block.num_workers} workers, "
                f"builder covers {self.num_workers}"
            )
        if self._arity is None:
            self._arity = len(block.columns)
        self._streams.add(stream)
        if not sorted_block or len(self._streams) > 1:
            self._sorted = False
        if len(block):
            self._blocks.append(block)

    def finalize(self) -> ColumnPool:
        """Merge the appended blocks into one worker-grouped pool.

        Blocks are released as their rows are copied out, so the peak
        is the final pool plus one block -- not twice the pool.
        """
        numpy = require_numpy()
        p = self.num_workers
        blocks = self._blocks
        self._blocks = []
        if not blocks:
            arity = self._arity or 0
            return ColumnPool(
                columns=tuple(
                    numpy.zeros(0, dtype=numpy.int64) for _ in range(arity)
                ),
                offsets=numpy.zeros(p + 1, dtype=numpy.int64),
                source_sorted=self._sorted,
            )
        if len(blocks) == 1:
            block = blocks[0]
            return ColumnPool(
                columns=block.columns,
                offsets=block.offsets,
                source_sorted=self._sorted and block.source_sorted,
            )
        counts = numpy.zeros(p, dtype=numpy.int64)
        for block in blocks:
            counts += block.offsets[1:] - block.offsets[:-1]
        offsets = numpy.zeros(p + 1, dtype=numpy.int64)
        numpy.cumsum(counts, out=offsets[1:])
        total = int(offsets[-1])
        arity = len(blocks[0].columns)
        columns = tuple(
            numpy.empty(total, dtype=numpy.int64) for _ in range(arity)
        )
        cursor = offsets[:-1].copy()
        while blocks:
            block = blocks.pop(0)
            block_counts = block.offsets[1:] - block.offsets[:-1]
            for worker in numpy.nonzero(block_counts)[0].tolist():
                start = int(cursor[worker])
                end = start + int(block_counts[worker])
                for position in range(arity):
                    columns[position][start:end] = block.columns[position][
                        int(block.offsets[worker]) : int(
                            block.offsets[worker + 1]
                        )
                    ]
                cursor[worker] = end
        return ColumnPool(
            columns=columns, offsets=offsets, source_sorted=self._sorted
        )


def bin_block(
    columns: tuple,
    destinations: Any,
    row_indices: Any,
    num_workers: int,
    lo: int = 0,
    hi: int | None = None,
) -> ColumnPool:
    """Group one routed block by receiving worker, rebased to [lo, hi).

    ``columns``/``destinations``/``row_indices`` are one
    :meth:`~repro.engine.steps.RoutingStep.route_columns` triple.
    Destinations outside ``[lo, hi)`` are dropped (the shard
    restriction); the stable grouping keeps the step's per-worker
    emission order, so order-preserving steps yield source-sorted
    fragments.
    """
    numpy = require_numpy()
    if hi is None:
        hi = num_workers
    width = hi - lo
    if lo == 0 and hi == num_workers:
        local = destinations
        mask = None
    else:
        mask = (destinations >= lo) & (destinations < hi)
        local = destinations[mask] - lo
    if row_indices is None:
        gather = (
            None
            if mask is None
            else numpy.nonzero(mask)[0]
        )
    else:
        gather = row_indices if mask is None else row_indices[mask]
    if width == 1:
        # Single-worker shard: every kept row lands in the one bucket,
        # in emission order -- no sort needed.
        selected = gather
        offsets = numpy.array([0, len(local)], dtype=numpy.int64)
    else:
        order = numpy.argsort(local, kind="stable")
        selected = order if gather is None else gather[order]
        offsets = numpy.searchsorted(
            local[order] if len(local) else local,
            numpy.arange(width + 1, dtype=numpy.int64),
        ).astype(numpy.int64)
    if selected is None:
        pooled = columns
    else:
        pooled = tuple(column[selected] for column in columns)
    return ColumnPool(columns=pooled, offsets=offsets, source_sorted=True)


@dataclass(frozen=True)
class LazyContribution:
    """One streamed step's delivery, as a re-routable recipe.

    Attributes:
        step: the shardable routing step that produced the delivery.
        columns: the source relation's value columns at routing time
            (streamed sources are immutable for the execution's life,
            so holding the views is safe and free).
        num_rows: source row count (blocks are planned from it).
        chunk_rows: the block size the counting pass used; shard
            materialisation re-routes with the same schedule.
        source_sorted: the step's per-receiver order promise
            (:attr:`~repro.engine.steps.RoutingStep.preserves_source_order`).
    """

    step: Any
    columns: tuple
    num_rows: int
    chunk_rows: int
    source_sorted: bool


def route_block_counts(
    step: Any, columns: tuple, num_rows: int, chunk_rows: int, p: int
) -> Any:
    """Per-worker delivered-tuple counts of one step, block by block.

    The streaming counting pass: routes every block with the exact
    monolithic :meth:`route_columns` code and bincounts destinations,
    discarding the arrays immediately -- identical totals to the
    monolithic send, ``O(chunk x replication)`` transient memory.
    """
    numpy = require_numpy()
    counts = numpy.zeros(p, dtype=numpy.int64)
    for start, end in iter_blocks(num_rows, chunk_rows):
        block = tuple(column[start:end] for column in columns)
        _, destinations, _ = step.route_columns(block, p)
        if len(destinations):
            low = int(destinations.min())
            high = int(destinations.max())
            if low < 0 or high >= p:
                from repro.mpc.simulator import ProtocolError

                offender = low if low < 0 else high
                raise ProtocolError(
                    f"receiver {offender} outside [0, {p})"
                )
            counts += numpy.bincount(destinations, minlength=p)
    return counts


def materialize_shard(
    contributions: Sequence[LazyContribution],
    lo: int,
    hi: int,
    p: int,
    extra_blocks: Sequence[ColumnPool] = (),
) -> ColumnPool:
    """Materialise workers ``[lo, hi)`` of one relation's lazy pool.

    Re-routes every contribution's blocks, keeps only destinations in
    the shard, and merges through a :class:`PoolBuilder`.
    ``extra_blocks`` lets callers mix in already-delivered eager pools
    of the same relation (pre-sharded to ``[lo, hi)``); more than one
    total stream clears ``source_sorted`` exactly like the monolithic
    multi-stage path.
    """
    arity = None
    for block in extra_blocks:
        arity = len(block.columns)
        break
    if arity is None:
        for contribution in contributions:
            arity = len(contribution.columns)
            break
    builder = PoolBuilder(hi - lo, arity=arity)
    for index, block in enumerate(extra_blocks):
        builder.append(
            block,
            stream=("extra", index),
            sorted_block=block.source_sorted,
        )
    for index, contribution in enumerate(contributions):
        step = contribution.step
        for start, end in iter_blocks(
            contribution.num_rows, contribution.chunk_rows
        ):
            block = tuple(
                column[start:end] for column in contribution.columns
            )
            columns, destinations, row_indices = step.route_columns(
                block, p
            )
            builder.append(
                bin_block(columns, destinations, row_indices, p, lo, hi),
                stream=("lazy", index),
                sorted_block=contribution.source_sorted,
            )
    return builder.finalize()


def plan_worker_shards(
    byte_counts: Any, num_workers: int, shard_bytes: int
) -> list[tuple[int, int]]:
    """Contiguous worker ranges whose pooled bytes fit the budget.

    ``byte_counts`` holds the pooled bytes each worker's fragments
    would occupy; ranges are grown greedily until adding the next
    worker would exceed ``shard_bytes`` (every range holds at least
    one worker, so oversized single workers still evaluate -- just
    over budget, which is the best any contiguous split can do).
    """
    shards: list[tuple[int, int]] = []
    lo = 0
    while lo < num_workers:
        hi = lo + 1
        running = int(byte_counts[lo])
        while (
            hi < num_workers
            and running + int(byte_counts[hi]) <= shard_bytes
        ):
            running += int(byte_counts[hi])
            hi += 1
        shards.append((lo, hi))
        lo = hi
    return shards
