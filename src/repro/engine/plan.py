"""The physical plan IR: compile once, execute many times.

Every algorithm in :mod:`repro.algorithms` is split into a pure *plan
compiler* -- a function of the query and the MPC parameters only, never
of the data -- and plan *execution*
(:func:`repro.engine.executor.execute_plan`).  A :class:`Plan` is the
immutable value passed across that seam:

* an ordered program of rounds, each a tuple of
  :class:`~repro.engine.steps.RoutingStep`s plus the views to
  materialise after delivery (:class:`ViewSpec`) and any
  data-dependent binding to perform at execute time
  (:class:`HeavyBind` -- heavy-hitter detection is round-1 statistics
  work, so it belongs to execution, not compilation);
* a final local-evaluation spec (:class:`CollectAnswers` for one-shot
  queries, :class:`FinalizeView` for multi-round plans whose answer is
  a materialised view);
* metadata identifying the compilation: query text, ``eps``, ``p``,
  backend, seed, capacity constants (:class:`PlanSignature`) and the
  integer share vector used.

Because compilation is deterministic and data-independent, a plan can
be cached keyed by its signature and re-executed against any database
over the same vocabulary -- the seam the serving layer
(:mod:`repro.serve`) builds on.  Executing the same plan twice on the
same database is bit-identical in answers, per-server loads and
capacity failures by construction.

Iterative algorithms whose rounds are data-dependent (hash-to-min
connected components) compile to a plan with a :class:`FixpointSpec`
instead of a static round list; their driver re-uses the engine for
every round but owns the fixpoint loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable

from repro.core.query import ConjunctiveQuery
from repro.core.shares import ShareAllocation
from repro.engine.steps import GridSpec, RoutingStep

#: Pairs ``(atom name, mailbox key)`` -- the immutable form of the
#: ``key_of`` callables the local-evaluation helpers take.
KeyMap = tuple[tuple[str, str], ...]


def key_map_of(key_map: KeyMap) -> Callable[[str], str]:
    """A ``key_of`` callable from an immutable :data:`KeyMap`.

    Atom names absent from the map key their own name (identity), so
    an empty map is the common single-round case.
    """
    table = dict(key_map)
    return lambda name: table.get(name, name)


@dataclass(frozen=True)
class PlanSignature:
    """What a plan was compiled *for* -- the cache identity.

    Attributes:
        algorithm: compiler name (``"hypercube"``, ``"multiround"``,
            ``"skewaware"``, ...).
        query_text: canonical text of the compiled query (or logical
            plan) -- ``str(query)`` includes head order, atom order
            and variable names, all of which the routing depends on.
        eps: the space exponent of the capacity accounting.
        p: number of workers.
        backend: resolved compute backend (``"pure"`` / ``"numpy"``).
        seed: hash-family seed.
        capacity_c: the constant of the capacity bound.
        enforce_capacity: whether execution raises on overload.
    """

    algorithm: str
    query_text: str
    eps: Fraction
    p: int
    backend: str
    seed: int
    capacity_c: float
    enforce_capacity: bool

    @property
    def cache_key(self) -> tuple:
        """Hashable identity for plan / routing / result caches."""
        return (
            self.algorithm,
            self.query_text,
            self.eps,
            self.p,
            self.backend,
            self.seed,
            self.capacity_c,
            self.enforce_capacity,
        )


@dataclass(frozen=True)
class ViewSpec:
    """Materialise one operator's output view after a round delivers.

    Attributes:
        name: the view's name in the execution environment.
        query: the operator query evaluated at every worker; the
            view's schema is ``query.head``.
        key_map: mailbox key per atom (the multi-round executor
            namespaces step deliveries per operator).
    """

    name: str
    query: ConjunctiveQuery
    key_map: KeyMap = ()


@dataclass(frozen=True)
class HeavyBind:
    """Execute-time binding of heavy hitters into a round's steps.

    Heavy-hitter detection reads the data (legal round-1 statistics
    work, Section 2.4), so a skew-aware plan carries this declarative
    marker instead of baked-in heavy sets: before routing, the
    executor detects heavy values under ``shares`` and rebinds every
    :class:`~repro.engine.steps.HeavyGridRoute` of the round.
    """

    query: ConjunctiveQuery
    shares: tuple[tuple[str, int], ...]


@dataclass(frozen=True)
class PlanRound:
    """One communication round of a plan."""

    steps: tuple[RoutingStep, ...]
    views: tuple[ViewSpec, ...] = ()
    bind_heavy: HeavyBind | None = None


@dataclass(frozen=True)
class CollectAnswers:
    """Final local evaluation: join fragments at every worker, union.

    Attributes:
        query: the conjunctive query each worker evaluates.
        workers: evaluate workers ``0..workers-1`` (the grid's used
            servers); per-server counts are zero-padded to ``p``.
        key_map: mailbox key per atom (identity when empty).
    """

    query: ConjunctiveQuery
    workers: int
    key_map: KeyMap = ()


@dataclass(frozen=True)
class FinalizeView:
    """The answer is a materialised view, re-ordered to ``head``."""

    view: str
    head: tuple[str, ...]


@dataclass(frozen=True)
class FixpointSpec:
    """An iterate-until-fixpoint round template (hash-to-min).

    Attributes:
        grid: the (data-independent) routing grid of every iteration.
        relation_prefix: per-iteration mailbox keys are
            ``f"{relation_prefix}{iteration}"`` (fresh key per round
            keeps each delivery pool single-use).
        max_rounds: safety bound on iterations.
    """

    grid: GridSpec
    relation_prefix: str
    max_rounds: int


@dataclass(frozen=True)
class Plan:
    """An immutable, data-independent physical plan.

    Attributes:
        signature: what the plan was compiled for (cache identity).
        rounds: the routing-step program, in execution order.
        finalize: how the answer is produced after the last round
            (None for plans whose caller post-processes the simulator
            directly, e.g. the cartesian-grid baseline).
        allocation: the integer share grid, when the algorithm uses
            one (diagnostics and result metadata).
        fixpoint: set instead of ``rounds`` for iterative algorithms;
            such plans are executed by their algorithm's driver, not
            :func:`~repro.engine.executor.execute_plan`.
        uniform_domain_bits: charge every source relation's tuples at
            the database's domain width (the tuple-based multi-round
            discipline where views and base tuples cost the same).
    """

    signature: PlanSignature
    rounds: tuple[PlanRound, ...] = ()
    finalize: CollectAnswers | FinalizeView | None = None
    allocation: ShareAllocation | None = None
    fixpoint: FixpointSpec | None = None
    uniform_domain_bits: bool = False

    @property
    def num_rounds(self) -> int:
        """Static round count (0 for fixpoint plans)."""
        return len(self.rounds)

    def describe(self) -> dict:
        """Explain metadata: a JSON-friendly structural summary.

        The execution-side half of an explain report -- what the
        compiled program actually looks like (the planner's
        :class:`~repro.planner.Explain` covers the *why*).  Includes
        per-round step types and grids, view materialisations,
        heavy-hitter binding points, the finalize spec and the share
        vector.
        """
        rounds: list[dict] = []
        for plan_round in self.rounds:
            steps: list[dict] = []
            for step in plan_round.steps:
                entry: dict = {
                    "type": type(step).__name__,
                    "relation": step.relation,
                }
                if step.destination is not None:
                    entry["mailbox"] = step.destination
                grid = getattr(step, "grid", None)
                if grid is None:
                    inner = getattr(step, "inner", None)
                    grid = getattr(inner, "grid", None)
                if grid is not None:
                    entry["grid"] = dict(
                        zip(grid.variables, grid.dimensions)
                    )
                virtual = getattr(step, "virtual_size", None)
                if virtual is not None:
                    entry["virtual_grid_points"] = virtual
                steps.append(entry)
            round_entry: dict = {"steps": steps}
            if plan_round.views:
                round_entry["views"] = [
                    view.name for view in plan_round.views
                ]
            if plan_round.bind_heavy is not None:
                round_entry["binds_heavy_hitters"] = True
            rounds.append(round_entry)
        finalize: dict | None = None
        if isinstance(self.finalize, CollectAnswers):
            finalize = {
                "type": "CollectAnswers",
                "workers": self.finalize.workers,
            }
        elif isinstance(self.finalize, FinalizeView):
            finalize = {
                "type": "FinalizeView",
                "view": self.finalize.view,
                "head": list(self.finalize.head),
            }
        signature = self.signature
        return {
            "algorithm": signature.algorithm,
            "query": signature.query_text,
            "eps": str(signature.eps),
            "p": signature.p,
            "backend": signature.backend,
            "seed": signature.seed,
            "rounds": rounds,
            "num_rounds": self.num_rounds,
            "finalize": finalize,
            "shares": dict(self.allocation.shares)
            if self.allocation is not None
            else None,
            "fixpoint": {
                "relation_prefix": self.fixpoint.relation_prefix,
                "max_rounds": self.fixpoint.max_rounds,
            }
            if self.fixpoint is not None
            else None,
        }

    def relations(self) -> tuple[str, ...]:
        """Source relations the plan reads from the database.

        View names produced by earlier rounds are excluded: only names
        the *database* must provide are returned (the keys a serving
        rebind must map).
        """
        produced: set[str] = set()
        needed: list[str] = []
        for plan_round in self.rounds:
            for step in plan_round.steps:
                if step.relation not in produced and step.relation not in needed:
                    needed.append(step.relation)
            for view in plan_round.views:
                produced.add(view.name)
        return tuple(needed)
