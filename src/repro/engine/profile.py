"""Per-round phase timing for the engine's hot paths.

A :class:`RoundProfiler` splits the wall-clock of an execution into
the phases the cost model talks about:

* ``route``  -- computing destinations (hashing, grid ranking);
* ``ship``   -- staging the routed tuples on the simulator;
* ``deliver``-- closing the round (pooling, capacity accounting);
* ``local``  -- post-round local evaluation (joins, views).

Every executor accepts an optional ``profiler=`` and feeds it through
:meth:`RoundProfiler.measure`; the CLI's ``--profile`` flag prints the
resulting per-round breakdown, which is how the "where does the time
go" question that motivates local-evaluation optimisations is one
command away.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

PHASES = ("route", "ship", "deliver", "local")


class RoundProfiler:
    """Accumulates per-(round, phase) wall-clock seconds.

    When the parallel engine fans a round's route phase out over a
    process pool, each shard's worker-side seconds are recorded
    separately (:meth:`add_shard`), so ``--profile`` can show both the
    parent's wall clock for the phase and how evenly the shards split
    the work under it.
    """

    def __init__(self) -> None:
        self.rounds: dict[int, dict[str, float]] = {}
        #: round index -> list of (shard index, worker-side seconds).
        self.shards: dict[int, list[tuple[int, float]]] = {}
        #: round index -> phase -> per-block seconds, in block order
        #: (streamed executions record every block's route/ship/eval
        #: time here; empty for monolithic runs).
        self.blocks: dict[int, dict[str, list[float]]] = {}
        #: round index -> seconds the next round's routing ran
        #: concurrently with this round's local evaluation (streamed
        #: pipelining; concurrent time, deliberately not part of any
        #: additive phase total).
        self.overlap: dict[int, float] = {}

    def add(self, round_index: int, phase: str, seconds: float) -> None:
        """Record ``seconds`` against one round's phase."""
        phases = self.rounds.setdefault(round_index, {})
        phases[phase] = phases.get(phase, 0.0) + seconds

    @contextmanager
    def measure(self, round_index: int, phase: str) -> Iterator[None]:
        """Time a block and record it under ``(round_index, phase)``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(round_index, phase, time.perf_counter() - start)

    def add_shard(
        self, round_index: int, shard_index: int, seconds: float
    ) -> None:
        """Record one shard's worker-side route seconds for a round."""
        self.shards.setdefault(round_index, []).append(
            (shard_index, seconds)
        )

    def add_block(
        self, round_index: int, phase: str, seconds: float
    ) -> None:
        """Record one streamed block's seconds for a round's phase."""
        self.blocks.setdefault(round_index, {}).setdefault(
            phase, []
        ).append(seconds)

    def add_overlap(self, round_index: int, seconds: float) -> None:
        """Record pipelined overlap seconds against one round."""
        self.overlap[round_index] = (
            self.overlap.get(round_index, 0.0) + seconds
        )

    @property
    def overlap_seconds(self) -> float:
        """Total seconds local eval ran concurrently with routing."""
        return sum(self.overlap.values())

    def shard_seconds(self, round_index: int) -> tuple[float, ...]:
        """Worker-side seconds of each shard of one round, in order."""
        return tuple(
            seconds
            for _, seconds in sorted(self.shards.get(round_index, []))
        )

    def phase_total(self, phase: str) -> float:
        """Total seconds spent in one phase across all rounds."""
        return sum(
            phases.get(phase, 0.0) for phases in self.rounds.values()
        )

    @property
    def total_seconds(self) -> float:
        """Total profiled seconds across all rounds and phases."""
        return sum(
            sum(phases.values()) for phases in self.rounds.values()
        )

    def format_table(self, title: str = "per-round timing") -> str:
        """The breakdown as a printable table (CLI ``--profile``)."""
        from repro.analysis.reporting import format_table

        rows = []
        for round_index in sorted(self.rounds):
            phases = self.rounds[round_index]
            rows.append(
                [round_index]
                + [f"{phases.get(phase, 0.0):.4f}" for phase in PHASES]
                + [f"{self.overlap.get(round_index, 0.0):.4f}"]
                + [f"{sum(phases.values()):.4f}"]
            )
        rows.append(
            ["total"]
            + [f"{self.phase_total(phase):.4f}" for phase in PHASES]
            + [f"{self.overlap_seconds:.4f}"]
            + [f"{self.total_seconds:.4f}"]
        )
        table = format_table(
            ["round"]
            + [f"{phase} (s)" for phase in PHASES]
            + ["overlap (s)", "sum (s)"],
            rows,
            title=title,
        )
        if self.blocks:
            block_rows = []
            for round_index in sorted(self.blocks):
                for phase, timings in self.blocks[round_index].items():
                    block_rows.append(
                        [
                            round_index,
                            phase,
                            len(timings),
                            f"{min(timings):.4f}",
                            f"{max(timings):.4f}",
                            f"{sum(timings):.4f}",
                        ]
                    )
            table = table + "\n" + format_table(
                ["round", "phase", "blocks", "min (s)", "max (s)", "sum (s)"],
                block_rows,
                title="per-block streaming timing",
            )
        if not self.shards:
            return table
        shard_rows = []
        for round_index in sorted(self.shards):
            timings = self.shard_seconds(round_index)
            shard_rows.append(
                [
                    round_index,
                    len(timings),
                    f"{min(timings):.4f}",
                    f"{max(timings):.4f}",
                    f"{sum(timings):.4f}",
                ]
            )
        return table + "\n" + format_table(
            ["round", "shards", "min (s)", "max (s)", "sum (s)"],
            shard_rows,
            title="per-shard timing",
        )
