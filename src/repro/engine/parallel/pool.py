"""The persistent spawn-based process pool executing route shards.

One :class:`ShardPool` wraps a
:class:`concurrent.futures.ProcessPoolExecutor` built on the ``spawn``
start method -- fork would duplicate the parent's arbitrary state
(open sockets, numpy thread pools, a possibly multi-gigabyte heap)
into every worker; spawn gives each executor a clean interpreter that
reads its inputs exclusively through shared-memory segments.

Workers are long-lived: the first task pays the interpreter + import
cost, every later task reuses the warm process and its cached segment
attachments (:mod:`repro.engine.parallel.shm` maps each segment once
per process).  Task payloads are tiny -- a routing step, a segment
handle and a ``[start, end)`` row range -- and results return the
shard's destination/row-index arrays (pickled numpy buffers) plus the
shard's filtered columns only when filtering actually dropped rows.

A worker death (OOM kill, segfault) surfaces as
:class:`PoolBroken`; the owning :class:`~repro.engine.parallel.engine.ParallelContext`
catches it, falls back to in-process routing and never trusts the
pool again until rebuilt -- a crashed pool degrades to the
single-process engine instead of failing the query.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Sequence

from repro.engine.parallel.shm import (
    SegmentHandle,
    attach_columns,
    detach_names,
)


class PoolBroken(RuntimeError):
    """The process pool lost a worker and cannot be trusted further."""


def route_shard_task(
    step: Any,
    handle: SegmentHandle,
    start: int,
    end: int,
    p: int,
    detach: Sequence[str] = (),
) -> dict:
    """Route rows ``[start, end)`` of a shared source (worker side).

    ``detach`` lists segment names the parent has released since --
    this worker drops any cached mappings of them before attaching, so
    unlinked segments stop pinning physical pages here (the bounded
    attachment cache in :mod:`repro.engine.parallel.shm` is the
    backstop for workers that receive no further tasks).

    Returns a dict with:

    * ``destinations`` / ``row_indices`` -- the shard's routing
      decision, row indices *shard-local* (the parent offsets them by
      the cumulative filtered row count of earlier shards);
    * ``kept`` -- the shard's post-filter row count;
    * ``columns`` -- the filtered shard columns, or None when the step
      kept every row (the parent then reuses its own zero-copy slice);
    * ``seconds`` -- worker-side wall clock (per-shard profiling).
    """
    began = time.perf_counter()
    if detach:
        detach_names(detach)
    source = attach_columns(handle)
    shard = tuple(column[start:end] for column in source)
    columns, destinations, row_indices = step.route_columns(shard, p)
    shard_rows = end - start
    kept = len(columns[0]) if columns else 0
    return {
        "destinations": destinations,
        "row_indices": row_indices,
        "kept": kept,
        "columns": None if kept == shard_rows else columns,
        "seconds": time.perf_counter() - began,
    }


def count_shard_task(
    step: Any,
    handle: SegmentHandle,
    start: int,
    end: int,
    p: int,
    chunk_rows: int,
    detach: Sequence[str] = (),
) -> dict:
    """Streaming counting pass over rows ``[start, end)`` (worker side).

    The parallel leg of a streamed step's route phase: route the row
    range in ``chunk_rows`` blocks, bincount destinations, discard the
    arrays -- the child's transient memory stays
    ``O(chunk x replication)`` just like the parent's.  Returns the
    shard's per-worker counts plus worker-side seconds; summing the
    shards reproduces the monolithic counting pass exactly (bincount
    is additive over any row partition).
    """
    began = time.perf_counter()
    if detach:
        detach_names(detach)
    from repro.engine.streaming import route_block_counts

    source = attach_columns(handle)
    shard = tuple(column[start:end] for column in source)
    counts = route_block_counts(step, shard, end - start, chunk_rows, p)
    return {
        "counts": counts,
        "seconds": time.perf_counter() - began,
    }


def eval_shard_task(
    query: Any,
    atom_specs: Sequence[tuple],
    lo: int,
    hi: int,
    p: int,
    detach: Sequence[str] = (),
) -> dict:
    """Evaluate workers ``[lo, hi)`` from streamed recipes (worker side).

    ``atom_specs`` holds, per query atom, the relation's streamed
    delivery recipes with their source columns replaced by shared
    segment handles: ``(name, ((step, handle, num_rows, chunk_rows,
    source_sorted), ...))``.  The task re-routes the recipes for the
    worker range, merges them into shard pools and runs the exact
    segmented join the in-process shard loop runs
    (:func:`repro.engine.local.evaluate_shard_pools` is shared code),
    so answers and per-worker counts are identical by construction.
    """
    began = time.perf_counter()
    if detach:
        detach_names(detach)
    from repro.engine.local import evaluate_shard_pools
    from repro.engine.streaming import LazyContribution, materialize_shard

    pools = {}
    for name, contribs in atom_specs:
        if not contribs:
            pools[name] = None
            continue
        contributions = [
            LazyContribution(
                step=step,
                columns=attach_columns(handle),
                num_rows=num_rows,
                chunk_rows=chunk_rows,
                source_sorted=source_sorted,
            )
            for step, handle, num_rows, chunk_rows, source_sorted in contribs
        ]
        pools[name] = materialize_shard(contributions, lo, hi, p)
    answers, per_server = evaluate_shard_pools(query, pools, hi - lo)
    return {
        "answers": answers,
        "per_server": per_server,
        "seconds": time.perf_counter() - began,
    }


class ShardPool:
    """A lazily-started persistent pool of shard-task executors."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"need workers >= 1, got {workers}")
        self.workers = workers
        self._executor: ProcessPoolExecutor | None = None
        self.broken = False

    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            import multiprocessing

            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("spawn"),
            )
        return self._executor

    def submit(self, task: Any, /, *args: Any) -> Any:
        """Submit one task; :class:`PoolBroken` if the pool is gone."""
        if self.broken:
            raise PoolBroken("shard pool previously lost a worker")
        try:
            return self._ensure().submit(task, *args)
        except BrokenProcessPool as error:
            self.broken = True
            self.close()
            raise PoolBroken(str(error)) from error

    def collect(self, futures: Sequence[Any]) -> list[Any]:
        """Resolve futures in order, converting a pool death.

        Raises:
            PoolBroken: a worker died; the pool is marked broken and
                shut down (callers fall back to in-process execution).
        """
        try:
            return [future.result() for future in futures]
        except BrokenProcessPool as error:
            self.broken = True
            self.close()
            raise PoolBroken(str(error)) from error

    def route_shards(
        self,
        step: Any,
        handle: SegmentHandle,
        bounds: Sequence[tuple[int, int]],
        p: int,
        detach: Sequence[str] = (),
    ) -> list[dict]:
        """Run one step's shards concurrently; results in shard order.

        ``detach`` is forwarded to every task (see
        :func:`route_shard_task`): the parent's recently-released
        segment names, so whichever workers pick the tasks up drop
        their stale mappings first.

        Raises:
            PoolBroken: a worker died; the pool is marked broken and
                shut down (the caller falls back to serial routing).
        """
        return self.collect(
            [
                self.submit(
                    route_shard_task, step, handle, start, end, p, detach
                )
                for start, end in bounds
            ]
        )

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        executor = self._executor
        self._executor = None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
