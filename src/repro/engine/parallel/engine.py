"""The process-parallel round engine: route shards across OS processes.

:class:`ParallelRoundEngine` is a drop-in :class:`RoundEngine` whose
route phase fans shardable steps out over a persistent spawn pool:
the source's columns are published once through the context's
:class:`~repro.engine.parallel.shm.SharedColumnStore`, each worker
routes a contiguous ``[start, end)`` row range against zero-copy
views, and the parent reassembles the shard triples into one
:class:`~repro.engine.executor.RoutedStep`.  Ship, deliver and local
evaluation stay in the parent, so results reduce through the existing
:class:`~repro.mpc.simulator.ColumnPool`/segmented-join path
untouched.

Parity is the design invariant, not an aspiration:

* Only steps whose :attr:`~repro.engine.steps.RoutingStep.shardable`
  contract holds are dispatched -- their routing decision depends on
  row content alone, so routing shard ``i`` in isolation and
  concatenating (with row indices offset by the cumulative kept-row
  count of earlier shards) reproduces the serial multiset of
  (row, destination) pairs.  For :class:`~repro.engine.steps.HashRoute`
  the reassembled arrays are element-identical to the serial ones;
  for :class:`~repro.engine.steps.Broadcast` the staged layout is
  shard-major rather than worker-major, but the simulator's stable
  sort by receiver restores the exact serial per-worker row order, so
  delivered pools -- and therefore answers, loads and capacity
  behaviour -- are bit-identical either way.
* Non-shardable steps (:class:`~repro.engine.steps.RoundRobinGrid`'s
  global row index, :class:`~repro.engine.steps.HeavyGridRoute`'s
  global signature grouping), the ``pure`` backend, and sources below
  the ``min_rows`` threshold all route in-process exactly like the
  serial engine -- falling back is always correct, dispatching is an
  optimisation.

The :class:`ParallelContext` owns the long-lived resources (segment
store, shard pool) and the ``parallel_rounds``/``fallback_rounds``
counters the serving layer surfaces.  A broken pool (worker OOM-killed
mid-round) flips the context into permanent fallback: queries keep
answering on one core rather than failing.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.backend import NUMPY
from repro.data.columnar import ColumnarRelation
from repro.engine.deadline import Deadline
from repro.engine.executor import RoundEngine, RoutedStep
from repro.engine.parallel.pool import PoolBroken, ShardPool
from repro.engine.parallel.shm import SegmentHandle, SharedColumnStore
from repro.engine.profile import RoundProfiler
from repro.engine.steps import RoutingStep
from repro.mpc.simulator import MPCSimulator

#: Below this many source rows a round trip to the pool costs more
#: than routing in-process; chosen so the pure-Python overhead of one
#: dispatch (~a few hundred microseconds) stays well under the
#: vectorised routing time it replaces.
DEFAULT_MIN_ROWS = 4096

#: How many distinct column tuples the context keeps published in
#: shared memory at once; beyond this the least recently shared
#: segment is released (ephemeral per-query views would otherwise
#: accumulate segments for the context's whole lifetime).
_SEGMENT_CACHE_LIMIT = 32

#: How many recently-released segment names the context replays to
#: shard workers (each dispatch carries the current list; workers
#: ignore names they hold no mapping for).  Old entries simply fall
#: off -- the workers' own bounded attachment cache covers anything
#: displaced before every worker saw it.
_EVICTION_LOG_LIMIT = 4 * _SEGMENT_CACHE_LIMIT


class ParallelContext:
    """Shared state of process-parallel execution (pool + segments).

    One context serves many plan executions: the segment store dedups
    snapshot columns across queries and the spawn pool stays warm.

    Args:
        workers: shard/executor process count; must be >= 2 (one
            worker would just be the serial engine with IPC overhead).
        min_rows: sources smaller than this route in-process.
    """

    def __init__(
        self, workers: int, min_rows: int = DEFAULT_MIN_ROWS
    ) -> None:
        if workers < 2:
            raise ValueError(
                f"parallel execution needs workers >= 2, got {workers}"
            )
        self.workers = workers
        self.min_rows = min_rows
        self.store = SharedColumnStore()
        self.pool = ShardPool(workers)
        self.parallel_rounds = 0
        self.fallback_rounds = 0
        #: id(columns) -> (columns strong ref, handle), insertion-ordered
        #: so eviction is oldest-first.
        self._handles: dict[int, tuple[Any, SegmentHandle]] = {}
        #: Released segment names still to be broadcast to workers.
        self._evicted: deque[str] = deque(maxlen=_EVICTION_LOG_LIMIT)
        self._closed = False

    @property
    def usable(self) -> bool:
        """Whether dispatch is currently possible at all."""
        return not self._closed and not self.pool.broken

    def handle_for(self, columns: tuple) -> SegmentHandle:
        """The shared segment publishing ``columns`` (cached)."""
        key = id(columns)
        cached = self._handles.get(key)
        if cached is not None and cached[0] is columns:
            return cached[1]
        handle = self.store.share(columns)
        self._handles[key] = (columns, handle)
        while len(self._handles) > _SEGMENT_CACHE_LIMIT:
            oldest = next(iter(self._handles))
            _, evicted = self._handles.pop(oldest)
            if self.store.release(evicted):
                # The segment is gone in the parent; tell the workers
                # with the next dispatch so their mmaps stop pinning
                # the (now unlinked) physical pages.
                self._evicted.append(evicted.name)
        return handle

    def evicted_names(self) -> tuple[str, ...]:
        """Recently-released segment names to replay to shard workers."""
        return tuple(self._evicted)

    def close(self) -> None:
        """Release the pool and unlink every published segment."""
        self._closed = True
        self.pool.close()
        self._handles.clear()
        self.store.close()

    def __enter__(self) -> "ParallelContext":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class ParallelRoundEngine(RoundEngine):
    """A :class:`RoundEngine` that routes shardable steps in parallel.

    Behaviour is identical to the base engine except that the route
    phase of eligible steps runs on the context's process pool; every
    fallback path literally *is* the base engine's code.
    """

    def __init__(
        self,
        simulator: MPCSimulator,
        context: ParallelContext,
        backend: str | None = None,
        profiler: RoundProfiler | None = None,
        chunk_rows: int | None = None,
        deadline: Deadline | None = None,
    ) -> None:
        super().__init__(
            simulator,
            backend=backend,
            profiler=profiler,
            chunk_rows=chunk_rows,
            deadline=deadline,
        )
        self.context = context
        self._round_routed = False
        self._round_parallel = False

    # -- round bookkeeping ---------------------------------------------------

    def run_round(self, steps, sources, routed=None):
        """Execute one round, counting it as parallel or fallback.

        A round increments ``parallel_rounds`` when at least one step
        fanned out, ``fallback_rounds`` when steps were routed fresh
        but all in-process; rounds fully replayed from the routing
        cache increment neither (no routing happened at all).
        """
        self._round_routed = False
        self._round_parallel = False
        try:
            return super().run_round(steps, sources, routed=routed)
        finally:
            if self._round_parallel:
                self.context.parallel_rounds += 1
            elif self._round_routed:
                self.context.fallback_rounds += 1

    # -- routing -------------------------------------------------------------

    def _eligible(self, step: RoutingStep, source: ColumnarRelation) -> bool:
        return (
            self.backend == NUMPY
            and self.context.usable
            and step.shardable
            and bool(source.columns)
            and len(source) >= self.context.min_rows
        )

    def route_step(
        self, step: RoutingStep, source: ColumnarRelation
    ) -> RoutedStep:
        self._round_routed = True
        if not self._eligible(step, source):
            return super().route_step(step, source)
        with self._measure("route"):
            decision = self._route_sharded(step, source)
        if decision is None:  # pool died mid-round: route serially.
            return super().route_step(step, source)
        self._round_parallel = True
        return decision

    def _stream_counts(self, step: RoutingStep, source: ColumnarRelation):
        """The streamed counting pass, fanned out per row shard.

        Each pool worker routes a contiguous row range in
        ``chunk_rows`` blocks and returns its bincount; bincount is
        additive over any row partition, so the summed counts -- and
        therefore loads and capacity behaviour -- equal the serial
        counting pass exactly.  Ineligible steps and a broken pool
        fall back to the serial pass.
        """
        self._round_routed = True
        if not self._eligible(step, source):
            return super()._stream_counts(step, source)
        if self.deadline is not None:
            # The fanned-out pass has no per-block checkpoint in the
            # parent; check once before dispatching the shards.
            self.deadline.check("streamed step dispatch")
        counts = self._stream_counts_sharded(step, source)
        if counts is None:
            return super()._stream_counts(step, source)
        self._round_parallel = True
        return counts

    def _stream_counts_sharded(
        self, step: RoutingStep, source: ColumnarRelation
    ):
        from repro.backend import require_numpy
        from repro.engine.parallel.pool import count_shard_task

        numpy = require_numpy()
        num_rows = len(source)
        workers = self.context.workers
        chunk = -(-num_rows // workers)  # ceil division
        bounds = [
            (start, min(start + chunk, num_rows))
            for start in range(0, num_rows, chunk)
        ]
        handle = self.context.handle_for(source.columns)
        p = self.simulator.num_workers
        detach = self.context.evicted_names()
        try:
            results = self.context.pool.collect(
                [
                    self.context.pool.submit(
                        count_shard_task,
                        step,
                        handle,
                        start,
                        end,
                        p,
                        self.chunk_rows,
                        detach,
                    )
                    for start, end in bounds
                ]
            )
        except PoolBroken:
            return None
        if self.profiler is not None:
            round_index = self.simulator.round_index
            for shard_index, result in enumerate(results):
                self.profiler.add_shard(
                    round_index, shard_index, result["seconds"]
                )
                self.profiler.add_block(
                    round_index, "route", result["seconds"]
                )
        counts = numpy.zeros(p, dtype=numpy.int64)
        for result in results:
            counts += result["counts"]
        return counts

    def _route_sharded(
        self, step: RoutingStep, source: ColumnarRelation
    ) -> RoutedStep | None:
        from repro.backend import require_numpy

        numpy = require_numpy()
        num_rows = len(source)
        workers = self.context.workers
        chunk = -(-num_rows // workers)  # ceil division
        bounds = [
            (start, min(start + chunk, num_rows))
            for start in range(0, num_rows, chunk)
        ]
        handle = self.context.handle_for(source.columns)
        p = self.simulator.num_workers
        try:
            results = self.context.pool.route_shards(
                step, handle, bounds, p,
                detach=self.context.evicted_names(),
            )
        except PoolBroken:
            return None
        if self.profiler is not None:
            round_index = self.simulator.round_index
            for shard_index, result in enumerate(results):
                self.profiler.add_shard(
                    round_index, shard_index, result["seconds"]
                )
        return self._reassemble(numpy, source, bounds, results)

    @staticmethod
    def _reassemble(
        numpy: Any,
        source: ColumnarRelation,
        bounds: list[tuple[int, int]],
        results: list[dict],
    ) -> RoutedStep:
        """Concatenate shard triples into one serial-equivalent triple.

        Shard row indices are local to the shard's *kept* rows, so
        each shard's index array is offset by the cumulative kept-row
        count before it; a shard returning ``columns=None`` kept every
        row, letting the parent substitute its own zero-copy slice.
        """
        destinations = numpy.concatenate(
            [result["destinations"] for result in results]
        )
        filtered = any(result["columns"] is not None for result in results)
        if filtered:
            pieces = []
            for (start, end), result in zip(bounds, results):
                if result["columns"] is not None:
                    pieces.append(result["columns"])
                else:
                    pieces.append(
                        tuple(
                            column[start:end] for column in source.columns
                        )
                    )
            columns = tuple(
                numpy.concatenate([piece[i] for piece in pieces])
                for i in range(len(source.columns))
            )
        else:
            columns = source.columns

        if all(result["row_indices"] is None for result in results):
            row_indices = None
        else:
            offset = 0
            indexed = []
            for result in results:
                indices = result["row_indices"]
                if indices is None:
                    indices = numpy.arange(
                        result["kept"], dtype=numpy.int64
                    )
                indexed.append(indices + offset)
                offset += result["kept"]
            row_indices = numpy.concatenate(indexed)
        return RoutedStep(
            columns=columns,
            destinations=destinations,
            row_indices=row_indices,
        )
