"""Statement-level fan-out: a pool of executor processes, each
holding a full session over a shared-memory snapshot.

The in-engine shard pool (:mod:`repro.engine.parallel.engine`)
parallelises *inside* one query; this module parallelises *across*
queries -- the axis the RPC front end actually saturates, where many
concurrent clients issue independent statements.  Each
:class:`SessionWorkerPool` worker is a spawned process that attaches
the parent's column snapshot (zero-copy, read-only), rebuilds a
:class:`~repro.data.versioned.VersionedDatabase` at the parent's
version, and opens its own planner-backed
:class:`~repro.api.session.Session` with identical options -- so a
statement executed on any worker is bit-identical to the parent
executing it (same data, same seed, same deterministic planner).

One caveat inherited from the serving stack, not introduced here:
an isomorphic plan-cache hit rebinds an earlier sibling's plan, whose
hash family keys off *that* sibling's names -- same answers, but a
different (equally legal) per-server load split than a fresh compile.
Which sibling compiled first depends on request order in a
single-process server and on per-worker request order here; per-
statement results are always bit-identical to *a* single-process
session that saw the same statements in the same order.

Dispatch protocol (one duplex pipe per worker, parent side guarded by
an idle-worker queue):

* ``query`` -- execute one statement; replies with the pickled
  ``(ServiceResult, Explain)`` pair, or a structured error.
  :class:`~repro.mpc.simulator.CapacityExceeded` crosses the process
  boundary as a field dict (its ``__init__`` signature defeats
  default exception pickling) and is re-raised in the parent with the
  exact worker/bits/round payload.
* ``update`` -- apply one delta; the parent broadcasts updates to
  *every* worker behind a full barrier (all workers idle), so no
  query can ever observe a torn version.  Workers apply the delta
  first and the parent's version bump is the *last* step inside the
  barrier, so a statement that observes the new parent version can
  only ever reach workers already at that version (see
  :meth:`SessionWorkerPool.apply_delta`).  Updated relations become
  worker-local copies (copy-on-write against the shared snapshot).
* ``stats`` / ``close`` -- introspection and shutdown; ``close``
  replies with the worker's peak RSS so process-tree memory
  accounting (:data:`WORKER_PEAK_RSS`) can include executors that no
  longer exist.

A dead worker (kill -9, OOM) marks the pool broken; the owning
session falls back to in-process execution and the parent's segment
store still unlinks every shared segment -- crash-safety never
depends on children.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
from typing import Any

from repro.engine.parallel.shm import (
    DatabaseExport,
    SharedColumnStore,
    export_snapshot,
)

#: Peak RSS (bytes) reported by fan-out workers as they closed, for
#: process-tree benchmark accounting after the processes are gone.
#: Drained by :func:`drain_worker_peaks`.
WORKER_PEAK_RSS: list[int] = []
_PEAK_LOCK = threading.Lock()


def drain_worker_peaks() -> list[int]:
    """Pop every recorded worker peak RSS (benchmark harness hook)."""
    with _PEAK_LOCK:
        peaks = list(WORKER_PEAK_RSS)
        WORKER_PEAK_RSS.clear()
    return peaks


class FanoutBroken(RuntimeError):
    """A fan-out worker died; the pool can no longer be used."""


def _worker_main(
    connection: Any, export: DatabaseExport, options: dict
) -> None:
    """One executor process: a session over the shared snapshot."""
    import os
    import resource

    from repro.api.session import Session, Statement
    from repro.data.versioned import VersionedDatabase
    from repro.engine.deadline import DeadlineExceeded
    from repro.engine.parallel.shm import attach_snapshot, detach_all
    from repro.mpc.simulator import CapacityExceeded
    from repro.serve.faults import worker_death_after

    death_after = worker_death_after()
    queries_handled = 0
    try:
        snapshot = attach_snapshot(export)
        database = VersionedDatabase(
            snapshot,
            backend=options.get("backend"),
            initial_version=export.version,
        )
        session = Session(database, **options)
    except Exception as error:  # noqa: BLE001 - reported, not raised
        connection.send(("failed", f"{type(error).__name__}: {error}"))
        connection.close()
        return
    connection.send(("ready", None))
    try:
        while True:
            try:
                op, payload = connection.recv()
            except EOFError:
                break
            if op == "query":
                queries_handled += 1
                if death_after is not None and queries_handled >= death_after:
                    # Injected fault: die hard (no reply, no cleanup),
                    # exactly like an OOM kill at the worst moment.
                    os._exit(1)
                try:
                    statement = Statement(
                        session=session,
                        query=payload["query"],
                        eps=payload["eps"],
                        algorithm=payload["algorithm"],
                        allow_partial=payload["allow_partial"],
                        deadline_ms=payload.get("deadline_ms"),
                    )
                    result = statement.execute()
                    connection.send(
                        ("result", (result.raw, result.explain))
                    )
                except DeadlineExceeded as error:
                    connection.send(
                        (
                            "deadline",
                            {
                                "where": error.where,
                                "elapsed_ms": error.elapsed_ms,
                                "budget_ms": error.budget_ms,
                            },
                        )
                    )
                except CapacityExceeded as error:
                    connection.send(
                        (
                            "capacity",
                            {
                                "worker": error.worker,
                                "received_bits": error.received_bits,
                                "capacity_bits": error.capacity_bits,
                                "round_index": error.round_index,
                            },
                        )
                    )
                except Exception as error:  # noqa: BLE001 - reported
                    connection.send(
                        ("error", (type(error).__name__, str(error)))
                    )
            elif op == "update":
                try:
                    version = session.apply_delta(payload)
                    connection.send(("version", version))
                except Exception as error:  # noqa: BLE001 - reported
                    connection.send(
                        ("error", (type(error).__name__, str(error)))
                    )
            elif op == "stats":
                connection.send(("stats", session.stats))
            elif op == "close":
                peak = (
                    resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
                    * 1024
                )
                connection.send(("closed", peak))
                break
            else:
                connection.send(("error", ("ValueError", f"bad op {op!r}")))
    finally:
        detach_all()
        connection.close()


def _raise_worker_error(kind: str, value: Any) -> None:
    """Re-raise a worker-reported failure with its original type."""
    from repro.engine.deadline import DeadlineExceeded
    from repro.mpc.simulator import CapacityExceeded

    if kind == "capacity":
        raise CapacityExceeded(**value)
    if kind == "deadline":
        raise DeadlineExceeded(**value)
    name, message = value
    from repro.core.query import QueryError
    from repro.data.database import DataError

    by_name = {
        "QueryError": QueryError,
        "DataError": DataError,
        "ValueError": ValueError,
        "KeyError": KeyError,
    }
    raise by_name.get(name, RuntimeError)(message)


class SessionWorkerPool:
    """N executor processes, each a session over the shared snapshot.

    Thread-safe on the query path: any number of dispatcher threads
    may call :meth:`execute` concurrently (an idle-worker queue hands
    each call a private worker).  :meth:`apply_delta` and
    :meth:`close` must come from a single control thread -- the
    contract the RPC front end already keeps.

    Args:
        database: the parent's
            :class:`~repro.data.versioned.VersionedDatabase`; its
            current snapshot is exported to shared memory once.
        options: the parent session's constructor options, replayed
            verbatim in every worker (workers are always built with
            ``workers=1`` -- fan-out does not nest).
        workers: executor process count (>= 2).
        join_timeout: seconds to wait for each worker process at
            shutdown before terminating it; stragglers that had to be
            killed are counted in :attr:`killed_stragglers` rather
            than silently ignored.
    """

    def __init__(
        self,
        database: Any,
        options: dict,
        workers: int,
        join_timeout: float = 5.0,
    ) -> None:
        if workers < 2:
            raise ValueError(
                f"statement fan-out needs workers >= 2, got {workers}"
            )
        if join_timeout <= 0:
            raise ValueError(
                f"need join_timeout > 0, got {join_timeout}"
            )
        self.workers = workers
        self.join_timeout = float(join_timeout)
        self.broken = False
        self._closed = False
        self.queries = 0
        #: Workers that ignored the shutdown join and had to be killed.
        self.killed_stragglers = 0
        #: Guards ``queries``: N dispatcher threads bump it.
        self._stats_lock = threading.Lock()
        self._store = SharedColumnStore(prefix="reprofan")
        worker_options = dict(options)
        worker_options["workers"] = 1
        export = export_snapshot(
            database.snapshot, self._store, version=database.version
        )
        context = multiprocessing.get_context("spawn")
        self._processes: list[Any] = []
        self._connections: list[Any] = []
        try:
            for _ in range(workers):
                parent_end, child_end = context.Pipe()
                process = context.Process(
                    target=_worker_main,
                    args=(child_end, export, worker_options),
                    daemon=True,
                )
                process.start()
                child_end.close()
                self._processes.append(process)
                self._connections.append(parent_end)
            for connection in self._connections:
                kind, value = connection.recv()
                if kind != "ready":
                    raise FanoutBroken(f"worker failed to start: {value}")
        except Exception:
            self._teardown()
            raise
        self._idle: queue.Queue[int] = queue.Queue()
        for index in range(workers):
            self._idle.put(index)

    @property
    def usable(self) -> bool:
        """Whether queries can still be dispatched.

        A worker that died since the last check (kill -9, OOM) flips
        the pool broken here, so callers deciding *whether* to use the
        pool (the RPC server choosing its dispatch width, the session
        choosing fan-out vs local) see the death before paying a
        round-trip for it.  Liveness can still race -- a worker alive
        now may be dead at send time -- and that window is covered by
        the :class:`FanoutBroken` path in :meth:`execute`.
        """
        if self.broken or self._closed:
            return False
        if any(not process.is_alive() for process in self._processes):
            self.broken = True
            return False
        return True

    @property
    def alive_workers(self) -> int:
        """Worker processes currently alive (liveness gauge)."""
        return sum(
            1 for process in self._processes if process.is_alive()
        )

    @property
    def segment_names(self) -> tuple[str, ...]:
        """Live shared-segment names (leak assertions in tests)."""
        return self._store.names

    # -- query path (any thread) --------------------------------------------

    def execute(
        self,
        query: Any,
        eps: Any,
        algorithm: str | None,
        allow_partial: bool,
        deadline_ms: float | None = None,
    ) -> tuple[Any, Any]:
        """Execute one statement on an idle worker.

        Returns the worker's ``(ServiceResult, Explain)`` pair.

        Raises:
            FanoutBroken: the worker died mid-request (the pool is
                marked broken; the caller should fall back to local
                execution).
            CapacityExceeded / QueryError / DataError: exactly what
                the statement would have raised locally.
        """
        if not self.usable:
            raise FanoutBroken("fan-out pool is broken or closed")
        index = self._idle.get()
        try:
            connection = self._connections[index]
            connection.send(
                (
                    "query",
                    {
                        "query": query,
                        "eps": eps,
                        "algorithm": algorithm,
                        "allow_partial": allow_partial,
                        "deadline_ms": deadline_ms,
                    },
                )
            )
            kind, value = connection.recv()
        except (EOFError, OSError, BrokenPipeError) as error:
            self.broken = True
            raise FanoutBroken(
                f"fan-out worker {index} died: {error}"
            ) from error
        finally:
            self._idle.put(index)
        with self._stats_lock:
            self.queries += 1
        if kind == "result":
            return value
        _raise_worker_error(kind, value)
        raise AssertionError("unreachable")

    # -- control path (single thread) ---------------------------------------

    def _acquire_all(self) -> list[int]:
        """Block until every worker is idle; claim them all."""
        return [self._idle.get() for _ in range(self.workers)]

    def _release_all(self, indices: list[int]) -> None:
        for index in indices:
            self._idle.put(index)

    def apply_delta(self, delta: Any, apply_parent: Any) -> int:
        """Broadcast one update to the workers, then publish the parent's.

        The barrier is the version contract: every worker is held
        idle, the delta goes to the *workers* first, and
        ``apply_parent`` -- a callable applying the same delta to the
        owning session's service and returning its new version -- runs
        *last*, still inside the barrier.  Any thread that reads the
        bumped parent version afterwards can therefore only reach
        workers already at that version; a query dispatched just
        before the bump may execute one version fresh (query and
        update were concurrent, so either serialization is legal), but
        a stale result can never be published under the new version.

        ``apply_parent`` is always invoked exactly once, even when
        workers die or diverge mid-broadcast -- the parent must never
        lose a delta.  Such failures mark the pool broken (``usable``
        -> False; the owning session falls back to in-process
        execution) instead of raising.  Returns the parent's new
        version.
        """
        if not self.usable:
            return apply_parent()
        indices = self._acquire_all()
        try:
            failure = None
            worker_versions: list[int] = []
            try:
                for index in indices:
                    self._connections[index].send(("update", delta))
                for index in indices:
                    kind, value = self._connections[index].recv()
                    if kind == "version":
                        worker_versions.append(value)
                    else:
                        failure = (
                            f"fan-out worker {index} failed update: "
                            f"{kind} {value!r}"
                        )
            except (EOFError, OSError, BrokenPipeError) as error:
                failure = f"fan-out worker died during update: {error}"
            version = apply_parent()
            if failure is None and any(
                worker != version for worker in worker_versions
            ):
                failure = (
                    f"fan-out workers diverged on update: "
                    f"{worker_versions!r} != parent version {version}"
                )
            if failure is not None:
                self.broken = True
            return version
        finally:
            self._release_all(indices)

    def worker_stats(self) -> list[Any]:
        """Each worker's ServiceStats (idle workers polled in turn)."""
        if not self.usable:
            return []
        stats = []
        indices = self._acquire_all()
        try:
            for index in indices:
                self._connections[index].send(("stats", None))
                kind, value = self._connections[index].recv()
                if kind == "stats":
                    stats.append(value)
        except (EOFError, OSError, BrokenPipeError):
            self.broken = True
        finally:
            self._release_all(indices)
        return stats

    def close(self) -> None:
        """Shut workers down, record their peak RSS, unlink segments.

        Idempotent; safe to call on a broken pool (dead workers are
        terminated rather than asked nicely).
        """
        if self._closed:
            return
        self._closed = True
        for connection in self._connections:
            try:
                connection.send(("close", None))
            except (OSError, BrokenPipeError):
                continue
        for connection in self._connections:
            try:
                if connection.poll(self.join_timeout):
                    kind, value = connection.recv()
                    if kind == "closed":
                        with _PEAK_LOCK:
                            WORKER_PEAK_RSS.append(int(value))
            except (EOFError, OSError, BrokenPipeError):
                pass
        self._teardown()

    def _teardown(self) -> None:
        for connection in self._connections:
            try:
                connection.close()
            except OSError:
                pass
        for process in self._processes:
            process.join(timeout=self.join_timeout)
            if process.is_alive():
                self.killed_stragglers += 1
                process.terminate()
                process.join(timeout=self.join_timeout)
        self._store.close()

    def __enter__(self) -> "SessionWorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
