"""Shared-memory column segments: the zero-copy transport of the
process-parallel execution layer.

Routed int64 columns move between OS processes without serialisation:
the parent copies a relation's columns once into a
:class:`multiprocessing.shared_memory.SharedMemory` block and hands
child processes a tiny picklable :class:`SegmentHandle`; children
:func:`attach_columns` and get read-only numpy views directly over the
shared pages.  The paper's servers "keep everything they receive" --
here the analogue is that a snapshot's columns exist once in physical
memory no matter how many executor processes read them.

Lifecycle rules (the crash-safety contract the tests pin):

* The **parent owns every segment**: it creates, registers and --
  exactly once -- unlinks it.  :class:`SharedColumnStore` tracks every
  live segment and unlinks all of them on :meth:`SharedColumnStore.close`,
  on garbage collection and at interpreter exit (``atexit``), so a
  crashed or killed *child* never leaks ``/dev/shm`` space: the
  parent's cleanup does not depend on children behaving.
* Children only ever :meth:`~SegmentHandle` -> attach -> ``close()``;
  they never unlink.  Attaching unregisters the block from the child's
  ``resource_tracker`` so the tracker does not unlink (or warn about)
  a segment the parent still owns -- the double-unlink race that makes
  naive shared-memory pools flaky.
* Handles carry a creation nonce in the segment name
  (``repro_<pid>_<counter>_<nonce>``), so a recycled OS name can never
  alias a stale handle.

The store is also the **refcounted registry**: :meth:`SharedColumnStore.share`
returns an existing segment for the same column tuple (identity-based,
safe because engine sources are immutable), and :meth:`SharedColumnStore.release`
drops one reference, unlinking at zero.  ``__len__``/: attr:`names`
expose the live set for leak assertions.
"""

from __future__ import annotations

import atexit
import os
import secrets
import threading
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.backend import require_numpy

try:  # pragma: no cover - platform guard (POSIX + Windows both have it)
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic platforms only
    _shared_memory = None

#: int64 everywhere: the engine's only column dtype.
ITEMSIZE = 8


class SharedMemoryUnavailable(RuntimeError):
    """Raised when the platform lacks ``multiprocessing.shared_memory``."""


def _require_shared_memory():
    if _shared_memory is None:  # pragma: no cover - exotic platforms
        raise SharedMemoryUnavailable(
            "multiprocessing.shared_memory is unavailable on this platform"
        )
    return _shared_memory


_TRACK_SUPPORTED: bool | None = None


def _supports_untracked_attach() -> bool:
    """Whether ``SharedMemory(track=False)`` exists (Python >= 3.13)."""
    global _TRACK_SUPPORTED
    if _TRACK_SUPPORTED is None:
        import inspect

        shared = _require_shared_memory()
        try:
            parameters = inspect.signature(shared.SharedMemory).parameters
            _TRACK_SUPPORTED = "track" in parameters
        except (TypeError, ValueError):  # pragma: no cover - builtins
            _TRACK_SUPPORTED = False
    return _TRACK_SUPPORTED


def _attach_untracked(name: str) -> Any:
    """Open an existing segment without resource-tracker registration.

    On Python 3.13+ ``SharedMemory(name=..., track=False)`` does this
    natively.  Before that, every attach registers the segment with
    the attaching process's resource tracker; spawn children share the
    parent's tracker, so attach-then-unregister would strip the
    *parent's* registration and the parent's eventual unlink would
    double unregister.  Ownership here is strictly parental, so
    attaches suppress registration by patching
    ``resource_tracker.register`` out for the duration of the attach.
    The patch is process-global, so it (and every ``SharedMemory``
    creation in this module) runs under :data:`_ATTACH_LOCK` -- a
    concurrent create in another thread must never land while
    registration is disabled, or its segment would silently escape the
    tracker.
    """
    from multiprocessing import resource_tracker

    shared = _require_shared_memory()
    if _supports_untracked_attach():
        return shared.SharedMemory(name=name, track=False)
    with _ATTACH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


@dataclass(frozen=True)
class SegmentHandle:
    """A picklable reference to one shared column segment.

    Attributes:
        name: the OS-level shared-memory name.
        lengths: row count of each column, in order (columns are laid
            out back-to-back as int64).
    """

    name: str
    lengths: tuple[int, ...]

    @property
    def num_columns(self) -> int:
        return len(self.lengths)

    @property
    def total_bytes(self) -> int:
        return sum(self.lengths) * ITEMSIZE


#: Process-local cache of attached mappings: segment name -> SharedMemory,
#: insertion-ordered least-recently-used first.  Each segment is mapped
#: at most once per process no matter how many tasks read it, and the
#: mapping outlives any individual view (numpy views over ``shm.buf``
#: do not keep the SharedMemory object alive on their own).  The cache
#: is bounded: a long-running shard worker churning distinct per-query
#: column tuples must not accumulate mappings -- and therefore physical
#: pages of segments the parent already unlinked -- for its whole
#: lifetime.
_ATTACHED: dict[str, Any] = {}
#: RLock: :func:`attach_columns` holds it while calling
#: :func:`_attach_untracked`, which takes it again around the
#: resource-tracker patch on pre-3.13 Pythons.
_ATTACH_LOCK = threading.RLock()

#: Mapping-cache bound; matches the parent-side segment cache so a
#: worker holds at most as many mappings as the parent keeps published.
_ATTACH_LIMIT = 32

#: Names whose mappings must never be closed by eviction or
#: :func:`detach_names`: closing a SharedMemory mapping does NOT fail
#: under live numpy views -- the views silently dangle and the next
#: read is a use-after-free -- so attachments whose views outlive a
#: single task (a fan-out worker's snapshot relations live for the
#: whole process) are pinned explicitly at attach time.
_PINNED: set[str] = set()


def _close_attachment(name: str) -> bool:
    """Close one cached mapping; caller holds :data:`_ATTACH_LOCK`.

    Pinned names are refused (their views are still live by contract).
    Returns True when actually closed.
    """
    if name in _PINNED:
        return False
    shm = _ATTACHED.pop(name, None)
    if shm is None:
        return False
    try:
        shm.close()
    except Exception:  # noqa: BLE001 - cleanup must never raise
        pass
    return True


def _evict_attachments(keep: str | None = None) -> None:
    """LRU-evict cached mappings over :data:`_ATTACH_LIMIT` (lock held)."""
    excess = len(_ATTACHED) - _ATTACH_LIMIT
    if excess <= 0:
        return
    for name in list(_ATTACHED):
        if excess <= 0:
            break
        if name == keep:
            continue
        if _close_attachment(name):
            excess -= 1


def attach_columns(handle: SegmentHandle, pin: bool = False) -> tuple:
    """Zero-copy numpy views over a handle's columns (child side).

    The underlying mapping is cached process-locally (one ``mmap`` per
    segment per process) in a bounded LRU and stays alive until
    evicted, :func:`detach_names` / :func:`detach_all`, or process
    exit.  Pass ``pin=True`` when the returned views outlive the
    current task (snapshot relations attached for a worker process's
    lifetime): pinned mappings are exempt from eviction and
    :func:`detach_names`, because closing a mapping under live views
    dangles them silently.  Unpinned callers must drop their views
    before the next task runs -- the shard-pool tasks do (results are
    pickled across the pipe, and the executor deletes its local
    reference before the next dispatch).

    Views are marked read-only: shared snapshots are immutable by
    contract, and an accidental in-place write in one process must not
    silently corrupt every other process's input.
    """
    numpy = require_numpy()
    with _ATTACH_LOCK:
        shm = _ATTACHED.pop(handle.name, None)
        if shm is None:
            shm = _attach_untracked(handle.name)
        _ATTACHED[handle.name] = shm  # (re)inserted most recently used
        if pin:
            _PINNED.add(handle.name)
        _evict_attachments(keep=handle.name)
    views = []
    offset = 0
    for length in handle.lengths:
        view = numpy.ndarray(
            (length,), dtype=numpy.int64, buffer=shm.buf, offset=offset
        )
        view.flags.writeable = False
        views.append(view)
        offset += length * ITEMSIZE
    return tuple(views)


def detach_names(names: Iterable[str]) -> None:
    """Close specific cached attachments (parent evicted the segments).

    The shard pool replays the parent's segment evictions here with
    the next task payload, so a worker's mmaps -- and the physical
    pages of already-unlinked segments -- go away promptly instead of
    waiting for LRU pressure.  Unknown names are ignored; pinned
    mappings are kept (see :func:`attach_columns`).
    """
    with _ATTACH_LOCK:
        for name in names:
            _close_attachment(name)


def detach_all() -> None:
    """Drop every cached attachment, pinned included (process teardown:
    the caller guarantees no view is read afterwards)."""
    with _ATTACH_LOCK:
        mappings = list(_ATTACHED.values())
        _ATTACHED.clear()
        _PINNED.clear()
    for shm in mappings:
        try:
            shm.close()
        except Exception:  # noqa: BLE001 - cleanup must never raise
            pass


class SharedColumnStore:
    """The parent-side registry of live shared column segments.

    Thread-safe (the RPC front end shares one store across its worker
    threads).  Every created segment is tracked until released or the
    store closes; closing (or interpreter exit) unlinks everything, so
    segments never outlive the parent even when children crashed
    mid-round.
    """

    def __init__(self, prefix: str = "repro") -> None:
        self._prefix = prefix
        self._lock = threading.Lock()
        self._counter = 0
        #: name -> (SharedMemory, handle, refcount)
        self._segments: dict[str, list] = {}
        #: id(columns tuple) -> (columns strong ref, segment name)
        self._by_identity: dict[int, tuple[Any, str]] = {}
        self._closed = False
        atexit.register(self.close)

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._segments)

    @property
    def names(self) -> tuple[str, ...]:
        """Names of every live segment (leak assertions)."""
        with self._lock:
            return tuple(self._segments)

    # -- share / release ----------------------------------------------------

    def share(self, columns: Iterable[Any]) -> SegmentHandle:
        """Copy ``columns`` into shared memory; returns the handle.

        Passing the *same tuple object* again returns the existing
        segment with its refcount bumped (engine sources are immutable,
        so identity implies content equality); the store keeps a strong
        reference to the tuple so the identity key cannot be recycled
        while the segment lives.
        """
        numpy = require_numpy()
        shared = _require_shared_memory()
        columns = columns if isinstance(columns, tuple) else tuple(columns)
        with self._lock:
            if self._closed:
                raise RuntimeError("SharedColumnStore is closed")
            known = self._by_identity.get(id(columns))
            if known is not None and known[0] is columns:
                entry = self._segments[known[1]]
                entry[2] += 1
                return entry[1]
            arrays = [
                numpy.ascontiguousarray(column, dtype=numpy.int64)
                for column in columns
            ]
            lengths = tuple(len(array) for array in arrays)
            total = max(1, sum(lengths) * ITEMSIZE)
            self._counter += 1
            name = (
                f"{self._prefix}_{os.getpid()}_{self._counter}_"
                f"{secrets.token_hex(4)}"
            )
            # Under _ATTACH_LOCK: on pre-3.13 Pythons an attach in
            # another thread patches resource_tracker.register out, and
            # a create landing in that window would never be tracked.
            with _ATTACH_LOCK:
                shm = shared.SharedMemory(create=True, name=name, size=total)
            offset = 0
            for array, length in zip(arrays, lengths):
                if not length:
                    continue
                destination = numpy.ndarray(
                    (length,),
                    dtype=numpy.int64,
                    buffer=shm.buf,
                    offset=offset,
                )
                destination[:] = array
                offset += length * ITEMSIZE
            handle = SegmentHandle(name=name, lengths=lengths)
            self._segments[name] = [shm, handle, 1]
            self._by_identity[id(columns)] = (columns, name)
            return handle

    def release(self, handle: SegmentHandle) -> bool:
        """Drop one reference; unlink at zero.  Returns True if unlinked."""
        with self._lock:
            entry = self._segments.get(handle.name)
            if entry is None:
                return False
            entry[2] -= 1
            if entry[2] > 0:
                return False
            del self._segments[handle.name]
            for key, (_, name) in list(self._by_identity.items()):
                if name == handle.name:
                    del self._by_identity[key]
            self._destroy(entry[0])
            return True

    @staticmethod
    def _destroy(shm: Any) -> None:
        try:
            shm.close()
        except Exception:  # noqa: BLE001 - cleanup must never raise
            pass
        try:
            shm.unlink()
        except Exception:  # noqa: BLE001 - already gone is fine
            pass

    def close(self) -> None:
        """Unlink every live segment (idempotent; runs at exit too)."""
        atexit.unregister(self.close)  # closed stores must not pile up
        with self._lock:
            if self._closed and not self._segments:
                return
            self._closed = True
            segments = list(self._segments.values())
            self._segments.clear()
            self._by_identity.clear()
        for entry in segments:
            self._destroy(entry[0])

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        self.close()

    def __enter__(self) -> "SharedColumnStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# -- whole-snapshot export / attach -----------------------------------------


@dataclass(frozen=True)
class RelationExport:
    """One relation's shared (or inline) transport form.

    ``handle`` is set under the numpy backend (columns in shared
    memory); ``rows`` is the pickled fallback used when the snapshot
    lives in pure-Python lists (small-``n`` regimes, or numpy absent in
    the child).
    """

    name: str
    arity: int
    domain_size: int
    backend: str
    handle: SegmentHandle | None = None
    rows: tuple[tuple[int, ...], ...] | None = None


@dataclass(frozen=True)
class DatabaseExport:
    """A whole snapshot's transport form plus version metadata."""

    relations: tuple[RelationExport, ...]
    domain_size: int
    version: int


def export_snapshot(
    snapshot: Any, store: SharedColumnStore, version: int = 0
) -> DatabaseExport:
    """Export a columnar snapshot through ``store``.

    Relations whose columns are numpy int64 arrays go to shared
    memory; pure-backend relations ship their rows inline (they are
    small by construction -- the pure engine is the reference path).
    """
    from repro.backend import NUMPY

    exports = []
    relations: Mapping[str, Any] = snapshot.relations
    for name, relation in relations.items():
        if relation.backend == NUMPY:
            exports.append(
                RelationExport(
                    name=name,
                    arity=relation.arity,
                    domain_size=relation.domain_size,
                    backend=relation.backend,
                    handle=store.share(relation.columns),
                )
            )
        else:
            exports.append(
                RelationExport(
                    name=name,
                    arity=relation.arity,
                    domain_size=relation.domain_size,
                    backend=relation.backend,
                    rows=tuple(relation.rows()),
                )
            )
    return DatabaseExport(
        relations=tuple(exports),
        domain_size=snapshot.domain_size,
        version=version,
    )


def attach_snapshot(export: DatabaseExport) -> Any:
    """Rebuild a :class:`ColumnarDatabase` from an export (child side).

    Shared relations become zero-copy read-only views; inline
    relations are rebuilt from their rows.  Invariants (dedup, sort)
    were established before export, so relations are constructed
    directly without re-finalising.
    """
    from repro.data.columnar import ColumnarDatabase, ColumnarRelation

    relations = {}
    for spec in export.relations:
        if spec.handle is not None:
            # Pinned: these views live inside the worker's relations
            # for the whole process, so eviction must never close the
            # mapping under them.
            columns = attach_columns(spec.handle, pin=True)
        else:
            assert spec.rows is not None
            columns = tuple(
                [row[position] for row in spec.rows]
                for position in range(spec.arity)
            )
        relations[spec.name] = ColumnarRelation(
            name=spec.name,
            arity=spec.arity,
            columns=columns,
            domain_size=spec.domain_size,
            backend=spec.backend,
        )
    return ColumnarDatabase(
        relations=relations, domain_size=export.domain_size
    )


def segment_exists(name: str) -> bool:
    """Whether an OS segment with ``name`` still exists (leak tests)."""
    try:
        probe = _attach_untracked(name)
    except FileNotFoundError:
        return False
    probe.close()
    return True
