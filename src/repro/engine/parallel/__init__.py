"""Process-parallel execution: shared-memory columns, shard pools,
and statement fan-out.

Public surface:

* :class:`~repro.engine.parallel.shm.SharedColumnStore` /
  :func:`~repro.engine.parallel.shm.attach_columns` -- zero-copy int64
  column transport over ``multiprocessing.shared_memory``.
* :class:`~repro.engine.parallel.engine.ParallelContext` /
  :class:`~repro.engine.parallel.engine.ParallelRoundEngine` -- the
  in-engine route-shard fan-out (pass a context to
  :func:`repro.engine.executor.execute_plan` via ``parallel=``).
* :class:`~repro.engine.parallel.fanout.SessionWorkerPool` -- the
  statement-level fan-out the RPC front end uses: each worker process
  holds a full session over a shared snapshot.
"""

from repro.engine.parallel.engine import (
    DEFAULT_MIN_ROWS,
    ParallelContext,
    ParallelRoundEngine,
)
from repro.engine.parallel.pool import PoolBroken, ShardPool
from repro.engine.parallel.shm import (
    DatabaseExport,
    SegmentHandle,
    SharedColumnStore,
    SharedMemoryUnavailable,
    attach_columns,
    attach_snapshot,
    detach_all,
    export_snapshot,
    segment_exists,
)

__all__ = [
    "DEFAULT_MIN_ROWS",
    "DatabaseExport",
    "ParallelContext",
    "ParallelRoundEngine",
    "PoolBroken",
    "SegmentHandle",
    "SessionWorkerPool",
    "ShardPool",
    "SharedColumnStore",
    "SharedMemoryUnavailable",
    "attach_columns",
    "attach_snapshot",
    "detach_all",
    "export_snapshot",
    "segment_exists",
]


def __getattr__(name: str):
    # fanout imports serve/api modules; loaded lazily so the engine
    # package does not pull the serving stack in at import time.
    if name == "SessionWorkerPool":
        from repro.engine.parallel.fanout import SessionWorkerPool

        return SessionWorkerPool
    raise AttributeError(name)
