"""Post-round local evaluation shared by every algorithm.

After the engine delivers a round, each worker evaluates a conjunctive
query over the fragments it received.  This module is the single
join-and-collect loop: the ``pure`` backend runs the reference
backtracking join over mailbox rows; the ``numpy`` backend evaluates
the *whole fleet* in one vectorized pass -- the simulator's delivery
pools (:class:`~repro.mpc.simulator.ColumnPool`) hand over every
worker's fragments as contiguous slices of one column pool plus a
``(worker -> offset range)`` index, and
:func:`~repro.algorithms.localjoin.evaluate_query_table_segmented`
joins all ``p`` workers at once by prepending the worker id to every
join key.  Per-server answer counts fall out of one ``bincount`` over
the answer segment ids; the deduplicated union out of one ``unique``.

The previous per-worker numpy loop (concatenate each worker's
batches, join, merge) is kept as :func:`merged_answer_table_per_worker`
-- it is the fallback when pools are unavailable (row-path deliveries
mixed in) and the baseline the segmented speedup gate measures
against.  Either way the callers get back identical answer sets,
per-server answer counts and (for the multi-round executor)
materialised views.

Routing never delivers the same source row twice to one worker under
any :class:`~repro.engine.steps.RoutingStep` (a step's destination set
per row is duplicate-free, and engine sources are deduplicated), so
the columnar paths can skip the dedup passes (``assume_unique``).
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Callable, Iterable

from repro.backend import NUMPY, require_numpy
from repro.algorithms.localjoin import (
    evaluate_query,
    evaluate_query_table,
    evaluate_query_table_segmented,
)
from repro.core.query import ConjunctiveQuery
from repro.data.columnar import ColumnarRelation
from repro.engine.profile import RoundProfiler
from repro.mpc.simulator import ColumnPool, MPCSimulator

KeyOf = Callable[[str], str]

#: Dispatch threshold of the segmented-vs-per-worker heuristic: the
#: fleet-wide join is chosen when pooled rows per unit of span-table
#: domain (``len(workers) * max key value``) reach this density.  The
#: segmented join's fixed cost is its direct-address span tables,
#: sized by that domain; when deliveries are sparse relative to it
#: (tiny fragments -- e.g. C_3 at p=64, n=1e5: density ~0.19, where
#: the per-worker loop measures ~1.4x faster) the tables dominate and
#: the per-worker loop wins.  Measured crossover sits between C_3 at
#: p=64 (0.19, per-worker faster) and C_3 at p=16 / L_4 at p=64
#: (~0.5, segmented faster); the speedup gate's L_8 regime is >> 1.
SEGMENTED_DENSITY_THRESHOLD = 0.3


def _identity_key(name: str) -> str:
    return name


def _prefer_segmented(
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    workers: list[int],
    key_of: KeyOf,
) -> bool | None:
    """Size heuristic: is the fleet-wide join worth its span tables?

    Returns None when some atom has no delivery pool (the segmented
    path is unavailable regardless), else the density decision
    described at :data:`SEGMENTED_DENSITY_THRESHOLD`.  The inputs --
    pooled row counts and column maxima -- are one vectorized pass
    over data the join would touch anyway.
    """
    total_rows = 0
    max_key = 1
    for atom in query.atoms:
        pool = simulator.relation_pool(key_of(atom.name))
        if pool is None:
            return None
        total_rows += len(pool)
        for column in pool.columns:
            if len(column):
                max_key = max(max_key, int(column.max()))
    if total_rows == 0:
        return True
    density = total_rows / (max(1, len(workers)) * max_key)
    return density >= SEGMENTED_DENSITY_THRESHOLD


def _worker_fragments_columnar(
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    worker: int,
    key_of: KeyOf,
) -> dict[str, tuple] | None:
    """Concatenate a worker's column batches per atom; None if any empty."""
    numpy = require_numpy()
    fragments: dict[str, tuple] = {}
    for atom in query.atoms:
        batches = simulator.worker_column_batches(worker, key_of(atom.name))
        if not batches:
            return None
        if len(batches) == 1:
            fragments[atom.name] = batches[0]
        else:
            fragments[atom.name] = tuple(
                numpy.concatenate([batch[i] for batch in batches])
                for i in range(len(batches[0]))
            )
    return fragments


def worker_answer_table(
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    worker: int,
    key_of: KeyOf = _identity_key,
):
    """One worker's answers as an int64 table (numpy backend)."""
    numpy = require_numpy()
    fragments = _worker_fragments_columnar(query, simulator, worker, key_of)
    if fragments is None:
        return numpy.zeros((0, len(query.head)), dtype=numpy.int64)
    return evaluate_query_table(query, fragments, assume_unique=True)


def worker_answer_rows(
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    worker: int,
    key_of: KeyOf = _identity_key,
) -> tuple[tuple[int, ...], ...]:
    """One worker's answers as sorted row tuples (pure backend)."""
    local = {
        atom.name: simulator.worker_rows(worker, key_of(atom.name))
        for atom in query.atoms
    }
    return evaluate_query(query, local)


def slice_pool_for_workers(
    pool: ColumnPool, workers: list[int]
) -> tuple[tuple, "object", bool]:
    """Restrict a delivery pool to the listed workers.

    Returns:
        ``(columns, segments, source_sorted)`` -- the selected rows'
        value columns, a parallel int64 array mapping each row to its
        position in ``workers`` (the segment id), and whether the
        selection still preserves per-segment source order.  Selecting
        a prefix ``0..k-1`` (the overwhelmingly common case) is a
        zero-copy basic slice of the pool.
    """
    numpy = require_numpy()
    offsets = pool.offsets
    counts = offsets[1:] - offsets[:-1]
    k = len(workers)
    if workers == list(range(k)):
        end = int(offsets[k]) if k else 0
        columns = tuple(column[:end] for column in pool.columns)
        segment_counts = counts[:k]
        source_sorted = pool.source_sorted
    else:
        chosen = numpy.asarray(workers, dtype=numpy.int64)
        starts = offsets[chosen]
        segment_counts = counts[chosen]
        total = int(segment_counts.sum())
        run_starts = numpy.repeat(starts, segment_counts)
        run_offsets = numpy.arange(total, dtype=numpy.int64) - numpy.repeat(
            numpy.concatenate(
                ([0], numpy.cumsum(segment_counts)[:-1])
            )
            if k
            else numpy.zeros(0, dtype=numpy.int64),
            segment_counts,
        )
        gather = run_starts + run_offsets
        columns = tuple(column[gather] for column in pool.columns)
        # A non-ascending worker list still yields correct segments
        # (ids index into ``workers``), but only an ascending one
        # keeps the (segment, row) order the sort-free join needs.
        source_sorted = pool.source_sorted and all(
            workers[i] < workers[i + 1] for i in range(k - 1)
        )
    segment = numpy.repeat(
        numpy.arange(k, dtype=numpy.int64), segment_counts
    )
    return columns, segment, source_sorted


def fleet_answer_table(
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    workers: list[int],
    key_of: KeyOf = _identity_key,
):
    """All workers' answers via the segmented fleet-wide join.

    Returns ``(merged, per_server)`` exactly as
    :func:`merged_answer_table_per_worker` computes them, or None when
    some atom's deliveries are not available as a
    :class:`~repro.mpc.simulator.ColumnPool` (row-path deliveries
    mixed in, or nothing delivered) and the caller must fall back to
    the per-worker path.
    """
    numpy = require_numpy()
    fragments: dict[str, tuple] = {}
    segments: dict[str, object] = {}
    sorted_relations: set[str] = set()
    for atom in query.atoms:
        pool = simulator.relation_pool(key_of(atom.name))
        if pool is None:
            return None
        columns, segment, source_sorted = slice_pool_for_workers(
            pool, workers
        )
        fragments[atom.name] = columns
        segments[atom.name] = segment
        if source_sorted:
            sorted_relations.add(atom.name)
    answers, answer_segments = evaluate_query_table_segmented(
        query,
        fragments,
        segments,
        num_segments=len(workers),
        assume_unique=True,
        sorted_relations=sorted_relations,
    )
    per_server = numpy.bincount(
        answer_segments, minlength=len(workers)
    ).tolist()
    if len(answers):
        merged = numpy.unique(answers, axis=0)
    else:
        merged = numpy.zeros((0, len(query.head)), dtype=numpy.int64)
    return merged, per_server


def merged_answer_table_per_worker(
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    workers: Iterable[int],
    key_of: KeyOf = _identity_key,
):
    """All workers' answers merged, one worker at a time (reference).

    The pre-pooling numpy path: per worker, concatenate its mailbox
    batches and join, then merge.  Kept as the fallback for mixed
    row/column deliveries and as the baseline the segmented speedup
    gate compares against.

    Returns:
        ``(merged, per_server)`` -- the deduplicated union (sorted
        lexicographically, i.e. exactly the order Python tuple sorting
        gives) and the per-worker answer counts in iteration order.
    """
    numpy = require_numpy()
    per_server: list[int] = []
    tables = []
    for worker in workers:
        table = worker_answer_table(query, simulator, worker, key_of)
        per_server.append(len(table))
        if len(table):
            tables.append(table)
    if tables:
        merged = numpy.unique(numpy.concatenate(tables), axis=0)
    else:
        merged = numpy.zeros((0, len(query.head)), dtype=numpy.int64)
    return merged, per_server


def _merged_answer_table(
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    workers: Iterable[int],
    key_of: KeyOf,
    segmented: bool | None = None,
):
    """Dispatch: segmented fleet-wide join, per-worker loop fallback.

    Args:
        segmented: None (default) picks a path with the
            :func:`_prefer_segmented` size heuristic (and falls back
            to per-worker when pools are unavailable); True requires
            the segmented path (raises if unavailable -- used by
            tests); False forces the per-worker reference loop.
            Either path returns identical answers and counts.
    """
    workers = list(workers)
    if segmented is None:
        if _prefer_segmented(query, simulator, workers, key_of) is False:
            return merged_answer_table_per_worker(
                query, simulator, workers, key_of
            )
    if segmented is not False:
        result = fleet_answer_table(query, simulator, workers, key_of)
        if result is not None:
            return result
        if segmented is True:
            raise RuntimeError(
                "segmented evaluation requested but some relation has "
                "no delivery pool (row-path deliveries present?)"
            )
    return merged_answer_table_per_worker(query, simulator, workers, key_of)


def _measure_local(profiler: RoundProfiler | None, simulator: MPCSimulator):
    if profiler is None:
        return nullcontext()
    return profiler.measure(simulator.round_index, "local")


def collect_answers(
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    workers: Iterable[int],
    backend: str,
    key_of: KeyOf = _identity_key,
    segmented: bool | None = None,
    profiler: RoundProfiler | None = None,
) -> tuple[tuple[tuple[int, ...], ...], list[int]]:
    """Evaluate ``query`` at every worker and union the results.

    Returns:
        ``(answers, per_server)`` -- the sorted duplicate-free union
        of all workers' answers, and the per-worker answer counts in
        iteration order.  Both are backend-independent.
    """
    with _measure_local(profiler, simulator):
        if backend == NUMPY:
            merged, per_server = _merged_answer_table(
                query, simulator, workers, key_of, segmented
            )
            return tuple(map(tuple, merged.tolist())), per_server
        per_server: list[int] = []
        answers: set[tuple[int, ...]] = set()
        for worker in workers:
            found = worker_answer_rows(query, simulator, worker, key_of)
            per_server.append(len(found))
            answers.update(found)
        return tuple(sorted(answers)), per_server


def materialise_view(
    name: str,
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    workers: Iterable[int],
    backend: str,
    domain_size: int,
    key_of: KeyOf = _identity_key,
    segmented: bool | None = None,
    profiler: RoundProfiler | None = None,
) -> tuple[ColumnarRelation, list[int]]:
    """Materialise an operator's output view from all workers' answers.

    The view's schema is ``query.head``; its tuples are the sorted
    duplicate-free union of the per-worker evaluations, stored
    columnar under ``backend`` so the next round can re-route the view
    by content exactly like a base relation (the tuple-based MPC
    discipline of Section 4.2.1).

    Returns:
        ``(view, per_server_counts)``.
    """
    arity = len(query.head)
    if backend == NUMPY:
        numpy = require_numpy()
        with _measure_local(profiler, simulator):
            merged, per_server = _merged_answer_table(
                query, simulator, workers, key_of, segmented
            )
        view = ColumnarRelation(
            name=name,
            arity=arity,
            columns=tuple(
                numpy.ascontiguousarray(merged[:, position])
                for position in range(arity)
            ),
            domain_size=domain_size,
            backend=NUMPY,
        )
        return view, per_server
    answers, per_server = collect_answers(
        query, simulator, workers, backend, key_of, profiler=profiler
    )
    view = ColumnarRelation(
        name=name,
        arity=arity,
        columns=tuple(
            [row[position] for row in answers] for position in range(arity)
        ),
        domain_size=domain_size,
        backend=backend,
    )
    return view, per_server


def fragment_tuple_count(
    simulator: MPCSimulator, worker: int, relation: str, backend: str
) -> int:
    """Tuples of ``relation`` held by ``worker`` (backend-aware)."""
    if backend == NUMPY:
        pool = simulator.relation_pool(relation)
        if pool is not None:
            return pool.worker_count(worker)
        return sum(
            len(batch[0]) if batch else 0
            for batch in simulator.worker_column_batches(worker, relation)
        )
    return len(simulator.worker_rows(worker, relation))
