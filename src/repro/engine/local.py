"""Post-round local evaluation shared by every algorithm.

After the engine delivers a round, each worker evaluates a conjunctive
query over the fragments it received.  This module is the single
join-and-collect loop: the ``pure`` backend runs the reference
backtracking join over mailbox rows; the ``numpy`` backend evaluates
the *whole fleet* in one vectorized pass -- the simulator's delivery
pools (:class:`~repro.mpc.simulator.ColumnPool`) hand over every
worker's fragments as contiguous slices of one column pool plus a
``(worker -> offset range)`` index, and
:func:`~repro.algorithms.localjoin.evaluate_query_table_segmented`
joins all ``p`` workers at once by prepending the worker id to every
join key.  Per-server answer counts fall out of one ``bincount`` over
the answer segment ids; the deduplicated union out of one ``unique``.

The previous per-worker numpy loop (concatenate each worker's
batches, join, merge) is kept as :func:`merged_answer_table_per_worker`
-- it is the fallback when pools are unavailable (row-path deliveries
mixed in) and the baseline the segmented speedup gate measures
against.  Either way the callers get back identical answer sets,
per-server answer counts and (for the multi-round executor)
materialised views.

Routing never delivers the same source row twice to one worker under
any :class:`~repro.engine.steps.RoutingStep` (a step's destination set
per row is duplicate-free, and engine sources are deduplicated), so
the columnar paths can skip the dedup passes (``assume_unique``).
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import Any, Callable, Iterable

from repro.backend import NUMPY, require_numpy
from repro.algorithms.localjoin import (
    evaluate_query,
    evaluate_query_table,
    evaluate_query_table_segmented,
)
from repro.core.query import ConjunctiveQuery
from repro.data.columnar import ColumnarRelation
from repro.engine.deadline import Deadline
from repro.engine.profile import RoundProfiler
from repro.mpc.simulator import ColumnPool, MPCSimulator

KeyOf = Callable[[str], str]

#: Dispatch threshold of the segmented-vs-per-worker heuristic: the
#: fleet-wide join is chosen when pooled rows per unit of span-table
#: domain (``len(workers) * max key value``) reach this density.  The
#: segmented join's fixed cost is its direct-address span tables,
#: sized by that domain; when deliveries are sparse relative to it
#: (tiny fragments -- e.g. C_3 at p=64, n=1e5: density ~0.19, where
#: the per-worker loop measures ~1.4x faster) the tables dominate and
#: the per-worker loop wins.  Measured crossover sits between C_3 at
#: p=64 (0.19, per-worker faster) and C_3 at p=16 / L_4 at p=64
#: (~0.5, segmented faster); the speedup gate's L_8 regime is >> 1.
SEGMENTED_DENSITY_THRESHOLD = 0.3


def _identity_key(name: str) -> str:
    return name


def _prefer_segmented(
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    workers: list[int],
    key_of: KeyOf,
) -> bool | None:
    """Size heuristic: is the fleet-wide join worth its span tables?

    Returns None when some atom has no delivery pool (the segmented
    path is unavailable regardless), else the density decision
    described at :data:`SEGMENTED_DENSITY_THRESHOLD`.  The inputs --
    pooled row counts and column maxima -- are one vectorized pass
    over data the join would touch anyway.
    """
    total_rows = 0
    max_key = 1
    for atom in query.atoms:
        pool = simulator.relation_pool(key_of(atom.name))
        if pool is None:
            return None
        total_rows += len(pool)
        for column in pool.columns:
            if len(column):
                max_key = max(max_key, int(column.max()))
    if total_rows == 0:
        return True
    density = total_rows / (max(1, len(workers)) * max_key)
    return density >= SEGMENTED_DENSITY_THRESHOLD


def _worker_fragments_columnar(
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    worker: int,
    key_of: KeyOf,
) -> dict[str, tuple] | None:
    """Concatenate a worker's column batches per atom; None if any empty."""
    numpy = require_numpy()
    fragments: dict[str, tuple] = {}
    for atom in query.atoms:
        batches = simulator.worker_column_batches(worker, key_of(atom.name))
        if not batches:
            return None
        if len(batches) == 1:
            fragments[atom.name] = batches[0]
        else:
            fragments[atom.name] = tuple(
                numpy.concatenate([batch[i] for batch in batches])
                for i in range(len(batches[0]))
            )
    return fragments


def worker_answer_table(
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    worker: int,
    key_of: KeyOf = _identity_key,
):
    """One worker's answers as an int64 table (numpy backend)."""
    numpy = require_numpy()
    fragments = _worker_fragments_columnar(query, simulator, worker, key_of)
    if fragments is None:
        return numpy.zeros((0, len(query.head)), dtype=numpy.int64)
    return evaluate_query_table(query, fragments, assume_unique=True)


def worker_answer_rows(
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    worker: int,
    key_of: KeyOf = _identity_key,
) -> tuple[tuple[int, ...], ...]:
    """One worker's answers as sorted row tuples (pure backend)."""
    local = {
        atom.name: simulator.worker_rows(worker, key_of(atom.name))
        for atom in query.atoms
    }
    return evaluate_query(query, local)


def slice_pool_for_workers(
    pool: ColumnPool, workers: list[int]
) -> tuple[tuple, "object", bool]:
    """Restrict a delivery pool to the listed workers.

    Returns:
        ``(columns, segments, source_sorted)`` -- the selected rows'
        value columns, a parallel int64 array mapping each row to its
        position in ``workers`` (the segment id), and whether the
        selection still preserves per-segment source order.  Selecting
        a prefix ``0..k-1`` (the overwhelmingly common case) is a
        zero-copy basic slice of the pool.
    """
    numpy = require_numpy()
    offsets = pool.offsets
    counts = offsets[1:] - offsets[:-1]
    k = len(workers)
    if workers == list(range(k)):
        end = int(offsets[k]) if k else 0
        columns = tuple(column[:end] for column in pool.columns)
        segment_counts = counts[:k]
        source_sorted = pool.source_sorted
    else:
        chosen = numpy.asarray(workers, dtype=numpy.int64)
        starts = offsets[chosen]
        segment_counts = counts[chosen]
        total = int(segment_counts.sum())
        run_starts = numpy.repeat(starts, segment_counts)
        run_offsets = numpy.arange(total, dtype=numpy.int64) - numpy.repeat(
            numpy.concatenate(
                ([0], numpy.cumsum(segment_counts)[:-1])
            )
            if k
            else numpy.zeros(0, dtype=numpy.int64),
            segment_counts,
        )
        gather = run_starts + run_offsets
        columns = tuple(column[gather] for column in pool.columns)
        # A non-ascending worker list still yields correct segments
        # (ids index into ``workers``), but only an ascending one
        # keeps the (segment, row) order the sort-free join needs.
        source_sorted = pool.source_sorted and all(
            workers[i] < workers[i + 1] for i in range(k - 1)
        )
    segment = numpy.repeat(
        numpy.arange(k, dtype=numpy.int64), segment_counts
    )
    return columns, segment, source_sorted


def fleet_answer_table(
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    workers: list[int],
    key_of: KeyOf = _identity_key,
):
    """All workers' answers via the segmented fleet-wide join.

    Returns ``(merged, per_server)`` exactly as
    :func:`merged_answer_table_per_worker` computes them, or None when
    some atom's deliveries are not available as a
    :class:`~repro.mpc.simulator.ColumnPool` (row-path deliveries
    mixed in, or nothing delivered) and the caller must fall back to
    the per-worker path.
    """
    numpy = require_numpy()
    fragments: dict[str, tuple] = {}
    segments: dict[str, object] = {}
    sorted_relations: set[str] = set()
    for atom in query.atoms:
        pool = simulator.relation_pool(key_of(atom.name))
        if pool is None:
            return None
        columns, segment, source_sorted = slice_pool_for_workers(
            pool, workers
        )
        fragments[atom.name] = columns
        segments[atom.name] = segment
        if source_sorted:
            sorted_relations.add(atom.name)
    answers, answer_segments = evaluate_query_table_segmented(
        query,
        fragments,
        segments,
        num_segments=len(workers),
        assume_unique=True,
        sorted_relations=sorted_relations,
    )
    per_server = numpy.bincount(
        answer_segments, minlength=len(workers)
    ).tolist()
    if len(answers):
        merged = numpy.unique(answers, axis=0)
    else:
        merged = numpy.zeros((0, len(query.head)), dtype=numpy.int64)
    return merged, per_server


def merged_answer_table_per_worker(
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    workers: Iterable[int],
    key_of: KeyOf = _identity_key,
):
    """All workers' answers merged, one worker at a time (reference).

    The pre-pooling numpy path: per worker, concatenate its mailbox
    batches and join, then merge.  Kept as the fallback for mixed
    row/column deliveries and as the baseline the segmented speedup
    gate compares against.

    Returns:
        ``(merged, per_server)`` -- the deduplicated union (sorted
        lexicographically, i.e. exactly the order Python tuple sorting
        gives) and the per-worker answer counts in iteration order.
    """
    numpy = require_numpy()
    per_server: list[int] = []
    tables = []
    for worker in workers:
        table = worker_answer_table(query, simulator, worker, key_of)
        per_server.append(len(table))
        if len(table):
            tables.append(table)
    if tables:
        merged = numpy.unique(numpy.concatenate(tables), axis=0)
    else:
        merged = numpy.zeros((0, len(query.head)), dtype=numpy.int64)
    return merged, per_server


def evaluate_shard_pools(
    query: ConjunctiveQuery,
    pools: dict[str, ColumnPool | None],
    width: int,
):
    """Evaluate one contiguous worker shard from per-atom pools.

    ``pools`` maps atom name to that shard's delivery pool (None when
    the relation received nothing -- an empty fragment, exactly what a
    worker with no deliveries joins against).  Returns ``(answers
    table, per-worker answer counts)`` for the shard's ``width``
    workers.  Shared verbatim by the in-process shard loop and the
    process-pool eval task, so both produce identical rows.
    """
    numpy = require_numpy()
    fragments: dict[str, tuple] = {}
    segments: dict[str, object] = {}
    sorted_relations: set[str] = set()
    for atom in query.atoms:
        pool = pools.get(atom.name)
        if pool is None or not len(pool.columns):
            fragments[atom.name] = tuple(
                numpy.zeros(0, dtype=numpy.int64)
                for _ in range(atom.arity)
            )
            segments[atom.name] = numpy.zeros(0, dtype=numpy.int64)
            sorted_relations.add(atom.name)
            continue
        counts = pool.offsets[1:] - pool.offsets[:-1]
        fragments[atom.name] = pool.columns
        segments[atom.name] = numpy.repeat(
            numpy.arange(width, dtype=numpy.int64), counts
        )
        if pool.source_sorted:
            sorted_relations.add(atom.name)
    answers, answer_segments = evaluate_query_table_segmented(
        query,
        fragments,
        segments,
        num_segments=width,
        assume_unique=True,
        sorted_relations=sorted_relations,
    )
    per_worker = numpy.bincount(answer_segments, minlength=width)
    return answers, per_worker.tolist()


def _plan_eval_shards(
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    k: int,
    key_of: KeyOf,
    shard_bytes: int | None = None,
) -> list[tuple[int, int]]:
    """Contiguous worker shards whose pooled bytes fit the eval budget.

    The budget covers the *sum* of all atoms' fragments in a shard --
    the rows the segmented join actually touches at once.
    """
    from repro.engine.streaming import (
        plan_worker_shards,
        resolve_shard_bytes,
    )

    numpy = require_numpy()
    per_worker = numpy.zeros(k, dtype=numpy.int64)
    for atom in query.atoms:
        byte_counts = simulator.pool_worker_bytes(key_of(atom.name))
        if byte_counts is not None:
            per_worker += byte_counts[:k]
    return plan_worker_shards(per_worker, k, resolve_shard_bytes(shard_bytes))


def _lazy_shard_specs(
    query: ConjunctiveQuery, simulator: MPCSimulator, key_of: KeyOf
) -> list[tuple[str, tuple]] | None:
    """Per-atom streamed recipes, when recipes alone cover the query.

    Returns ``[(atom name, contributions), ...]`` -- empty tuples for
    atoms with no deliveries -- or None when some atom has row-path or
    eager columnar deliveries (the process-pool eval task rebuilds
    shard pools exclusively from streamed recipes, so mixed deliveries
    evaluate in the parent instead).
    """
    specs: list[tuple[str, tuple]] = []
    for atom in query.atoms:
        key = key_of(atom.name)
        if simulator.has_row_deliveries(key) or simulator.has_eager_pools(
            key
        ):
            return None
        specs.append((atom.name, simulator.lazy_contributions(key)))
    return specs


def _submit_eval_shards(
    query: ConjunctiveQuery,
    specs: list[tuple[str, tuple]],
    shards: list[tuple[int, int]],
    p: int,
    parallel: Any,
) -> list[Any]:
    """Publish the recipes' sources and submit one task per shard.

    May raise :class:`~repro.engine.parallel.pool.PoolBroken`; the
    callers fall back to in-process shard evaluation.
    """
    from repro.engine.parallel.pool import eval_shard_task

    task_specs = [
        (
            name,
            tuple(
                (
                    contribution.step,
                    parallel.handle_for(contribution.columns),
                    contribution.num_rows,
                    contribution.chunk_rows,
                    contribution.source_sorted,
                )
                for contribution in contributions
            ),
        )
        for name, contributions in specs
    ]
    detach = parallel.evicted_names()
    return [
        parallel.pool.submit(
            eval_shard_task, query, task_specs, lo, hi, p, detach
        )
        for lo, hi in shards
    ]


def _eval_shard_local(
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    lo: int,
    hi: int,
    key_of: KeyOf,
):
    """Materialise and evaluate workers ``[lo, hi)`` in-process."""
    pools = {
        atom.name: simulator.pool_shard(key_of(atom.name), lo, hi)
        for atom in query.atoms
    }
    return evaluate_shard_pools(query, pools, hi - lo)


def _eval_shard_snapshot(
    query: ConjunctiveQuery,
    snapshots: list[tuple[str, tuple]],
    lo: int,
    hi: int,
    p: int,
):
    """Evaluate one shard from snapshotted recipes (async fallback)."""
    from repro.engine.streaming import materialize_shard

    pools = {
        name: materialize_shard(contributions, lo, hi, p)
        if contributions
        else None
        for name, contributions in snapshots
    }
    return evaluate_shard_pools(query, pools, hi - lo)


def _eval_shards_parallel(
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    shards: list[tuple[int, int]],
    key_of: KeyOf,
    parallel: Any,
    profiler: RoundProfiler | None,
) -> list[tuple] | None:
    """Evaluate the shards on the process pool; None means go serial.

    Any worker-side failure (a died process, an unlinked segment)
    degrades to the in-process path, which computes the identical
    result from the simulator's own state.
    """
    specs = _lazy_shard_specs(query, simulator, key_of)
    if specs is None:
        return None
    try:
        futures = _submit_eval_shards(
            query, specs, shards, simulator.num_workers, parallel
        )
        results = parallel.pool.collect(futures)
    except Exception:
        return None
    if profiler is not None:
        round_index = simulator.round_index
        for shard_index, result in enumerate(results):
            profiler.add_shard(round_index, shard_index, result["seconds"])
            profiler.add_block(round_index, "eval", result["seconds"])
    return [(result["answers"], result["per_server"]) for result in results]


def sharded_answer_table(
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    workers: list[int],
    key_of: KeyOf = _identity_key,
    parallel: Any = None,
    profiler: RoundProfiler | None = None,
    shard_bytes: int | None = None,
    deadline: Deadline | None = None,
):
    """All workers' answers, one bounded worker shard at a time.

    The streamed counterpart of :func:`fleet_answer_table`: instead of
    pooling every delivery fleet-wide, contiguous worker ranges are
    materialised (eager pools sliced zero-copy, streamed recipes
    re-routed for the range), evaluated with the same segmented join,
    and freed -- peak memory is one shard's pool plus join
    temporaries, independent of ``n``.  With a usable ``parallel``
    context and purely streamed deliveries the shards evaluate on the
    process pool.  Returns ``(merged, per_server)`` exactly as the
    monolithic paths compute them, or None when ``workers`` is not the
    prefix ``0..k-1`` or some atom saw row-path deliveries.
    """
    numpy = require_numpy()
    k = len(workers)
    if k == 0 or workers != list(range(k)):
        return None
    for atom in query.atoms:
        if simulator.has_row_deliveries(key_of(atom.name)):
            return None
    shards = _plan_eval_shards(query, simulator, k, key_of, shard_bytes)
    results = None
    if parallel is not None and parallel.usable:
        results = _eval_shards_parallel(
            query, simulator, shards, key_of, parallel, profiler
        )
    if results is None:
        results = []
        for lo, hi in shards:
            if deadline is not None:
                deadline.check("local-eval shard")
            began = time.perf_counter()
            results.append(
                _eval_shard_local(query, simulator, lo, hi, key_of)
            )
            if profiler is not None:
                profiler.add_block(
                    simulator.round_index,
                    "eval",
                    time.perf_counter() - began,
                )
    per_server: list[int] = []
    tables = []
    for answers, counts in results:
        per_server.extend(counts)
        if len(answers):
            tables.append(answers)
    if tables:
        merged = numpy.unique(numpy.concatenate(tables), axis=0)
    else:
        merged = numpy.zeros((0, len(query.head)), dtype=numpy.int64)
    return merged, per_server


def _merged_answer_table(
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    workers: Iterable[int],
    key_of: KeyOf,
    segmented: bool | None = None,
    parallel: Any = None,
    profiler: RoundProfiler | None = None,
    deadline: Deadline | None = None,
):
    """Dispatch: segmented fleet-wide join, per-worker loop fallback.

    Args:
        segmented: None (default) picks a path with the
            :func:`_prefer_segmented` size heuristic (and falls back
            to per-worker when pools are unavailable); True requires
            the segmented path (raises if unavailable -- used by
            tests); False forces the per-worker reference loop.
            Either path returns identical answers and counts.

    Streamed (lazy) deliveries override ``segmented``: the per-worker
    mailbox loop cannot see recipe-only deliveries and fleet-wide
    pooling is the memory cliff streaming exists to avoid, so
    shard-wise evaluation is taken whenever it applies and full
    materialisation through :func:`fleet_answer_table` is the only
    fallback.
    """
    workers = list(workers)
    if any(
        simulator.has_lazy_deliveries(key_of(atom.name))
        for atom in query.atoms
    ):
        result = sharded_answer_table(
            query,
            simulator,
            workers,
            key_of,
            parallel=parallel,
            profiler=profiler,
            deadline=deadline,
        )
        if result is not None:
            return result
        result = fleet_answer_table(query, simulator, workers, key_of)
        if result is not None:
            return result
        raise RuntimeError(
            "streamed and row-path deliveries mixed in one query; "
            "no evaluation path sees both"
        )
    if segmented is None:
        if _prefer_segmented(query, simulator, workers, key_of) is False:
            return merged_answer_table_per_worker(
                query, simulator, workers, key_of
            )
    if segmented is not False:
        result = fleet_answer_table(query, simulator, workers, key_of)
        if result is not None:
            return result
        if segmented is True:
            raise RuntimeError(
                "segmented evaluation requested but some relation has "
                "no delivery pool (row-path deliveries present?)"
            )
    return merged_answer_table_per_worker(query, simulator, workers, key_of)


def _measure_local(profiler: RoundProfiler | None, simulator: MPCSimulator):
    if profiler is None:
        return nullcontext()
    return profiler.measure(simulator.round_index, "local")


def collect_answers(
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    workers: Iterable[int],
    backend: str,
    key_of: KeyOf = _identity_key,
    segmented: bool | None = None,
    profiler: RoundProfiler | None = None,
    parallel: Any = None,
    deadline: Deadline | None = None,
) -> tuple[tuple[tuple[int, ...], ...], list[int]]:
    """Evaluate ``query`` at every worker and union the results.

    Returns:
        ``(answers, per_server)`` -- the sorted duplicate-free union
        of all workers' answers, and the per-worker answer counts in
        iteration order.  Both are backend-independent (and
        ``parallel``-independent: a usable
        :class:`~repro.engine.parallel.engine.ParallelContext` only
        moves streamed shard evaluation onto the process pool).
    """
    with _measure_local(profiler, simulator):
        if backend == NUMPY:
            merged, per_server = _merged_answer_table(
                query,
                simulator,
                workers,
                key_of,
                segmented,
                parallel=parallel,
                profiler=profiler,
                deadline=deadline,
            )
            return tuple(map(tuple, merged.tolist())), per_server
        per_server: list[int] = []
        answers: set[tuple[int, ...]] = set()
        for worker in workers:
            found = worker_answer_rows(query, simulator, worker, key_of)
            per_server.append(len(found))
            answers.update(found)
        return tuple(sorted(answers)), per_server


def materialise_view(
    name: str,
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    workers: Iterable[int],
    backend: str,
    domain_size: int,
    key_of: KeyOf = _identity_key,
    segmented: bool | None = None,
    profiler: RoundProfiler | None = None,
    parallel: Any = None,
    deadline: Deadline | None = None,
) -> tuple[ColumnarRelation, list[int]]:
    """Materialise an operator's output view from all workers' answers.

    The view's schema is ``query.head``; its tuples are the sorted
    duplicate-free union of the per-worker evaluations, stored
    columnar under ``backend`` so the next round can re-route the view
    by content exactly like a base relation (the tuple-based MPC
    discipline of Section 4.2.1).

    Returns:
        ``(view, per_server_counts)``.
    """
    arity = len(query.head)
    if backend == NUMPY:
        numpy = require_numpy()
        with _measure_local(profiler, simulator):
            merged, per_server = _merged_answer_table(
                query,
                simulator,
                workers,
                key_of,
                segmented,
                parallel=parallel,
                profiler=profiler,
                deadline=deadline,
            )
        view = _view_from_table(name, merged, arity, domain_size)
        return view, per_server
    answers, per_server = collect_answers(
        query, simulator, workers, backend, key_of, profiler=profiler
    )
    view = ColumnarRelation(
        name=name,
        arity=arity,
        columns=tuple(
            [row[position] for row in answers] for position in range(arity)
        ),
        domain_size=domain_size,
        backend=backend,
    )
    return view, per_server


def _view_from_table(
    name: str, merged: Any, arity: int, domain_size: int
) -> ColumnarRelation:
    """An answer table as a columnar relation (numpy backend)."""
    numpy = require_numpy()
    return ColumnarRelation(
        name=name,
        arity=arity,
        columns=tuple(
            numpy.ascontiguousarray(merged[:, position])
            for position in range(arity)
        ),
        domain_size=domain_size,
        backend=NUMPY,
    )


class PendingView:
    """A view materialisation in flight on the process pool.

    Created by :func:`materialise_view_async`; the caller keeps
    routing the next round while the shard futures evaluate, then
    calls :meth:`result` when -- and only when -- a data dependency
    needs the view.  The evaluation inputs were snapshotted at submit
    time (immutable streamed recipes), so resolving after further
    rounds ran cannot change the answer, including the in-process
    fallback taken when the pool breaks mid-flight: it re-evaluates
    the same snapshot shard by shard.
    """

    def __init__(
        self,
        name: str,
        query: ConjunctiveQuery,
        shards: list[tuple[int, int]],
        futures: list[Any],
        snapshots: list[tuple[str, tuple]],
        pool: Any,
        num_workers: int,
        domain_size: int,
        round_index: int,
        profiler: RoundProfiler | None,
    ) -> None:
        self.name = name
        self.query = query
        self.shards = shards
        self.futures = futures
        self.snapshots = snapshots
        self.pool = pool
        self.num_workers = num_workers
        self.domain_size = domain_size
        self.round_index = round_index
        self.profiler = profiler
        self._submitted = time.perf_counter()

    def result(self) -> tuple[ColumnarRelation, list[int]]:
        """Block on the shards and merge; identical to the sync path."""
        numpy = require_numpy()
        waited = time.perf_counter()
        profiler = self.profiler
        try:
            collected = self.pool.collect(self.futures)
            results = [
                (result["answers"], result["per_server"])
                for result in collected
            ]
            if profiler is not None:
                for shard_index, result in enumerate(collected):
                    profiler.add_shard(
                        self.round_index, shard_index, result["seconds"]
                    )
                    profiler.add_block(
                        self.round_index, "eval", result["seconds"]
                    )
        except Exception:
            # A died worker or an evicted segment: recompute the
            # identical result from the snapshot, in-process.
            results = [
                _eval_shard_snapshot(
                    self.query, self.snapshots, lo, hi, self.num_workers
                )
                for lo, hi in self.shards
            ]
        if profiler is not None:
            profiler.add_overlap(
                self.round_index, waited - self._submitted
            )
        per_server: list[int] = []
        tables = []
        for answers, counts in results:
            per_server.extend(counts)
            if len(answers):
                tables.append(answers)
        if tables:
            merged = numpy.unique(numpy.concatenate(tables), axis=0)
        else:
            merged = numpy.zeros(
                (0, len(self.query.head)), dtype=numpy.int64
            )
        view = _view_from_table(
            self.name, merged, len(self.query.head), self.domain_size
        )
        if profiler is not None:
            profiler.add(
                self.round_index, "local", time.perf_counter() - waited
            )
        return view, per_server


def materialise_view_async(
    name: str,
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    workers: Iterable[int],
    backend: str,
    domain_size: int,
    key_of: KeyOf = _identity_key,
    parallel: Any = None,
    profiler: RoundProfiler | None = None,
    shard_bytes: int | None = None,
) -> PendingView | None:
    """Submit a view's shard evaluation to the process pool, or None.

    The streamed-overlap entry point: when the view's deliveries are
    purely streamed recipes and a usable parallel context is at hand,
    the shard-eval tasks are dispatched immediately and a
    :class:`PendingView` handle is returned -- its :meth:`result
    <PendingView.result>` yields exactly what :func:`materialise_view`
    returns.  None means overlap is not possible here (pure backend,
    no pool, non-prefix workers, eager or row-path deliveries mixed
    in, or nothing delivered at all); the caller materialises
    synchronously, which is always correct.
    """
    if backend != NUMPY or parallel is None or not parallel.usable:
        return None
    workers = list(workers)
    k = len(workers)
    if k == 0 or workers != list(range(k)):
        return None
    specs = _lazy_shard_specs(query, simulator, key_of)
    if specs is None or not any(
        contributions for _, contributions in specs
    ):
        return None
    shards = _plan_eval_shards(query, simulator, k, key_of, shard_bytes)
    from repro.engine.parallel.pool import PoolBroken

    try:
        futures = _submit_eval_shards(
            query, specs, shards, simulator.num_workers, parallel
        )
    except PoolBroken:
        return None
    return PendingView(
        name=name,
        query=query,
        shards=shards,
        futures=futures,
        snapshots=specs,
        pool=parallel.pool,
        num_workers=simulator.num_workers,
        domain_size=domain_size,
        round_index=simulator.round_index,
        profiler=profiler,
    )


def fragment_tuple_count(
    simulator: MPCSimulator, worker: int, relation: str, backend: str
) -> int:
    """Tuples of ``relation`` held by ``worker`` (backend-aware)."""
    if backend == NUMPY:
        counts = simulator.pool_worker_counts(relation)
        if counts is not None:
            return int(counts[worker])
        return sum(
            len(batch[0]) if batch else 0
            for batch in simulator.worker_column_batches(worker, relation)
        )
    return len(simulator.worker_rows(worker, relation))
