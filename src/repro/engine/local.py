"""Post-round local evaluation shared by every algorithm.

After the engine delivers a round, each worker evaluates a conjunctive
query over the fragments it received.  This module is the single
join-and-collect loop: the ``pure`` backend runs the reference
backtracking join over mailbox rows, the ``numpy`` backend runs the
columnar hash join over mailbox column batches, and either way the
callers get back identical answer sets, per-server answer counts and
(for the multi-round executor) materialised views.

Routing never delivers the same source row twice to one worker under
any :class:`~repro.engine.steps.RoutingStep` (a step's destination set
per row is duplicate-free, and engine sources are deduplicated), so
the columnar path can skip the dedup passes (``assume_unique``).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.backend import NUMPY, require_numpy
from repro.algorithms.localjoin import evaluate_query, evaluate_query_table
from repro.core.query import ConjunctiveQuery
from repro.data.columnar import ColumnarRelation
from repro.mpc.simulator import MPCSimulator

KeyOf = Callable[[str], str]


def _identity_key(name: str) -> str:
    return name


def _worker_fragments_columnar(
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    worker: int,
    key_of: KeyOf,
) -> dict[str, tuple] | None:
    """Concatenate a worker's column batches per atom; None if any empty."""
    numpy = require_numpy()
    fragments: dict[str, tuple] = {}
    for atom in query.atoms:
        batches = simulator.worker_column_batches(worker, key_of(atom.name))
        if not batches:
            return None
        if len(batches) == 1:
            fragments[atom.name] = batches[0]
        else:
            fragments[atom.name] = tuple(
                numpy.concatenate([batch[i] for batch in batches])
                for i in range(len(batches[0]))
            )
    return fragments


def worker_answer_table(
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    worker: int,
    key_of: KeyOf = _identity_key,
):
    """One worker's answers as an int64 table (numpy backend)."""
    numpy = require_numpy()
    fragments = _worker_fragments_columnar(query, simulator, worker, key_of)
    if fragments is None:
        return numpy.zeros((0, len(query.head)), dtype=numpy.int64)
    return evaluate_query_table(query, fragments, assume_unique=True)


def worker_answer_rows(
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    worker: int,
    key_of: KeyOf = _identity_key,
) -> tuple[tuple[int, ...], ...]:
    """One worker's answers as sorted row tuples (pure backend)."""
    local = {
        atom.name: simulator.worker_rows(worker, key_of(atom.name))
        for atom in query.atoms
    }
    return evaluate_query(query, local)


def _merged_answer_table(
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    workers: Iterable[int],
    key_of: KeyOf,
):
    """All workers' answers merged into one sorted unique int64 table.

    Returns:
        ``(merged, per_server)`` -- the deduplicated union (sorted
        lexicographically, i.e. exactly the order Python tuple sorting
        gives) and the per-worker answer counts in iteration order.
    """
    numpy = require_numpy()
    per_server: list[int] = []
    tables = []
    for worker in workers:
        table = worker_answer_table(query, simulator, worker, key_of)
        per_server.append(len(table))
        if len(table):
            tables.append(table)
    if tables:
        merged = numpy.unique(numpy.concatenate(tables), axis=0)
    else:
        merged = numpy.zeros((0, len(query.head)), dtype=numpy.int64)
    return merged, per_server


def collect_answers(
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    workers: Iterable[int],
    backend: str,
    key_of: KeyOf = _identity_key,
) -> tuple[tuple[tuple[int, ...], ...], list[int]]:
    """Evaluate ``query`` at every worker and union the results.

    Returns:
        ``(answers, per_server)`` -- the sorted duplicate-free union
        of all workers' answers, and the per-worker answer counts in
        iteration order.  Both are backend-independent.
    """
    if backend == NUMPY:
        merged, per_server = _merged_answer_table(
            query, simulator, workers, key_of
        )
        return tuple(map(tuple, merged.tolist())), per_server
    per_server: list[int] = []
    answers: set[tuple[int, ...]] = set()
    for worker in workers:
        found = worker_answer_rows(query, simulator, worker, key_of)
        per_server.append(len(found))
        answers.update(found)
    return tuple(sorted(answers)), per_server


def materialise_view(
    name: str,
    query: ConjunctiveQuery,
    simulator: MPCSimulator,
    workers: Iterable[int],
    backend: str,
    domain_size: int,
    key_of: KeyOf = _identity_key,
) -> tuple[ColumnarRelation, list[int]]:
    """Materialise an operator's output view from all workers' answers.

    The view's schema is ``query.head``; its tuples are the sorted
    duplicate-free union of the per-worker evaluations, stored
    columnar under ``backend`` so the next round can re-route the view
    by content exactly like a base relation (the tuple-based MPC
    discipline of Section 4.2.1).

    Returns:
        ``(view, per_server_counts)``.
    """
    arity = len(query.head)
    if backend == NUMPY:
        numpy = require_numpy()
        merged, per_server = _merged_answer_table(
            query, simulator, workers, key_of
        )
        view = ColumnarRelation(
            name=name,
            arity=arity,
            columns=tuple(
                numpy.ascontiguousarray(merged[:, position])
                for position in range(arity)
            ),
            domain_size=domain_size,
            backend=NUMPY,
        )
        return view, per_server
    answers, per_server = collect_answers(
        query, simulator, workers, backend, key_of
    )
    view = ColumnarRelation(
        name=name,
        arity=arity,
        columns=tuple(
            [row[position] for row in answers] for position in range(arity)
        ),
        domain_size=domain_size,
        backend=backend,
    )
    return view, per_server


def fragment_tuple_count(
    simulator: MPCSimulator, worker: int, relation: str, backend: str
) -> int:
    """Tuples of ``relation`` held by ``worker`` (backend-aware)."""
    if backend == NUMPY:
        return sum(
            len(batch[0]) if batch else 0
            for batch in simulator.worker_column_batches(worker, relation)
        )
    return len(simulator.worker_rows(worker, relation))
