"""Per-request deadlines with cooperative cancellation.

The paper's model bounds per-round *load*; a serving layer must also
bound per-request *latency*.  A :class:`Deadline` is a monotonic-clock
budget created when a request starts executing and threaded through
:func:`~repro.engine.executor.execute_plan` into the round engines.
Execution checks it cooperatively at the natural safe points --
between rounds, between streamed blocks, between local-evaluation
shards -- and raises a structured :class:`DeadlineExceeded` carrying
where the budget ran out.

Cancellation is cooperative on purpose: the engine is never interrupted
mid-primitive, so an abandoned execution leaves the simulator in the
same "mid-run" state a :class:`~repro.mpc.simulator.CapacityExceeded`
does -- fully reusable after :meth:`~repro.mpc.simulator.MPCSimulator.
reset`, which is exactly what the serving layer's pooled simulators do
before every request.

Error precedence is deterministic: capacity is evaluated when a round
closes, the deadline between rounds/blocks/shards.  A round that both
overflows a worker and overruns the budget therefore always raises
``CapacityExceeded`` (the round-close check runs first); a budget that
is already spent when a request enters the service raises
``DeadlineExceeded`` before any cached outcome -- including a memoized
``CapacityExceeded`` -- is consulted.
"""

from __future__ import annotations

import time
from typing import Callable


class DeadlineExceeded(Exception):
    """A request's latency budget ran out at a cooperative checkpoint.

    Attributes:
        where: the checkpoint that observed the overrun (e.g.
            ``"between rounds"``, ``"streamed block"``).
        elapsed_ms: milliseconds elapsed when the check fired.
        budget_ms: the request's total budget in milliseconds.
    """

    def __init__(
        self, where: str, elapsed_ms: float, budget_ms: float
    ) -> None:
        super().__init__(
            f"deadline of {budget_ms:.0f} ms exceeded after "
            f"{elapsed_ms:.1f} ms ({where})"
        )
        self.where = where
        self.elapsed_ms = elapsed_ms
        self.budget_ms = budget_ms

    def __reduce__(self):  # field-exact across process boundaries
        return (
            DeadlineExceeded,
            (self.where, self.elapsed_ms, self.budget_ms),
        )


class Deadline:
    """A monotonic latency budget checked at cooperative points.

    Args:
        budget_ms: total budget in milliseconds, counted from
            construction.
        clock: seconds-returning monotonic clock (tests inject a fake
            one to make expiry deterministic).
    """

    __slots__ = ("budget_ms", "_clock", "_started")

    def __init__(
        self,
        budget_ms: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if budget_ms <= 0:
            raise ValueError(f"need budget_ms > 0, got {budget_ms}")
        self.budget_ms = float(budget_ms)
        self._clock = clock
        self._started = clock()

    @classmethod
    def after_ms(cls, budget_ms: float | None) -> "Deadline | None":
        """A deadline from an optional wire/API budget (None passes)."""
        if budget_ms is None:
            return None
        return cls(budget_ms)

    def elapsed_ms(self) -> float:
        """Milliseconds since the budget started."""
        return (self._clock() - self._started) * 1000.0

    def remaining_ms(self) -> float:
        """Milliseconds left; never negative."""
        return max(0.0, self.budget_ms - self.elapsed_ms())

    @property
    def expired(self) -> bool:
        """Whether the budget is spent."""
        return self.elapsed_ms() >= self.budget_ms

    def check(self, where: str) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        elapsed = self.elapsed_ms()
        if elapsed >= self.budget_ms:
            raise DeadlineExceeded(where, elapsed, self.budget_ms)
