"""The round engine: execute routing steps -- and whole plans.

This is the single route/ship loop every algorithm in the repository
compiles to.  A :class:`RoundEngine` wraps one :class:`MPCSimulator`
and a resolved compute backend; :meth:`RoundEngine.run_round` opens a
round, executes each :class:`~repro.engine.steps.RoutingStep` against
its source relation, and closes the round (which delivers messages and
enforces the capacity bound).

Under the ``pure`` backend each step is routed row by row through
:meth:`RoutingStep.destinations` and shipped with per-(receiver,
relation) batching; under ``numpy`` the step's whole routing decision
is computed in one :meth:`RoutingStep.route_columns` pass and shipped
with a single :meth:`MPCSimulator.send_columns` call.  Both paths
produce the same multiset of (row, destination) pairs, so answers,
per-round received bits/tuples and capacity failures are bit-identical
across backends by construction.

Routing and shipping are separate verbs
(:meth:`RoundEngine.route_step` / :meth:`RoundEngine.ship_step`): a
step's routing decision is a pure function of (step, source), so a
serving layer can cache the :class:`RoutedStep` across requests over
an unchanged database and replay only the ship/deliver/local phases --
load accounting and capacity behaviour are recomputed every time, so
cached and fresh executions stay bit-identical.

:func:`execute_plan` is the plan-level entry point: it takes an
immutable :class:`~repro.engine.plan.Plan` (the output of an
algorithm's compiler) plus a database, builds the simulator from the
plan's signature, runs every round (binding heavy hitters and
materialising views where the plan says so) and finalizes the answer.

Vectorized sends carry the step's
:attr:`~repro.engine.steps.RoutingStep.preserves_source_order` promise
so the simulator's delivery pools can mark worker fragments as
pre-sorted -- the precondition of the local join's sort-free path.
An optional :class:`~repro.engine.profile.RoundProfiler` splits each
round's wall-clock into route/ship/deliver phases.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from contextlib import nullcontext
from typing import Any, Mapping, MutableMapping, Sequence

from repro.backend import NUMPY, resolve_backend
from repro.data.columnar import ColumnarDatabase, ColumnarRelation
from repro.engine.deadline import Deadline
from repro.engine.plan import (
    CollectAnswers,
    FinalizeView,
    Plan,
    key_map_of,
)
from repro.engine.profile import RoundProfiler
from repro.engine.steps import HeavyGridRoute, RoutingStep
from repro.mpc.message import input_server
from repro.mpc.model import MPCConfig
from repro.mpc.simulator import MPCSimulator
from repro.mpc.stats import RoundStats, SimulationReport


@dataclass(frozen=True)
class RoutedStep:
    """One step's routing decision, detached from shipping.

    Exactly one representation is populated, matching the backend that
    produced it: ``batches`` maps destination worker to its row list
    (``pure``); ``columns``/``destinations``/``row_indices`` are the
    :meth:`RoutingStep.route_columns` triple (``numpy``).  The routing
    decision is a pure function of (step, source columns), so a
    ``RoutedStep`` may be cached and re-shipped against the same
    source -- replaying it stages the identical multiset of
    (row, destination) pairs.
    """

    batches: tuple[tuple[int, tuple[tuple[int, ...], ...]], ...] | None = None
    columns: tuple | None = None
    destinations: Any = None
    row_indices: Any = None


class RoundEngine:
    """Executes routing-step rounds on one simulator.

    Args:
        simulator: the MPC network to route over.
        backend: ``"pure"``, ``"numpy"`` or ``"auto"``; defaults to
            the simulator config's backend.
        profiler: optional phase-timing collector; when given, every
            round records route/ship/deliver seconds against its round
            index.
        chunk_rows: streaming block size.  When set (numpy backend
            only), shardable steps route in ``chunk_rows``-row blocks
            -- zero-copy column views -- and ship as *lazy* deliveries
            (:meth:`MPCSimulator.stage_lazy_columns`): loads are
            accounted from a per-block counting pass and rows are
            materialised at local-evaluation time one worker shard at
            a time, so the engine's peak memory per step is
            ``O(chunk_rows x replication)`` instead of
            ``O(n x replication)``.  Answers, per-server loads and
            capacity behaviour are bit-identical to the monolithic
            path; None (the default) is exactly today's code.
        deadline: optional per-request latency budget, checked
            cooperatively between streamed blocks (never
            mid-primitive).  Capacity precedence is preserved: the
            deadline is never consulted at round close, so a round
            that both overflows and overruns raises
            ``CapacityExceeded``.
    """

    def __init__(
        self,
        simulator: MPCSimulator,
        backend: str | None = None,
        profiler: RoundProfiler | None = None,
        chunk_rows: int | None = None,
        deadline: Deadline | None = None,
    ) -> None:
        self.simulator = simulator
        self.backend = (
            simulator.config.backend
            if backend is None
            else resolve_backend(backend)
        )
        self.profiler = profiler
        self.chunk_rows = chunk_rows
        self.deadline = deadline

    def _measure(self, phase: str):
        if self.profiler is None:
            return nullcontext()
        return self.profiler.measure(self.simulator.round_index, phase)

    def run_round(
        self,
        steps: Sequence[RoutingStep],
        sources: Mapping[str, ColumnarRelation],
        routed: dict[int, RoutedStep] | None = None,
    ) -> RoundStats:
        """Execute one communication round: route, ship, deliver.

        Args:
            steps: the routing steps of the round.
            sources: source relation/view per step ``relation`` name;
                column storage must match the engine's backend.
            routed: optional pre-computed routing decisions, keyed by
                step index (cache replay).  Missing steps are routed
                fresh -- inside the open round, so the profiler
                attributes their route time to the right round index
                -- and their decisions are written back into the dict
                for the caller to cache.

        Returns:
            The closed round's statistics.

        Raises:
            CapacityExceeded: via :meth:`MPCSimulator.end_round` when
                enforcement is on and a worker's budget is blown.
        """
        self.simulator.begin_round()
        for index, step in enumerate(steps):
            source = sources[step.relation]
            decision = None if routed is None else routed.get(index)
            if decision is None and self._stream_eligible(step, source):
                self.stream_step(step, source)
                continue
            if decision is None:
                decision = self.route_step(step, source)
                if routed is not None:
                    routed[index] = decision
            self.ship_step(step, source, decision)
        with self._measure("deliver"):
            return self.simulator.end_round()

    # -- streaming ----------------------------------------------------------

    def _stream_eligible(
        self, step: RoutingStep, source: ColumnarRelation
    ) -> bool:
        """Whether a step streams in blocks instead of routing whole.

        Block-streaming reuses the shardability contract: routing must
        depend on row content alone so ``route_columns`` over a block
        equals the monolithic decision restricted to those rows.
        Non-shardable steps (global row indices, global signature
        grouping) and the ``pure`` backend route monolithically inside
        an otherwise-streamed round -- always correct, since eager and
        lazy deliveries coexist per relation.
        """
        return (
            self.chunk_rows is not None
            and self.backend == NUMPY
            and step.shardable
            and bool(source.columns)
        )

    def stream_step(
        self, step: RoutingStep, source: ColumnarRelation
    ) -> None:
        """Route one step block-by-block and ship it lazily.

        The route phase is a counting pass (per-block destinations ->
        bincount, arrays freed immediately); the ship phase stages the
        delivery *recipe* plus counts on the simulator.  Load totals
        equal the monolithic ``send_columns`` accounting bit-for-bit,
        so capacity behaviour -- including which worker raises at
        ``end_round`` -- is unchanged.
        """
        from repro.engine.streaming import LazyContribution

        simulator = self.simulator
        with self._measure("route"):
            counts = self._stream_counts(step, source)
        sender = (
            step.sender
            if step.sender is not None
            else input_server(step.relation)
        )
        with self._measure("ship"):
            simulator.stage_lazy_columns(
                sender,
                step.mailbox_key,
                LazyContribution(
                    step=step,
                    columns=source.columns,
                    num_rows=len(source),
                    chunk_rows=self.chunk_rows,
                    source_sorted=step.preserves_source_order,
                ),
                counts,
                bits_per_tuple=source.tuple_bits,
            )

    def _stream_counts(self, step: RoutingStep, source: ColumnarRelation):
        """Per-worker delivered counts of one streamed step."""
        import time as _time

        from repro.backend import require_numpy
        from repro.engine.streaming import iter_blocks

        from repro.serve.faults import block_delay_seconds

        numpy = require_numpy()
        simulator = self.simulator
        p = simulator.num_workers
        counts = numpy.zeros(p, dtype=numpy.int64)
        profiler = self.profiler
        deadline = self.deadline
        block_delay = block_delay_seconds()
        round_index = simulator.round_index
        for start, end in iter_blocks(len(source), self.chunk_rows):
            if deadline is not None:
                deadline.check("streamed block")
            if block_delay > 0:
                _time.sleep(block_delay)
            began = _time.perf_counter()
            block = tuple(column[start:end] for column in source.columns)
            _, destinations, _ = step.route_columns(block, p)
            if len(destinations):
                low = int(destinations.min())
                high = int(destinations.max())
                if low < 0 or high >= p:
                    from repro.mpc.simulator import ProtocolError

                    offender = low if low < 0 else high
                    raise ProtocolError(
                        f"receiver {offender} outside [0, {p})"
                    )
                counts += numpy.bincount(destinations, minlength=p)
            if profiler is not None:
                profiler.add_block(
                    round_index, "route", _time.perf_counter() - began
                )
        return counts

    def execute_step(
        self,
        step: RoutingStep,
        source: ColumnarRelation,
        routed: RoutedStep | None = None,
    ) -> None:
        """Route and stage one step (inside an open round)."""
        if routed is None:
            routed = self.route_step(step, source)
        self.ship_step(step, source, routed)

    def route_step(
        self, step: RoutingStep, source: ColumnarRelation
    ) -> RoutedStep:
        """Compute one step's routing decision (no simulator effects).

        A pure function of (step, source): the result may be cached
        and replayed through :meth:`ship_step` as long as the source
        relation is unchanged.
        """
        p = self.simulator.num_workers
        if self.backend == NUMPY:
            with self._measure("route"):
                columns, destinations, row_indices = step.route_columns(
                    source.columns, p
                )
            return RoutedStep(
                columns=columns,
                destinations=destinations,
                row_indices=row_indices,
            )
        with self._measure("route"):
            batches: dict[int, list[tuple[int, ...]]] = {}
            for index, row in enumerate(source.rows()):
                for destination in step.destinations(row, index, p):
                    batches.setdefault(destination, []).append(row)
        return RoutedStep(
            batches=tuple(
                (destination, tuple(rows))
                for destination, rows in batches.items()
            )
        )

    def ship_step(
        self,
        step: RoutingStep,
        source: ColumnarRelation,
        routed: RoutedStep,
    ) -> None:
        """Stage one routed step on the simulator (inside a round)."""
        simulator = self.simulator
        sender = (
            step.sender
            if step.sender is not None
            else input_server(step.relation)
        )
        key = step.mailbox_key
        if routed.batches is None:
            with self._measure("ship"):
                simulator.send_columns(
                    sender,
                    routed.destinations,
                    key,
                    routed.columns,
                    bits_per_tuple=source.tuple_bits,
                    row_indices=routed.row_indices,
                    source_sorted=step.preserves_source_order,
                )
            return
        with self._measure("ship"):
            for destination, rows in routed.batches:
                simulator.send(
                    sender, destination, key, rows, source.tuple_bits
                )


@dataclass
class PlanExecution:
    """Everything one plan execution produced.

    Attributes:
        plan: the executed plan.
        simulator: the simulator after the run (callers post-process
            fragment counts, reports, mailboxes from here).
        answers: the finalized answer tuples, sorted, in the plan
            query's head order (empty when ``plan.finalize`` is None).
        per_server: per-worker answer counts, zero-padded to ``p``.
        view_sizes: materialised size of every intermediate view.
        per_server_views: per view, each worker's answer contribution.
        heavy_hitters: the heavy values bound during execution, when
            the plan asked for heavy binding.
    """

    plan: Plan
    simulator: MPCSimulator
    answers: tuple[tuple[int, ...], ...] = ()
    per_server: tuple[int, ...] = ()
    view_sizes: dict[str, int] | None = None
    per_server_views: dict[str, tuple[int, ...]] | None = None
    heavy_hitters: dict[str, frozenset[int]] | None = None

    @property
    def report(self) -> SimulationReport:
        """The run's communication statistics."""
        return self.simulator.report


def plan_config(plan: Plan) -> MPCConfig:
    """The :class:`MPCConfig` a plan's signature describes."""
    signature = plan.signature
    return MPCConfig(
        p=signature.p,
        eps=signature.eps,
        c=signature.capacity_c,
        backend=signature.backend,
    )


def plan_simulator(
    plan: Plan,
    input_bits: int,
    simulator: MPCSimulator | None = None,
) -> MPCSimulator:
    """A simulator for one execution of ``plan``.

    Passing an existing ``simulator`` (the serving layer's reuse path)
    resets it in place instead of allocating ``p`` fresh mailboxes;
    its configuration must match the plan's.
    """
    config = plan_config(plan)
    if simulator is None:
        return MPCSimulator(
            config,
            input_bits=input_bits,
            enforce_capacity=plan.signature.enforce_capacity,
        )
    if simulator.config != config:
        raise ValueError(
            f"simulator config {simulator.config} does not match plan "
            f"config {config}"
        )
    simulator.reset(
        input_bits=input_bits,
        enforce_capacity=plan.signature.enforce_capacity,
    )
    return simulator


def _plan_sources(
    database: Any, backend: str
) -> dict[str, ColumnarRelation]:
    """Columnarise any accepted database shape under ``backend``."""
    from repro.data.columnar import columnar_database

    if isinstance(database, Mapping):
        return {
            name: relation.with_backend(backend)
            if isinstance(relation, ColumnarRelation)
            else ColumnarRelation.from_relation(relation, backend)
            for name, relation in database.items()
        }
    return columnar_database(database, backend)


def _database_bits(database: Any, sources: Mapping[str, ColumnarRelation]) -> int:
    """Input size ``N`` in bits for the capacity bound."""
    total = getattr(database, "total_bits", None)
    if total is not None:
        return total
    return sum(relation.size_bits for relation in sources.values())


class _ResolvingEnvironment(dict):
    """An execution environment that resolves pending views on access.

    Streamed executions materialise a round's views *asynchronously*
    (shard-eval tasks on the process pool) while the next round's
    routing proceeds; a step whose source view is still pending blocks
    here, exactly when the data dependency bites and not a moment
    earlier.
    """

    resolver: Any = None

    def __missing__(self, key: str) -> ColumnarRelation:
        if self.resolver is not None:
            self.resolver(key)
            if key in self:
                return dict.__getitem__(self, key)
        raise KeyError(key)


def execute_plan(
    plan: Plan,
    database: Any,
    *,
    profiler: RoundProfiler | None = None,
    simulator: MPCSimulator | None = None,
    routed_cache: MutableMapping[tuple[int, int], RoutedStep] | None = None,
    relation_map: Mapping[str, str] | None = None,
    input_bits: int | None = None,
    parallel: Any = None,
    chunk_rows: int | None = None,
    deadline: Deadline | None = None,
) -> PlanExecution:
    """Execute a compiled plan against a database.

    Args:
        plan: the immutable physical plan (an algorithm compiler's
            output).
        database: a row :class:`~repro.data.database.Database`, a
            :class:`~repro.data.columnar.ColumnarDatabase`, or a plain
            mapping of relation name to
            :class:`~repro.data.columnar.ColumnarRelation`.
        profiler: optional per-round route/ship/deliver/local timing
            collector.
        simulator: optional simulator to reuse (reset in place); must
            match the plan's configuration.
        routed_cache: optional mutable mapping from ``(round index,
            step index)`` to :class:`RoutedStep`.  Hits skip the route
            phase entirely (the serving layer's pre-routed columns);
            misses are routed fresh and written back.  The caller owns
            invalidation -- entries are only valid while the database
            content backing them is unchanged.
        relation_map: plan relation name -> database relation name,
            for executing a cached plan against an isomorphic query's
            relations (the plan-cache rebind).
        input_bits: override for the capacity bound's ``N`` (callers
            with bespoke input accounting, e.g. the cartesian-grid
            baseline).
        parallel: optional
            :class:`~repro.engine.parallel.engine.ParallelContext`;
            when given (and usable) rounds execute on a
            :class:`~repro.engine.parallel.engine.ParallelRoundEngine`
            that fans shardable route phases out across the context's
            process pool -- and, combined with ``chunk_rows``, fans
            ship/deliver and shard-wise local evaluation out too,
            overlapping a round's view materialisation with the next
            round's routing where data dependencies allow.  Answers,
            loads and capacity behaviour are bit-identical to the
            in-process engine; non-shardable steps and small sources
            fall back transparently.
        chunk_rows: streaming block size (see :class:`RoundEngine`);
            None reads the ``REPRO_CHUNK_ROWS`` environment knob, and
            an unset knob means monolithic execution.  Streaming
            bypasses ``routed_cache`` (lazy deliveries never
            materialise the routing decision a cache entry would
            hold); answers, loads and capacity failures stay
            bit-identical for every chunk size.
        deadline: optional per-request latency budget.  Checked
            cooperatively -- before each round, between streamed
            blocks, between local-evaluation shards, and before the
            finalize -- never mid-primitive, so an abandoned execution
            leaves a pooled simulator reusable after ``reset()``
            exactly like a capacity failure does.

    Returns:
        A :class:`PlanExecution` with answers, loads and views.

    Raises:
        CapacityExceeded: when the plan enforces capacity and a worker
            overflows -- identically for fresh and cache-replayed
            routing.  Takes precedence over the deadline when a round
            both overflows and overruns (the round-close check fires
            first).
        DeadlineExceeded: when ``deadline`` expires at a cooperative
            checkpoint.
        ValueError: for fixpoint plans (those are executed by their
            algorithm's driver).
    """
    if plan.fixpoint is not None:
        raise ValueError(
            "fixpoint plans are executed by their algorithm driver, "
            "not execute_plan"
        )
    backend = plan.signature.backend
    sources = _plan_sources(database, backend)
    if relation_map:
        sources = {
            plan_name: sources[database_name]
            for plan_name, database_name in relation_map.items()
        }
    if input_bits is None:
        input_bits = _database_bits(database, sources)
    simulator = plan_simulator(plan, input_bits, simulator)
    from repro.engine.streaming import resolve_chunk_rows

    chunk_rows = resolve_chunk_rows(chunk_rows)
    streaming = chunk_rows is not None and backend == NUMPY
    if streaming:
        # Lazy deliveries never materialise the routing decision a
        # cache entry would replay; the caller's cache is bypassed
        # (reads and writes) for the whole execution.
        routed_cache = None
    parallel_ctx = (
        parallel if parallel is not None and parallel.usable else None
    )
    if parallel_ctx is not None:
        from repro.engine.parallel.engine import ParallelRoundEngine

        engine: RoundEngine = ParallelRoundEngine(
            simulator, parallel_ctx, profiler=profiler,
            chunk_rows=chunk_rows if streaming else None,
            deadline=deadline,
        )
    else:
        engine = RoundEngine(
            simulator, profiler=profiler,
            chunk_rows=chunk_rows if streaming else None,
            deadline=deadline,
        )

    domain_size = getattr(database, "domain_size", None)
    if domain_size is None:
        domain_size = max(
            (relation.domain_size for relation in sources.values()),
            default=1,
        )
    environment: _ResolvingEnvironment = _ResolvingEnvironment(sources)
    if plan.uniform_domain_bits:
        for name, relation in list(environment.items()):
            environment[name] = replace(relation, domain_size=domain_size)

    view_sizes: dict[str, int] = {}
    per_server_views: dict[str, tuple[int, ...]] = {}
    heavy_hitters: dict[str, frozenset[int]] | None = None
    from repro.engine.local import (
        collect_answers,
        materialise_view,
        materialise_view_async,
    )

    #: view name -> async materialisation handle (streamed overlap).
    pending: dict[str, Any] = {}

    def resolve_view(name: str) -> None:
        handle = pending.pop(name, None)
        if handle is None:
            return
        materialised, counts = handle.result()
        environment[name] = materialised
        view_sizes[name] = len(materialised)
        per_server_views[name] = tuple(counts)

    environment.resolver = resolve_view

    from repro.serve.faults import inject_round_delay, round_delay_seconds

    fault_round_delay = round_delay_seconds()
    for round_index, plan_round in enumerate(plan.rounds):
        inject_round_delay(fault_round_delay)
        if deadline is not None:
            deadline.check("between rounds")
        steps = plan_round.steps
        routed: dict[int, RoutedStep] = {}
        if routed_cache is not None:
            for step_index in range(len(steps)):
                hit = routed_cache.get((round_index, step_index))
                if hit is not None:
                    routed[step_index] = hit
        missing = [i for i in range(len(steps)) if i not in routed]
        if pending and plan_round.bind_heavy is not None and missing:
            # Heavy detection scans the environment directly; settle
            # every outstanding view before statistics are taken.
            for name in list(pending):
                resolve_view(name)
        if pending:
            # Streamed rounds route steps whose sources are already
            # settled first, so pending views keep evaluating on the
            # pool while base relations stream -- the round r local /
            # round r+1 route overlap.  Step order within a round
            # never affects answers, loads or capacity (staging is
            # additive per relation), and the routing cache is off in
            # streaming mode so indices need not be stable.
            order = sorted(
                range(len(steps)),
                key=lambda i: steps[i].relation in pending,
            )
            if order != list(range(len(steps))):
                steps = tuple(steps[i] for i in order)
        if plan_round.bind_heavy is not None and missing:
            # Heavy-hitter detection is execute-time statistics work;
            # it is skipped when every step of the round replays from
            # the routing cache (same data => same heavy sets, already
            # baked into the cached decisions) -- such replayed
            # executions report heavy_hitters as None.
            from repro.algorithms.skewaware import detect_heavy_hitters

            bind = plan_round.bind_heavy
            heavy_hitters = detect_heavy_hitters(
                bind.query,
                environment,
                dict(bind.shares),
                backend=backend,
                columnar=environment,
            )
            steps = tuple(
                replace(step, heavy=heavy_hitters)
                if isinstance(step, HeavyGridRoute)
                else step
                for step in steps
            )
        # run_round routes the missing steps inside the open round
        # (correct profiler attribution) and fills them into `routed`.
        engine.run_round(steps, environment, routed=routed)
        if routed_cache is not None:
            for step_index in missing:
                decision = routed.get(step_index)
                if decision is not None:
                    routed_cache[(round_index, step_index)] = decision

        for view in plan_round.views:
            key_of = key_map_of(view.key_map)
            if streaming:
                handle = materialise_view_async(
                    view.name,
                    view.query,
                    simulator,
                    range(plan.signature.p),
                    backend,
                    domain_size=domain_size,
                    key_of=key_of,
                    parallel=parallel_ctx,
                    profiler=profiler,
                )
                if handle is not None:
                    pending[view.name] = handle
                    continue
            materialised, counts = materialise_view(
                view.name,
                view.query,
                simulator,
                range(plan.signature.p),
                backend,
                domain_size=domain_size,
                key_of=key_of,
                profiler=profiler,
                parallel=parallel_ctx,
                deadline=deadline,
            )
            environment[view.name] = materialised
            view_sizes[view.name] = len(materialised)
            per_server_views[view.name] = tuple(counts)

    for name in list(pending):
        resolve_view(name)
    if deadline is not None:
        deadline.check("before finalize")
    answers: tuple[tuple[int, ...], ...] = ()
    per_server: tuple[int, ...] = ()
    finalize = plan.finalize
    if isinstance(finalize, CollectAnswers):
        answers, counts = collect_answers(
            finalize.query,
            simulator,
            range(finalize.workers),
            backend,
            key_of=key_map_of(finalize.key_map),
            profiler=profiler,
            parallel=parallel_ctx,
            deadline=deadline,
        )
        per_server = tuple(
            list(counts) + [0] * (plan.signature.p - finalize.workers)
        )
    elif isinstance(finalize, FinalizeView):
        view = environment[finalize.view]
        schema = next(
            spec.query.head
            for plan_round in plan.rounds
            for spec in plan_round.views
            if spec.name == finalize.view
        )
        positions = [schema.index(variable) for variable in finalize.head]
        answers = tuple(
            sorted(
                tuple(row[i] for i in positions) for row in view.rows()
            )
        )
    return PlanExecution(
        plan=plan,
        simulator=simulator,
        answers=answers,
        per_server=per_server,
        view_sizes=view_sizes,
        per_server_views=per_server_views,
        heavy_hitters=heavy_hitters,
    )
