"""The round engine: execute a list of routing steps on the simulator.

This is the single route/ship loop every algorithm in the repository
compiles to.  A :class:`RoundEngine` wraps one :class:`MPCSimulator`
and a resolved compute backend; :meth:`RoundEngine.run_round` opens a
round, executes each :class:`~repro.engine.steps.RoutingStep` against
its source relation, and closes the round (which delivers messages and
enforces the capacity bound).

Under the ``pure`` backend each step is routed row by row through
:meth:`RoutingStep.destinations` and shipped with per-(receiver,
relation) batching; under ``numpy`` the step's whole routing decision
is computed in one :meth:`RoutingStep.route_columns` pass and shipped
with a single :meth:`MPCSimulator.send_columns` call.  Both paths
produce the same multiset of (row, destination) pairs, so answers,
per-round received bits/tuples and capacity failures are bit-identical
across backends by construction.

Vectorized sends carry the step's
:attr:`~repro.engine.steps.RoutingStep.preserves_source_order` promise
so the simulator's delivery pools can mark worker fragments as
pre-sorted -- the precondition of the local join's sort-free path.
An optional :class:`~repro.engine.profile.RoundProfiler` splits each
round's wall-clock into route/ship/deliver phases.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Mapping, Sequence

from repro.backend import NUMPY, resolve_backend
from repro.data.columnar import ColumnarRelation
from repro.engine.profile import RoundProfiler
from repro.engine.steps import RoutingStep
from repro.mpc.message import input_server
from repro.mpc.simulator import MPCSimulator
from repro.mpc.stats import RoundStats


class RoundEngine:
    """Executes routing-step rounds on one simulator.

    Args:
        simulator: the MPC network to route over.
        backend: ``"pure"``, ``"numpy"`` or ``"auto"``; defaults to
            the simulator config's backend.
        profiler: optional phase-timing collector; when given, every
            round records route/ship/deliver seconds against its round
            index.
    """

    def __init__(
        self,
        simulator: MPCSimulator,
        backend: str | None = None,
        profiler: RoundProfiler | None = None,
    ) -> None:
        self.simulator = simulator
        self.backend = (
            simulator.config.backend
            if backend is None
            else resolve_backend(backend)
        )
        self.profiler = profiler

    def _measure(self, phase: str):
        if self.profiler is None:
            return nullcontext()
        return self.profiler.measure(self.simulator.round_index, phase)

    def run_round(
        self,
        steps: Sequence[RoutingStep],
        sources: Mapping[str, ColumnarRelation],
    ) -> RoundStats:
        """Execute one communication round: route, ship, deliver.

        Args:
            steps: the routing steps of the round.
            sources: source relation/view per step ``relation`` name;
                column storage must match the engine's backend.

        Returns:
            The closed round's statistics.

        Raises:
            CapacityExceeded: via :meth:`MPCSimulator.end_round` when
                enforcement is on and a worker's budget is blown.
        """
        self.simulator.begin_round()
        for step in steps:
            self.execute_step(step, sources[step.relation])
        with self._measure("deliver"):
            return self.simulator.end_round()

    def execute_step(
        self, step: RoutingStep, source: ColumnarRelation
    ) -> None:
        """Route and stage one step (inside an open round)."""
        simulator = self.simulator
        p = simulator.num_workers
        sender = (
            step.sender
            if step.sender is not None
            else input_server(step.relation)
        )
        key = step.mailbox_key
        if self.backend == NUMPY:
            with self._measure("route"):
                columns, destinations, row_indices = step.route_columns(
                    source.columns, p
                )
            with self._measure("ship"):
                simulator.send_columns(
                    sender,
                    destinations,
                    key,
                    columns,
                    bits_per_tuple=source.tuple_bits,
                    row_indices=row_indices,
                    source_sorted=step.preserves_source_order,
                )
            return
        with self._measure("route"):
            batches: dict[int, list[tuple[int, ...]]] = {}
            for index, row in enumerate(source.rows()):
                for destination in step.destinations(row, index, p):
                    batches.setdefault(destination, []).append(row)
        with self._measure("ship"):
            for destination, rows in batches.items():
                simulator.send(
                    sender, destination, key, rows, source.tuple_bits
                )
