"""The shared columnar round engine.

Every algorithm in :mod:`repro.algorithms` compiles its communication
rounds to the same small IR -- a list of
:class:`~repro.engine.steps.RoutingStep`s -- executed by one
:class:`~repro.engine.executor.RoundEngine` over the MPC simulator,
either tuple-at-a-time (``pure``) or column-wise (``numpy``):

====================  =================================================
algorithm             routing steps per round
====================  =================================================
HyperCube             one :class:`HashRoute` per atom on the share grid
multi-round plans     per operator, one :class:`HashRoute` per atom on
                      the operator's own grid (views re-hashed by
                      content between rounds)
skew-aware HC         one :class:`HeavyGridRoute` per atom (light
                      values hash, heavy values split over a
                      ``g1 x g2`` cartesian sub-grid)
below-threshold HC    one :class:`RemapRanks`-wrapped
                      :class:`HashRoute` per atom (virtual grid,
                      sampled points)
broadcast join        one :class:`Broadcast` per atom
single-server         one :class:`ToServer` per atom
single-attribute join one :class:`HashRoute` per atom on a 1-D grid
cartesian grid        one :class:`RoundRobinGrid` per operand
hash-to-min (CC)      per fixpoint iteration, one :class:`HashRoute`
                      round over the iteration's (vertex, payload)
                      pairs
====================  =================================================

New execution scenarios (new operators, sharding, asynchronous
shipping) are new step types or new step parameters -- not new copies
of the route/ship/join loop.

Since the compile/execute split, the step program of a whole
execution is packaged as an immutable :class:`~repro.engine.plan.Plan`
(compiled once per (query, eps, p, backend) by the algorithms'
``compile_*`` functions, executed any number of times by
:func:`~repro.engine.executor.execute_plan`) -- the seam the serving
layer's plan/routing/result caches build on.
"""

from repro.engine.deadline import Deadline, DeadlineExceeded
from repro.engine.executor import (
    PlanExecution,
    RoundEngine,
    RoutedStep,
    execute_plan,
    plan_config,
    plan_simulator,
)
from repro.engine.local import (
    collect_answers,
    fleet_answer_table,
    fragment_tuple_count,
    materialise_view,
    merged_answer_table_per_worker,
    slice_pool_for_workers,
    worker_answer_rows,
    worker_answer_table,
)
from repro.engine.plan import (
    CollectAnswers,
    FinalizeView,
    FixpointSpec,
    HeavyBind,
    KeyMap,
    Plan,
    PlanRound,
    PlanSignature,
    ViewSpec,
    key_map_of,
)
from repro.engine.profile import RoundProfiler
from repro.engine.steps import (
    Broadcast,
    GridSpec,
    HashRoute,
    HeavyGridRoute,
    RemapRanks,
    RoundRobinGrid,
    RoutingStep,
    ToServer,
    grid_factors,
)

__all__ = [
    "CollectAnswers",
    "Deadline",
    "DeadlineExceeded",
    "FinalizeView",
    "FixpointSpec",
    "HeavyBind",
    "KeyMap",
    "Plan",
    "PlanExecution",
    "PlanRound",
    "PlanSignature",
    "RoundEngine",
    "RoundProfiler",
    "RoutedStep",
    "ViewSpec",
    "execute_plan",
    "key_map_of",
    "plan_config",
    "plan_simulator",
    "collect_answers",
    "fleet_answer_table",
    "fragment_tuple_count",
    "materialise_view",
    "merged_answer_table_per_worker",
    "slice_pool_for_workers",
    "worker_answer_rows",
    "worker_answer_table",
    "Broadcast",
    "GridSpec",
    "HashRoute",
    "HeavyGridRoute",
    "RemapRanks",
    "RoundRobinGrid",
    "RoutingStep",
    "ToServer",
    "grid_factors",
]
