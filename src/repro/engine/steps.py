"""The routing-step IR of the shared round engine.

One communication round of any algorithm in this repository is a list
of :class:`RoutingStep`s, each describing how the tuples of one source
relation (or materialised view) are scattered over the worker grid:

* :class:`HashRoute` -- the HyperCube discipline of Section 3.1: grid
  dimensions owned by the atom's variables are pinned by hashing,
  the remaining (free) dimensions are replicated in full.  With a
  one-dimensional grid this degenerates to the classical parallel
  hash join; the multi-round executor re-instantiates it per plan
  operator with content-based re-hashing of view tuples.
* :class:`HeavyGridRoute` -- :class:`HashRoute` plus the heavy-hitter
  escape hatch of Koutris-Suciu [17]: a heavy value on a dimension
  shared by exactly two atoms is routed over a ``g1 x g2`` cartesian
  sub-grid keyed by the tuple's residual attributes; heavy values
  without a two-atom role fall back to spreading across the whole
  dimension.  On inputs with no heavy hitters it routes bit-for-bit
  like :class:`HashRoute`.
* :class:`Broadcast` -- every tuple to every worker (the degenerate
  ``eps = 1`` regime).
* :class:`ToServer` -- every tuple to one fixed worker (the
  single-server strawman).
* :class:`RoundRobinGrid` -- the introduction's cartesian-grid
  tradeoff: tuples are dealt round-robin into one axis of a grid and
  replicated across the others (content-free routing by row index).

Every step knows how to route one row at a time
(:meth:`RoutingStep.destinations`, the ``pure`` reference semantics)
and how to route a whole column batch in one vectorized pass
(:meth:`RoutingStep.route_columns`, the ``numpy`` engine).  The two
are bit-identical in the multiset of (row, destination) pairs they
produce, which is what makes backend parity of loads and answers a
theorem rather than a hope.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.backend import require_numpy
from repro.core.query import Atom
from repro.mpc.message import Endpoint
from repro.mpc.routing import (
    HashFamily,
    grid_size,
    grid_weights,
    residual_key,
    residual_key_columns,
)

_NO_HEAVY: frozenset[int] = frozenset()


@dataclass(frozen=True)
class GridSpec:
    """A server grid ``[p_1] x ... x [p_k]`` with named dimensions.

    Attributes:
        variables: the variable owning each dimension, in rank order.
        dimensions: the integer share ``p_i`` of each dimension.
        hashes: the hash family pinning dimensions (None for steps
            that never hash, e.g. :class:`RoundRobinGrid`).
    """

    variables: tuple[str, ...]
    dimensions: tuple[int, ...]
    hashes: HashFamily | None = None

    def __post_init__(self) -> None:
        if len(self.variables) != len(self.dimensions):
            raise ValueError(
                f"{len(self.variables)} variables for "
                f"{len(self.dimensions)} dimensions"
            )
        if any(size < 1 for size in self.dimensions):
            raise ValueError(f"shares must be >= 1, got {self.dimensions}")

    @classmethod
    def from_shares(
        cls,
        variable_order: Sequence[str],
        shares: Mapping[str, int],
        hashes: HashFamily | None = None,
    ) -> "GridSpec":
        """Build a grid from a variable order and a share mapping."""
        order = tuple(variable_order)
        return cls(
            variables=order,
            dimensions=tuple(shares[variable] for variable in order),
            hashes=hashes,
        )

    def share(self, variable: str) -> int:
        """The share of one named dimension."""
        return self.dimensions[self.variables.index(variable)]

    @property
    def weights(self) -> tuple[int, ...]:
        """Mixed-radix rank weight of each dimension."""
        return grid_weights(self.dimensions)

    @property
    def num_servers(self) -> int:
        """Total grid points ``prod_i p_i``."""
        return grid_size(self.dimensions)


@dataclass(frozen=True, kw_only=True)
class RoutingStep:
    """Base: route relation ``relation`` into mailbox key ``destination``.

    Attributes:
        relation: source relation/view name (keys the engine's source
            mapping).
        destination: mailbox key delivered to (defaults to
            ``relation``; the multi-round executor namespaces it per
            plan operator so concurrent operators sharing a relation
            do not mix fragments).
        sender: explicit sending endpoint; None means the input server
            of ``relation`` (only legal in round 1).
    """

    relation: str
    destination: str | None = None
    sender: Endpoint | None = None

    @property
    def mailbox_key(self) -> str:
        """The key receivers file this step's tuples under."""
        return self.destination if self.destination is not None else self.relation

    @property
    def preserves_source_order(self) -> bool:
        """Whether rows staged for any one receiver keep source order.

        True when :meth:`route_columns` emits its (row, destination)
        pairs so that, restricted to one destination worker, row
        indices are non-decreasing -- the case for every step whose
        replication pattern is a ``repeat``/``tile`` over ascending
        row indices.  Since source relations are lexicographically
        sorted, a True flag means delivered worker fragments are
        pre-sorted, which lets the segmented local join skip its sort
        (:class:`~repro.mpc.simulator.ColumnPool.source_sorted`).

        Defaults to False -- the safe direction: a new step type that
        forgets to override merely loses the sort-free fast path,
        whereas a wrong True silently corrupts the segmented join.
        Steps whose emission is a repeat/tile over ascending indices
        (every shipped step except signature-grouped heavy-hitter
        routing) override this with True.
        """
        return False

    @property
    def shardable(self) -> bool:
        """Whether row-sharded routing reproduces this step exactly.

        The parallel engine splits a source into contiguous row shards,
        runs :meth:`route_columns` per shard in worker processes and
        concatenates the shard decisions (offsetting ``row_indices`` by
        each shard's filtered start).  That is faithful only when the
        step's routing decision for a row depends on nothing but the
        row's own content -- i.e. ``route_columns(cols[a:b])`` equals
        the ``[a:b)`` restriction of ``route_columns(cols)`` up to
        per-receiver order.  Content-free steps that look at the global
        row index (:class:`RoundRobinGrid`) and steps that group rows
        across the whole relation (:class:`HeavyGridRoute`'s signature
        grouping) must stay False and fall back to in-process routing.

        Defaults to False for the same reason
        :attr:`preserves_source_order` does: a forgotten override only
        loses parallelism, never correctness.
        """
        return False

    def destinations(self, row: Sequence[int], index: int, p: int) -> list[int]:
        """Worker ranks receiving ``row`` (the scalar reference path).

        Args:
            row: the tuple being routed.
            index: the row's 0-based position in its relation (only
                content-free steps look at it).
            p: total number of workers.
        """
        raise NotImplementedError

    def route_columns(self, columns: tuple, p: int) -> tuple:
        """Batched routing of a whole column set (the numpy path).

        Returns:
            ``(columns, destinations, row_indices)`` exactly as
            :meth:`MPCSimulator.send_columns` expects: possibly
            filtered source columns, a flat int64 destination array,
            and gather indices pairing each destination with its row.
        """
        raise NotImplementedError


def _repeated_variable_ok(atom: Atom, row: Sequence[int]) -> bool:
    """Rows violating intra-atom repeated-variable equality route nowhere."""
    first_position = atom.first_positions
    for position, variable in enumerate(atom.variables):
        if row[position] != row[first_position[variable]]:
            return False
    return True


def _filter_repeated_columns(atom: Atom, columns: tuple, numpy: Any) -> tuple:
    """Drop rows violating repeated-variable equality (vectorized)."""
    first_position = atom.first_positions
    mask = None
    for position, variable in enumerate(atom.variables):
        first = first_position[variable]
        if first != position:
            equal = columns[position] == columns[first]
            mask = equal if mask is None else (mask & equal)
    if mask is not None:
        columns = tuple(column[mask] for column in columns)
    return columns


def _cross_offsets(offset_sets: Sequence[Any], numpy: Any) -> Any:
    """Cross-sum per-dimension rank-offset arrays into one flat array."""
    offsets = numpy.zeros(1, dtype=numpy.int64)
    for steps in offset_sets:
        if len(steps) == 1 and int(steps[0]) == 0:
            continue
        offsets = (offsets[:, None] + steps[None, :]).reshape(-1)
    return offsets


@dataclass(frozen=True, kw_only=True)
class HashRoute(RoutingStep):
    """HyperCube routing: hash pinned dimensions, replicate free ones.

    The atom's variables that own grid dimensions are pinned to hashed
    coordinates (repeated variables hash once, at their first
    position); grid dimensions not mentioned by the atom range over
    their full share.  Atom variables outside the grid are ignored --
    that is how a one-dimensional grid over a single shared variable
    expresses the classical parallel hash join.

    ``filter_contradictions`` controls the repeated-variable
    short-circuit: HyperCube proper drops rows violating intra-atom
    equality before hashing (they can never join), while baselines
    that model "route every tuple" semantics (the classical hash
    join) set it False to preserve their exact shipping statistics.
    """

    grid: GridSpec
    atom: Atom
    filter_contradictions: bool = True

    @property
    def preserves_source_order(self) -> bool:
        """Replication is a repeat of ascending row indices."""
        return True

    @property
    def shardable(self) -> bool:
        """Hashing is pure row content; shards route independently."""
        return True

    def _pinned(self) -> dict[str, int]:
        """variable -> first column position, grid dimensions only."""
        return {
            variable: position
            for variable, position in self.atom.first_positions.items()
            if variable in self.grid.variables
        }

    def destinations(self, row: Sequence[int], index: int, p: int) -> list[int]:
        if self.filter_contradictions and not _repeated_variable_ok(
            self.atom, row
        ):
            return []
        grid = self.grid
        hashes = grid.hashes
        assert hashes is not None
        pinned = self._pinned()
        axes = []
        for variable, share in zip(grid.variables, grid.dimensions):
            if variable in pinned:
                axes.append(
                    (hashes.hash_value(variable, row[pinned[variable]], share),)
                )
            else:
                axes.append(tuple(range(share)))
        return _expand_axes(axes, grid.dimensions)

    def route_columns(self, columns: tuple, p: int) -> tuple:
        numpy = require_numpy()
        grid = self.grid
        hashes = grid.hashes
        assert hashes is not None
        if self.filter_contradictions:
            columns = _filter_repeated_columns(self.atom, columns, numpy)
        num_rows = len(columns[0]) if columns else 0
        pinned = self._pinned()
        weights = grid.weights

        coordinate_columns = [
            hashes.hash_column(variable, columns[pinned[variable]], share)
            if variable in pinned
            else numpy.zeros(num_rows, dtype=numpy.int64)
            for variable, share in zip(grid.variables, grid.dimensions)
        ]
        base = numpy.zeros(num_rows, dtype=numpy.int64)
        for column, weight in zip(coordinate_columns, weights):
            base += column * weight

        offsets = _cross_offsets(
            [
                numpy.arange(share, dtype=numpy.int64) * weight
                if variable not in pinned
                else numpy.zeros(1, dtype=numpy.int64)
                for variable, share, weight in zip(
                    grid.variables, grid.dimensions, weights
                )
            ],
            numpy,
        )
        replication = len(offsets)
        destinations = (base[:, None] + offsets[None, :]).reshape(-1)
        row_indices = numpy.repeat(
            numpy.arange(num_rows, dtype=numpy.int64), replication
        )
        return columns, destinations, row_indices


def _expand_axes(
    axes: Sequence[tuple[int, ...]], dimensions: Sequence[int]
) -> list[int]:
    """All grid ranks in the cross product of per-dimension axis sets."""
    ranks = [0]
    weights = grid_weights(dimensions)
    for axis, weight in zip(axes, weights):
        ranks = [rank + coordinate * weight for rank in ranks for coordinate in axis]
    return ranks


def grid_factors(share: int) -> tuple[int, int]:
    """Factor a share into ``g1 x g2`` with ``g1 = isqrt(share)``."""
    g1 = max(1, math.isqrt(share))
    g2 = max(1, share // g1)
    return g1, g2


@dataclass(frozen=True, kw_only=True)
class HeavyGridRoute(RoutingStep):
    """HashRoute plus heavy-hitter cartesian splitting (after [17]).

    Attributes:
        grid: the full query grid.
        atom: the routed atom.
        heavy: per variable, the values declared heavy by round-1
            statistics.
        roles: per variable, atom -> grid role (0 = rows of the
            ``g1 x g2`` sub-grid, 1 = columns); None means no two-atom
            cartesian structure exists and heavy values spread across
            the whole dimension.
    """

    grid: GridSpec
    atom: Atom
    heavy: Mapping[str, frozenset[int]] = field(default_factory=dict)
    roles: Mapping[str, Mapping[str, int] | None] = field(default_factory=dict)

    # preserves_source_order stays False (the base default):
    # signature-grouped routing interleaves heavy/light rows.

    def _residual_positions(self, variable: str) -> tuple[int, ...]:
        """First positions of the atom's other distinct variables."""
        return tuple(
            position
            for other, position in self.atom.first_positions.items()
            if other != variable
        )

    def _heavy_axis(
        self, variable: str, share: int, row: Sequence[int]
    ) -> tuple[int, ...]:
        """The coordinate set of one heavy value on its dimension."""
        hashes = self.grid.hashes
        assert hashes is not None
        variable_roles = self.roles.get(variable)
        if variable_roles is None or self.atom.name not in variable_roles:
            return tuple(range(share))
        g1, g2 = grid_factors(share)
        role = variable_roles[self.atom.name]
        key = residual_key(
            [row[position] for position in self._residual_positions(variable)]
        )
        coordinate = hashes.hash_value(
            f"{variable}/residual", key, g1 if role == 0 else g2
        )
        if role == 0:
            return tuple(coordinate * g2 + column for column in range(g2))
        return tuple(row_index * g2 + coordinate for row_index in range(g1))

    def destinations(self, row: Sequence[int], index: int, p: int) -> list[int]:
        if not _repeated_variable_ok(self.atom, row):
            return []
        grid = self.grid
        hashes = grid.hashes
        assert hashes is not None
        first_position = self.atom.first_positions
        axes = []
        for variable, share in zip(grid.variables, grid.dimensions):
            position = first_position.get(variable)
            if position is None:
                axes.append(tuple(range(share)))
                continue
            value = row[position]
            if value in self.heavy.get(variable, _NO_HEAVY):
                axes.append(self._heavy_axis(variable, share, row))
            else:
                axes.append((hashes.hash_value(variable, value, share),))
        return _expand_axes(axes, grid.dimensions)

    def route_columns(self, columns: tuple, p: int) -> tuple:
        numpy = require_numpy()
        grid = self.grid
        hashes = grid.hashes
        assert hashes is not None
        columns = _filter_repeated_columns(self.atom, columns, numpy)
        num_rows = len(columns[0]) if columns else 0
        first_position = self.atom.first_positions
        weights = grid.weights

        # Per grid dimension: a per-row base coordinate plus, per row
        # *category* (light vs heavy), a constant rank-offset set.  A
        # row's destination list is then base-rank + cross-sum of its
        # categories' offset sets, which lets rows be routed in
        # signature groups with one repeat/tile expansion per group.
        base = numpy.zeros(num_rows, dtype=numpy.int64)
        signature = numpy.zeros(num_rows, dtype=numpy.int64)
        light_offsets: list[Any] = []
        heavy_offsets: list[Any] = []
        heavy_bit: list[int] = []  # bit index per dimension, -1 = never heavy
        zero = numpy.zeros(1, dtype=numpy.int64)
        bits_used = 0
        for variable, share, weight in zip(
            grid.variables, grid.dimensions, weights
        ):
            position = first_position.get(variable)
            if position is None:
                # Free dimension: replicate (same for every row).
                light_offsets.append(
                    numpy.arange(share, dtype=numpy.int64) * weight
                )
                heavy_offsets.append(None)
                heavy_bit.append(-1)
                continue
            values = columns[position]
            heavy_values = self.heavy.get(variable, _NO_HEAVY)
            if heavy_values:
                heavy_mask = numpy.isin(
                    values,
                    numpy.asarray(sorted(heavy_values), dtype=numpy.int64),
                )
            else:
                heavy_mask = numpy.zeros(num_rows, dtype=bool)
            light_mask = ~heavy_mask
            coordinates = numpy.zeros(num_rows, dtype=numpy.int64)
            if light_mask.any():
                coordinates[light_mask] = hashes.hash_column(
                    variable, values[light_mask], share
                )
            light_offsets.append(zero)
            if not heavy_mask.any():
                heavy_offsets.append(None)
                heavy_bit.append(-1)
                base += coordinates * weight
                continue
            variable_roles = self.roles.get(variable)
            if variable_roles is None or self.atom.name not in variable_roles:
                heavy_offsets.append(
                    numpy.arange(share, dtype=numpy.int64) * weight
                )
            else:
                g1, g2 = grid_factors(share)
                role = variable_roles[self.atom.name]
                residual_columns = [
                    columns[p_][heavy_mask]
                    for p_ in self._residual_positions(variable)
                ]
                keys = residual_key_columns(
                    residual_columns, int(heavy_mask.sum())
                )
                coordinate = hashes.hash_column(
                    f"{variable}/residual", keys, g1 if role == 0 else g2
                )
                if role == 0:
                    coordinates[heavy_mask] = coordinate * g2
                    heavy_offsets.append(
                        numpy.arange(g2, dtype=numpy.int64) * weight
                    )
                else:
                    coordinates[heavy_mask] = coordinate
                    heavy_offsets.append(
                        numpy.arange(g1, dtype=numpy.int64) * g2 * weight
                    )
            signature |= heavy_mask.astype(numpy.int64) << bits_used
            heavy_bit.append(bits_used)
            bits_used += 1
            base += coordinates * weight

        destination_parts: list[Any] = []
        index_parts: list[Any] = []
        row_numbers = numpy.arange(num_rows, dtype=numpy.int64)
        for group_signature in numpy.unique(signature).tolist() if num_rows else []:
            group = row_numbers[signature == group_signature]
            offsets = _cross_offsets(
                [
                    heavy if bit >= 0 and (group_signature >> bit) & 1 else light
                    for light, heavy, bit in zip(
                        light_offsets, heavy_offsets, heavy_bit
                    )
                ],
                numpy,
            )
            replication = len(offsets)
            destination_parts.append(
                (base[group][:, None] + offsets[None, :]).reshape(-1)
            )
            index_parts.append(numpy.repeat(group, replication))
        if destination_parts:
            destinations = numpy.concatenate(destination_parts)
            row_indices = numpy.concatenate(index_parts)
        else:
            destinations = numpy.zeros(0, dtype=numpy.int64)
            row_indices = numpy.zeros(0, dtype=numpy.int64)
        return columns, destinations, row_indices


@dataclass(frozen=True, kw_only=True)
class RemapRanks(RoutingStep):
    """Route with an inner step, then remap (or drop) its ranks.

    The inner step addresses a *virtual* grid; ``mapping`` sends each
    virtual rank to a real worker, and virtual ranks missing from the
    mapping are dropped.  This is how the below-threshold algorithm of
    Proposition 3.11 subsamples ``p`` of ``P > p`` grid points, and
    the natural seam for sharded deployments (virtual ranks as
    shards).

    Attributes:
        inner: the step producing virtual ranks (its ``relation`` must
            match this step's).
        mapping: virtual rank -> real worker; missing ranks drop.
        virtual_size: number of virtual grid points (bounds the ranks
            the inner step may produce).
    """

    inner: RoutingStep
    mapping: Mapping[int, int]
    virtual_size: int

    @property
    def preserves_source_order(self) -> bool:
        """Order survives when no two virtual ranks share a worker.

        Rank filtering keeps the inner step's emission order, and with
        an injective mapping each real worker drains exactly one
        virtual rank's (already ordered) stream.  A non-injective
        mapping could interleave two streams, so report False there.
        """
        if not self.inner.preserves_source_order:
            return False
        targets = list(self.mapping.values())
        return len(targets) == len(set(targets))

    @property
    def shardable(self) -> bool:
        """Rank remapping is per-row; shardability is the inner step's."""
        return self.inner.shardable

    def destinations(self, row: Sequence[int], index: int, p: int) -> list[int]:
        mapping = self.mapping
        return [
            mapping[virtual]
            for virtual in self.inner.destinations(row, index, self.virtual_size)
            if virtual in mapping
        ]

    def route_columns(self, columns: tuple, p: int) -> tuple:
        numpy = require_numpy()
        columns, virtual, row_indices = self.inner.route_columns(
            columns, self.virtual_size
        )
        lookup = numpy.full(self.virtual_size, -1, dtype=numpy.int64)
        for rank, worker in self.mapping.items():
            lookup[rank] = worker
        destinations = lookup[virtual]
        keep = destinations >= 0
        if row_indices is None:
            row_indices = numpy.arange(
                len(columns[0]) if columns else 0, dtype=numpy.int64
            )
        return columns, destinations[keep], row_indices[keep]


@dataclass(frozen=True, kw_only=True)
class Broadcast(RoutingStep):
    """Every row to every worker (replication rate exactly ``p``)."""

    @property
    def preserves_source_order(self) -> bool:
        """Each worker's block is one ascending ``arange`` tile."""
        return True

    @property
    def shardable(self) -> bool:
        """Replication to all workers is content- and index-free."""
        return True

    def destinations(self, row: Sequence[int], index: int, p: int) -> list[int]:
        return list(range(p))

    def route_columns(self, columns: tuple, p: int) -> tuple:
        numpy = require_numpy()
        num_rows = len(columns[0]) if columns else 0
        destinations = numpy.repeat(
            numpy.arange(p, dtype=numpy.int64), num_rows
        )
        row_indices = numpy.tile(
            numpy.arange(num_rows, dtype=numpy.int64), p
        )
        return columns, destinations, row_indices


@dataclass(frozen=True, kw_only=True)
class ToServer(RoutingStep):
    """Every row to one fixed worker."""

    worker: int = 0

    @property
    def preserves_source_order(self) -> bool:
        """Rows ship in source order to a single worker."""
        return True

    @property
    def shardable(self) -> bool:
        """A constant destination shards trivially."""
        return True

    def destinations(self, row: Sequence[int], index: int, p: int) -> list[int]:
        return [self.worker]

    def route_columns(self, columns: tuple, p: int) -> tuple:
        numpy = require_numpy()
        num_rows = len(columns[0]) if columns else 0
        destinations = numpy.full(num_rows, self.worker, dtype=numpy.int64)
        return columns, destinations, None


@dataclass(frozen=True, kw_only=True)
class RoundRobinGrid(RoutingStep):
    """Deal rows round-robin into one grid axis, replicate the rest.

    Row ``i`` pins its coordinate on dimension ``axis`` to
    ``i % p_axis`` and is replicated over every other dimension -- the
    cartesian-product grid of the introduction's drug-interaction
    example (``axis = 0`` for the left operand, ``1`` for the right).
    """

    grid: GridSpec
    axis: int

    @property
    def preserves_source_order(self) -> bool:
        """Replication is a repeat of ascending row indices."""
        return True

    def destinations(self, row: Sequence[int], index: int, p: int) -> list[int]:
        dimensions = self.grid.dimensions
        axes = [
            (index % size,) if dimension == self.axis else tuple(range(size))
            for dimension, size in enumerate(dimensions)
        ]
        return _expand_axes(axes, dimensions)

    def route_columns(self, columns: tuple, p: int) -> tuple:
        numpy = require_numpy()
        num_rows = len(columns[0]) if columns else 0
        dimensions = self.grid.dimensions
        weights = self.grid.weights
        base = (
            numpy.arange(num_rows, dtype=numpy.int64) % dimensions[self.axis]
        ) * weights[self.axis]
        offsets = _cross_offsets(
            [
                numpy.zeros(1, dtype=numpy.int64)
                if dimension == self.axis
                else numpy.arange(size, dtype=numpy.int64) * weight
                for dimension, (size, weight) in enumerate(
                    zip(dimensions, weights)
                )
            ],
            numpy,
        )
        replication = len(offsets)
        destinations = (base[:, None] + offsets[None, :]).reshape(-1)
        row_indices = numpy.repeat(
            numpy.arange(num_rows, dtype=numpy.int64), replication
        )
        return columns, destinations, row_indices
