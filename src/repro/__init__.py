"""repro: Communication Steps for Parallel Query Processing, rebuilt.

A complete Python implementation of Beame, Koutris and Suciu,
*Communication Steps for Parallel Query Processing* (PODS 2013):

* the MPC(eps) computation model as an exact simulator
  (:mod:`repro.mpc`),
* conjunctive-query theory -- hypergraphs, the characteristic
  ``chi(q)``, fractional vertex covers / edge packings and ``tau*``
  via an exact rational LP solver (:mod:`repro.core`, :mod:`repro.lp`),
* the HyperCube algorithm, its below-budget partial variant, multi-
  round query plans, connected components and baselines
  (:mod:`repro.algorithms`),
* matching databases and the paper's experiment inputs
  (:mod:`repro.data`), and
* table/figure regeneration harnesses (:mod:`repro.analysis`).

Quickstart -- the planner-backed Session front door::

    from repro import connect, core, data

    q = core.parse_query("C3(x,y,z) = S1(x,y), S2(y,z), S3(z,x)")
    print(core.covering_number(q))        # 3/2
    print(core.space_exponent(q))         # 1/3

    session = connect(data.matching_database(q, n=100, rng=0), p=16)
    statement = session.query(q)
    print(statement.explain().format())   # chosen algorithm + why
    result = statement.execute()          # planner picks the route
    print(len(result.answers), result.report.summary())

The per-algorithm ``run_*`` entry points in :mod:`repro.algorithms`
remain for parity testing and scripting but are deprecated for
application code -- ``connect`` is the front door.
"""

from repro import algorithms, analysis, api, core, data, lp, mpc
from repro.api import Result, Session, Statement, connect

__version__ = "1.1.0"

__all__ = [
    "algorithms",
    "analysis",
    "api",
    "core",
    "data",
    "lp",
    "mpc",
    "Result",
    "Session",
    "Statement",
    "connect",
    "__version__",
]
