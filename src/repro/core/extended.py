"""The extended query and tight packings (Lemma 3.9, Section 3.2.2).

The one-round lower bound applies Friedgut's inequality not to ``q``
itself but to the *extended query*

    q'(x_1..x_k) = S_1(..), ..., S_l(..), T_1(x_1), ..., T_k(x_k)

which adds one fresh unary atom per variable.  Given an optimal
fractional edge packing ``u`` of ``q``, setting

    u'_i = 1 - sum_{j : x_i in vars(S_j)} u_j        (>= 0 by packing)

makes ``(u, u')`` simultaneously a *tight* fractional edge packing and
a *tight* fractional edge cover of ``q'`` (Lemma 3.9(a)), with

    sum_j a_j u_j + sum_i u'_i = k                    (Lemma 3.9(b)).

Tightness is exactly what lets the lower-bound proof convert the
packing (which strong duality ties to tau*) into a cover (which
Friedgut's inequality needs).  This module builds the construction and
exposes the two lemma clauses as checkable predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping

from repro.core.covers import fractional_edge_packing
from repro.core.query import Atom, ConjunctiveQuery, QueryError


@dataclass(frozen=True)
class ExtendedQuery:
    """The extended query ``q'`` with its canonical weight vector.

    Attributes:
        query: ``q'`` itself (original atoms plus unary ``T_i``).
        base_weights: the packing ``u`` on the original atoms.
        unary_weights: the complementary weights ``u'`` on the ``T_i``.
    """

    query: ConjunctiveQuery
    base_weights: dict[str, Fraction]
    unary_weights: dict[str, Fraction]

    def combined_weights(self) -> dict[str, Fraction]:
        """The full ``(u, u')`` vector keyed by atom name."""
        weights = dict(self.base_weights)
        weights.update(self.unary_weights)
        return weights


def unary_atom_name(variable: str) -> str:
    """The name of the fresh unary atom attached to ``variable``."""
    return f"T[{variable}]"


def extend_query(
    query: ConjunctiveQuery,
    packing: Mapping[str, Fraction] | None = None,
) -> ExtendedQuery:
    """Build ``q'`` and the Lemma 3.9 weight vector ``(u, u')``.

    Args:
        query: the original query ``q``.
        packing: a fractional edge packing of ``q``; optimal by
            default.  A non-packing (some variable oversubscribed)
            is rejected because ``u'`` would go negative.
    """
    if packing is None:
        packing = fractional_edge_packing(query)
    packing = {name: Fraction(value) for name, value in packing.items()}

    unary: dict[str, Fraction] = {}
    for variable in query.variables:
        incident = sum(
            (
                packing.get(atom.name, Fraction(0))
                for atom in query.atoms_of(variable)
            ),
            start=Fraction(0),
        )
        slack = 1 - incident
        if slack < 0:
            raise QueryError(
                f"not an edge packing: variable {variable} carries "
                f"{incident} > 1"
            )
        unary[unary_atom_name(variable)] = slack

    atoms = list(query.atoms) + [
        Atom(unary_atom_name(variable), (variable,))
        for variable in query.variables
    ]
    extended = ConjunctiveQuery(
        atoms, head=query.head, name=f"{query.name}'"
    )
    return ExtendedQuery(
        query=extended,
        base_weights={atom.name: packing.get(atom.name, Fraction(0))
                      for atom in query.atoms},
        unary_weights=unary,
    )


def is_tight_packing(
    query: ConjunctiveQuery, weights: Mapping[str, Fraction]
) -> bool:
    """Every variable's incident weights sum to exactly 1.

    A tight vector is simultaneously a feasible packing (<= 1) and a
    feasible cover (>= 1), which is the pivot of Lemma 3.9(a).
    """
    return all(
        sum(
            (
                Fraction(weights.get(atom.name, 0))
                for atom in query.atoms_of(variable)
            ),
            start=Fraction(0),
        )
        == 1
        for variable in query.variables
    )


def lemma_39_holds(extended: ExtendedQuery) -> bool:
    """Check both clauses of Lemma 3.9 for a constructed ``q'``.

    (a) ``(u, u')`` is a tight packing (hence also a tight cover);
    (b) ``sum_j a_j u_j + sum_i u'_i = k``.
    """
    weights = extended.combined_weights()
    if not is_tight_packing(extended.query, weights):
        return False
    total = Fraction(0)
    for atom in extended.query.atoms:
        total += atom.arity * weights[atom.name]
    k = len(extended.query.head)
    return total == k


def knowledge_weight_bound(n: int, arity: int) -> Fraction:
    """Lemma 3.8(a): ``w_j(a_j) <= n^{1 - a_j}`` for matchings.

    The probability that a fixed tuple of arity ``a_j`` belongs to a
    uniform ``a_j``-dimensional matching over ``[n]``.
    """
    if n < 1 or arity < 1:
        raise ValueError("need n >= 1 and arity >= 1")
    return Fraction(1, n ** (arity - 1))
