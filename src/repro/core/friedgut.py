"""Friedgut's inequality and output-size bounds (Section 2.6).

Friedgut's inequality, specialised to a query ``q`` with a fractional
*edge cover* ``u`` (every variable's incident weights sum to >= 1)::

    sum_{a in [n]^k}  prod_j w_j(a_j)
        <=  prod_j ( sum_{a_j} w_j(a_j)^{1/u_j} )^{u_j}

with the convention ``lim_{u->0} (sum w^{1/u})^u = max w`` for atoms of
weight zero.  Setting ``w_j`` to the 0/1 indicator of relation ``S_j``
yields the familiar output-size bound

    |q(I)|  <=  prod_j |S_j|^{u_j}

(the AGM bound of Atserias-Grohe-Marx, which the paper recovers as an
immediate corollary).  The paper's one-round lower bound (Lemma 3.7)
applies the inequality with a *tight* fractional edge packing on the
extended query of Lemma 3.9 -- both constructions live here and in
:mod:`repro.core.extended`.

This module provides

* :func:`is_fractional_edge_cover` -- feasibility of a weight vector,
* :func:`optimal_edge_cover` -- a minimum fractional edge cover via
  the exact LP (the *cover*, not the packing, of Figure 1's dual pair),
* :func:`friedgut_bound` -- the right-hand side of the inequality for
  arbitrary non-negative weights,
* :func:`friedgut_holds` -- numeric verification of the inequality
  (used by the hypothesis test suite),
* :func:`output_size_bound` -- the AGM-style corollary
  ``prod_j |S_j|^{u_j}``.
"""

from __future__ import annotations

import math
from fractions import Fraction
from itertools import product
from typing import Mapping

from repro.core.query import ConjunctiveQuery, QueryError
from repro.lp import LinearProgram


def is_fractional_edge_cover(
    query: ConjunctiveQuery, weights: Mapping[str, Fraction]
) -> bool:
    """Feasibility: every variable's incident atom weights sum >= 1."""
    if any(Fraction(value) < 0 for value in weights.values()):
        return False
    return all(
        sum(
            (
                Fraction(weights.get(atom.name, 0))
                for atom in query.atoms_of(variable)
            ),
            start=Fraction(0),
        )
        >= 1
        for variable in query.variables
    )


def edge_cover_program(query: ConjunctiveQuery) -> LinearProgram:
    """The fractional edge cover LP: min sum u_j, cover every variable.

    Not to be confused with the edge *packing* LP of Figure 1 (its
    inequalities point the other way); the two optima coincide exactly
    when the optimal solutions are tight (Section 2.3's remark).
    """
    lp = LinearProgram(maximize=False)
    for atom in query.atoms:
        lp.add_variable(atom.name)
    for variable in query.variables:
        atoms = query.atoms_of(variable)
        if not atoms:  # pragma: no cover - full queries have no such vars
            raise QueryError(f"variable {variable} occurs in no atom")
        lp.add_constraint(
            {atom.name: 1 for atom in atoms}, ">=", 1,
            name=f"cover[{variable}]",
        )
    lp.set_objective({atom.name: 1 for atom in query.atoms})
    return lp


def optimal_edge_cover(query: ConjunctiveQuery) -> dict[str, Fraction]:
    """A minimum fractional edge cover (exact)."""
    solution = edge_cover_program(query).solve()
    if not solution.is_optimal:  # pragma: no cover - always feasible
        raise QueryError(f"edge cover LP not optimal: {solution.status}")
    return dict(solution.values)


def edge_cover_number(query: ConjunctiveQuery) -> Fraction:
    """The fractional edge cover number ``rho*(q)``."""
    solution = edge_cover_program(query).solve()
    assert solution.objective is not None
    return solution.objective


def _norm_term(values: list[float], exponent: Fraction) -> float:
    """``( sum_a w(a)^{1/u} )^u`` with the ``u -> 0`` max convention."""
    if exponent == 0:
        return max(values) if values else 0.0
    u = float(exponent)
    total = sum(value ** (1.0 / u) for value in values if value > 0)
    return total ** u


def friedgut_bound(
    query: ConjunctiveQuery,
    weights: Mapping[str, Mapping[tuple[int, ...], float]],
    cover: Mapping[str, Fraction],
    n: int,
) -> float:
    """The right-hand side of Friedgut's inequality.

    Args:
        query: the query fixing atoms and variable positions.
        weights: per atom name, a sparse map from index tuples (of the
            atom's arity, over ``[1, n]``) to non-negative reals;
            missing entries are zero.
        cover: a fractional edge cover of the query.
        n: the domain bound.
    """
    if not is_fractional_edge_cover(query, cover):
        raise QueryError("weights exponent vector is not an edge cover")
    bound = 1.0
    for atom in query.atoms:
        atom_weights = list(weights.get(atom.name, {}).values())
        bound *= _norm_term(atom_weights, Fraction(cover.get(atom.name, 0)))
    return bound


def friedgut_lhs(
    query: ConjunctiveQuery,
    weights: Mapping[str, Mapping[tuple[int, ...], float]],
    n: int,
) -> float:
    """The left-hand side ``sum_a prod_j w_j(a_j)`` by enumeration.

    Exponential in the number of variables; intended for the small
    verification instances of the test suite.
    """
    variables = query.variables
    total = 0.0
    for assignment in product(range(1, n + 1), repeat=len(variables)):
        binding = dict(zip(variables, assignment))
        term = 1.0
        for atom in query.atoms:
            key = tuple(binding[v] for v in atom.variables)
            value = weights.get(atom.name, {}).get(key, 0.0)
            if value == 0.0:
                term = 0.0
                break
            term *= value
        total += term
    return total


def friedgut_holds(
    query: ConjunctiveQuery,
    weights: Mapping[str, Mapping[tuple[int, ...], float]],
    cover: Mapping[str, Fraction],
    n: int,
    slack: float = 1e-9,
) -> bool:
    """Numerically verify ``lhs <= rhs * (1 + slack)``."""
    lhs = friedgut_lhs(query, weights, n)
    rhs = friedgut_bound(query, weights, cover, n)
    return lhs <= rhs * (1 + slack) + slack


def output_size_bound(
    query: ConjunctiveQuery,
    cardinalities: Mapping[str, int],
    cover: Mapping[str, Fraction] | None = None,
) -> float:
    """The AGM-style corollary: ``|q(I)| <= prod_j |S_j|^{u_j}``.

    With the optimal edge cover this is the worst-case output size
    bound of [Atserias-Grohe-Marx 2008, Ngo et al. 2012] that the
    paper cites; e.g. ``|C3| <= sqrt(|S1| |S2| |S3|)``.

    Args:
        query: the query.
        cardinalities: ``|S_j|`` per atom name.
        cover: a fractional edge cover; optimal by default.
    """
    if cover is None:
        cover = optimal_edge_cover(query)
    elif not is_fractional_edge_cover(query, cover):
        raise QueryError("supplied exponents are not an edge cover")
    result = 1.0
    for atom in query.atoms:
        exponent = float(Fraction(cover.get(atom.name, 0)))
        size = cardinalities.get(atom.name, 0)
        if exponent > 0:
            result *= float(size) ** exponent
        elif size == 0:
            return 0.0
    return result


def verify_agm_on_instance(
    query: ConjunctiveQuery,
    relations: Mapping[str, tuple[tuple[int, ...], ...]],
) -> tuple[int, float]:
    """(actual output size, AGM bound) for a concrete instance."""
    from repro.algorithms.localjoin import evaluate_query

    actual = len(evaluate_query(query, relations))
    bound = output_size_bound(
        query, {name: len(rows) for name, rows in relations.items()}
    )
    return actual, math.ceil(bound - 1e-9)
