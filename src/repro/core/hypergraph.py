"""Query hypergraphs and their metric structure (Sections 2.3 and 4).

The hypergraph of a query has one node per variable and one hyperedge
per atom.  Two nodes are *adjacent* when some hyperedge contains both;
distances, eccentricities, the radius ``rad(q)`` and the diameter
``diam(q)`` -- which drive the multi-round bounds of Section 4 -- are
all measured in this adjacency graph.

The implementation is dependency-free (BFS over an adjacency dict);
``networkx`` is used only in tests as an independent cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections import deque
from functools import cached_property
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Hypergraph:
    """An immutable hypergraph over named nodes.

    Attributes:
        nodes: node names (query variables) in a fixed order.
        edges: hyperedges as frozensets of node names (atom variables).
        edge_names: optional parallel tuple of edge labels (atom names).
    """

    nodes: tuple[str, ...]
    edges: tuple[frozenset[str], ...]
    edge_names: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self.nodes))
        object.__setattr__(
            self, "edges", tuple(frozenset(edge) for edge in self.edges)
        )
        if not self.edge_names:
            object.__setattr__(
                self,
                "edge_names",
                tuple(f"e{i}" for i in range(len(self.edges))),
            )
        if len(self.edge_names) != len(self.edges):
            raise ValueError("edge_names must parallel edges")
        node_set = set(self.nodes)
        for edge in self.edges:
            if not edge <= node_set:
                raise ValueError(f"edge {set(edge)} not within nodes")

    # -- adjacency ----------------------------------------------------------

    @cached_property
    def adjacency(self) -> dict[str, frozenset[str]]:
        """Co-occurrence adjacency: neighbours sharing some hyperedge."""
        neighbours: dict[str, set[str]] = {node: set() for node in self.nodes}
        for edge in self.edges:
            for node in edge:
                neighbours[node] |= edge
        return {
            node: frozenset(adjacent - {node})
            for node, adjacent in neighbours.items()
        }

    @cached_property
    def connected_components(self) -> tuple[frozenset[str], ...]:
        """Node sets of the connected components, in first-seen order.

        Isolated nodes (in no hyperedge) form singleton components.
        """
        seen: set[str] = set()
        components: list[frozenset[str]] = []
        for start in self.nodes:
            if start in seen:
                continue
            component = self._bfs_reachable(start)
            seen |= component
            components.append(frozenset(component))
        return tuple(components)

    @property
    def is_connected(self) -> bool:
        """True when the hypergraph has exactly one component."""
        return len(self.connected_components) == 1

    def _bfs_reachable(self, start: str) -> set[str]:
        reachable = {start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for neighbour in self.adjacency[node]:
                if neighbour not in reachable:
                    reachable.add(neighbour)
                    queue.append(neighbour)
        return reachable

    # -- metric -------------------------------------------------------------

    def distances_from(self, start: str) -> dict[str, int]:
        """BFS distances from ``start`` to every reachable node."""
        if start not in self.adjacency:
            raise KeyError(start)
        distances = {start: 0}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for neighbour in self.adjacency[node]:
                if neighbour not in distances:
                    distances[neighbour] = distances[node] + 1
                    queue.append(neighbour)
        return distances

    def distance(self, u: str, v: str) -> int:
        """Shortest-path distance ``d(u, v)``.

        Raises:
            ValueError: if ``v`` is unreachable from ``u``.
        """
        distances = self.distances_from(u)
        if v not in distances:
            raise ValueError(f"{v!r} unreachable from {u!r}")
        return distances[v]

    def eccentricity(self, node: str) -> int:
        """``max_v d(node, v)`` over the node's component."""
        distances = self.distances_from(node)
        if len(distances) != len(self.nodes):
            raise ValueError("eccentricity undefined: hypergraph disconnected")
        return max(distances.values())

    @cached_property
    def radius(self) -> int:
        """``rad = min_u max_v d(u, v)`` (connected hypergraphs only)."""
        return min(self.eccentricity(node) for node in self.nodes)

    @cached_property
    def diameter(self) -> int:
        """``diam = max_{u,v} d(u, v)`` (connected hypergraphs only)."""
        return max(self.eccentricity(node) for node in self.nodes)

    @cached_property
    def center(self) -> str:
        """A node of minimum eccentricity (first in node order)."""
        best = None
        best_ecc = None
        for node in self.nodes:
            ecc = self.eccentricity(node)
            if best_ecc is None or ecc < best_ecc:
                best, best_ecc = node, ecc
        assert best is not None
        return best

    # -- edge-level structure ------------------------------------------------

    @cached_property
    def edge_adjacency(self) -> dict[str, frozenset[str]]:
        """Atom-level adjacency: edges sharing at least one node."""
        result: dict[str, set[str]] = {name: set() for name in self.edge_names}
        for i, edge_i in enumerate(self.edges):
            for j in range(i + 1, len(self.edges)):
                if edge_i & self.edges[j]:
                    result[self.edge_names[i]].add(self.edge_names[j])
                    result[self.edge_names[j]].add(self.edge_names[i])
        return {name: frozenset(adj) for name, adj in result.items()}

    def edge_components(self, edge_subset: Iterable[str]) -> tuple[tuple[str, ...], ...]:
        """Connected components of a *subset* of edges (by edge name).

        Two edges are in the same component when they are linked by a
        chain of shared variables within the subset.  Used to contract
        queries (Section 2.3) component by component.
        """
        subset = list(edge_subset)
        index = {name: i for i, name in enumerate(self.edge_names)}
        unknown = [name for name in subset if name not in index]
        if unknown:
            raise KeyError(f"unknown edges: {unknown}")
        remaining = set(subset)
        components: list[tuple[str, ...]] = []
        while remaining:
            start = min(remaining, key=lambda name: index[name])
            component = {start}
            frontier = deque([start])
            while frontier:
                current = frontier.popleft()
                current_vars = self.edges[index[current]]
                for other in list(remaining - component):
                    if current_vars & self.edges[index[other]]:
                        component.add(other)
                        frontier.append(other)
            remaining -= component
            components.append(
                tuple(sorted(component, key=lambda name: index[name]))
            )
        return tuple(components)

    def shortest_edge_path(self, start_node: str, target_edge: str) -> tuple[str, ...]:
        """A shortest sequence of edge names from ``start_node`` to an edge.

        The first edge of the result contains ``start_node``; consecutive
        edges share a variable; the last edge is ``target_edge``.  Used
        by the plan builder (Lemma 4.3) to cover all atoms with paths
        out of the hypergraph center.
        """
        index = {name: i for i, name in enumerate(self.edge_names)}
        if target_edge not in index:
            raise KeyError(target_edge)
        initial = [
            name
            for name, i in index.items()
            if start_node in self.edges[i]
        ]
        # BFS over edges.
        parents: dict[str, str | None] = {name: None for name in initial}
        queue = deque(initial)
        while queue:
            current = queue.popleft()
            if current == target_edge:
                path = [current]
                while parents[path[-1]] is not None:
                    path.append(parents[path[-1]])  # type: ignore[arg-type]
                return tuple(reversed(path))
            for neighbour in self.edge_adjacency[current]:
                if neighbour not in parents:
                    parents[neighbour] = current
                    queue.append(neighbour)
        raise ValueError(
            f"edge {target_edge!r} unreachable from node {start_node!r}"
        )


def hypergraph_of(nodes: Sequence[str], edges: Sequence[Iterable[str]]) -> Hypergraph:
    """Convenience constructor from plain sequences."""
    return Hypergraph(tuple(nodes), tuple(frozenset(e) for e in edges))
