"""Query isomorphism: checkable "is isomorphic to L_k" claims.

The multi-round lower-bound proofs repeatedly contract a query and
assert the result "is isomorphic to" a smaller family member --
``L_k / Mbar ~ L_{ceil(k/k_eps)}`` (Lemma 4.6), ``C_k / M ~
C_{floor(k/k_eps)}`` (Lemma 4.9).  This module makes those assertions
executable: two full conjunctive queries are isomorphic when some pair
of bijections (atoms to atoms, variables to variables) maps one body
onto the other position-for-position.

The search is a straightforward backtracking over atom pairings with
arity pre-grouping and incremental variable-binding checks; fine for
the paper's small queries.

Beyond the lower-bound proofs, the serving layer's plan cache uses the
same machinery for query canonicalization: two isomorphic queries can
share one compiled plan, with :class:`QueryIsomorphism` carrying both
the variable bijection (to permute answer columns) and the atom
bijection (to rebind the plan's relations onto the request's).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.query import Atom, ConjunctiveQuery


@dataclass(frozen=True)
class QueryIsomorphism:
    """A witness that two queries are structurally identical.

    Attributes:
        variables: left variable name -> right variable name.
        atoms: left atom (relation) name -> right atom name; the
            paired atoms have the mapped variables position-for-
            position.
    """

    variables: dict[str, str]
    atoms: dict[str, str]


def find_isomorphism(
    left: ConjunctiveQuery, right: ConjunctiveQuery
) -> dict[str, str] | None:
    """A variable bijection mapping ``left`` onto ``right``, or None.

    Returns a mapping from left variable names to right variable names
    such that some atom bijection sends every left atom ``S(x...)`` to
    a right atom with the mapped variables in the same positions
    (relation *names* are ignored: isomorphism is structural).
    """
    witness = find_query_isomorphism(left, right)
    return None if witness is None else witness.variables


def find_query_isomorphism(
    left: ConjunctiveQuery, right: ConjunctiveQuery
) -> QueryIsomorphism | None:
    """Like :func:`find_isomorphism`, but also return the atom pairing.

    The plan cache needs both halves of the witness: the variable
    bijection permutes answer columns between head orders, the atom
    bijection says which of the request's relations feeds each of the
    cached plan's routing steps.
    """
    if left.num_atoms != right.num_atoms:
        return None
    if left.num_variables != right.num_variables:
        return None
    left_arities = sorted(atom.arity for atom in left.atoms)
    right_arities = sorted(atom.arity for atom in right.atoms)
    if left_arities != right_arities:
        return None

    right_by_arity: dict[int, list[Atom]] = {}
    for atom in right.atoms:
        right_by_arity.setdefault(atom.arity, []).append(atom)

    # Order left atoms to keep the search connected: most-constrained
    # (largest arity) first, then atoms sharing variables with earlier
    # ones.
    ordered = sorted(left.atoms, key=lambda atom: -atom.arity)
    reordered: list[Atom] = []
    seen_vars: set[str] = set()
    pool = list(ordered)
    while pool:
        connected = [
            atom for atom in pool if atom.variable_set & seen_vars
        ]
        chosen = connected[0] if connected else pool[0]
        pool.remove(chosen)
        reordered.append(chosen)
        seen_vars |= chosen.variable_set

    used_right: set[str] = set()
    mapping: dict[str, str] = {}
    reverse: dict[str, str] = {}
    atom_mapping: dict[str, str] = {}

    def try_bind(left_atom: Atom, right_atom: Atom) -> list[str] | None:
        """Extend the variable bijection; return newly bound lefts."""
        if left_atom.arity != right_atom.arity:
            return None
        bound: list[str] = []
        for lv, rv in zip(left_atom.variables, right_atom.variables):
            if lv in mapping:
                if mapping[lv] != rv:
                    for variable in bound:
                        reverse.pop(mapping.pop(variable))
                    return None
            elif rv in reverse:
                for variable in bound:
                    reverse.pop(mapping.pop(variable))
                return None
            else:
                mapping[lv] = rv
                reverse[rv] = lv
                bound.append(lv)
        return bound

    def search(index: int) -> bool:
        if index == len(reordered):
            return True
        left_atom = reordered[index]
        for right_atom in right_by_arity.get(left_atom.arity, []):
            if right_atom.name in used_right:
                continue
            bound = try_bind(left_atom, right_atom)
            if bound is None:
                continue
            used_right.add(right_atom.name)
            atom_mapping[left_atom.name] = right_atom.name
            if search(index + 1):
                return True
            used_right.discard(right_atom.name)
            del atom_mapping[left_atom.name]
            for variable in bound:
                reverse.pop(mapping.pop(variable))
        return False

    if search(0):
        return QueryIsomorphism(
            variables=dict(mapping), atoms=dict(atom_mapping)
        )
    return None


def are_isomorphic(
    left: ConjunctiveQuery, right: ConjunctiveQuery
) -> bool:
    """True when the two queries are structurally isomorphic."""
    return find_isomorphism(left, right) is not None
