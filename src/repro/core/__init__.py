"""Core query theory from Beame-Koutris-Suciu (PODS 2013).

This package implements the paper's primary contribution: the analysis
machinery that maps a full conjunctive query to

* its hypergraph and graph-theoretic parameters (radius, diameter,
  connectivity, the characteristic ``chi(q)`` of Section 2.3),
* the fractional vertex-cover / edge-packing LPs of Figure 1 and the
  fractional covering number ``tau*(q)``,
* the one-round *space exponent* ``eps = 1 - 1/tau*`` (Theorem 1.1),
* HyperCube share exponents and integer share allocation (Section 3.1),
* multi-round query plans built from one-round operators
  (Section 4.1, ``Gamma^r_eps``), and
* the lower-bound machinery: epsilon-good sets, (eps, r)-plans
  (Definition 4.4) and every closed-form bound in the paper.
"""

from repro.core.query import Atom, ConjunctiveQuery, QueryError, parse_query
from repro.core.hypergraph import Hypergraph
from repro.core.characteristic import characteristic, contract
from repro.core.covers import (
    CoverAnalysis,
    analyze_covers,
    covering_number,
    fractional_edge_packing,
    fractional_vertex_cover,
    space_exponent,
)
from repro.core.shares import (
    ShareAllocation,
    allocate_integer_shares,
    share_exponents,
)
from repro.core.families import (
    binomial_query,
    cycle_query,
    line_query,
    spider_query,
    star_query,
)
from repro.core.plans import PlanStep, PlanRound, QueryPlan, build_plan, in_gamma_one
from repro.core.goodness import find_lower_bound_plan, is_eps_good
from repro.core.bounds import (
    cc_round_lower_bound,
    cycle_round_lower_bound,
    expected_answer_size,
    k_eps,
    m_eps,
    one_round_answer_fraction,
    round_lower_bound,
    round_upper_bound,
    space_exponent_lower_bound,
)
from repro.core.friedgut import (
    edge_cover_number,
    friedgut_bound,
    friedgut_holds,
    optimal_edge_cover,
    output_size_bound,
)
from repro.core.extended import extend_query, is_tight_packing, lemma_39_holds
from repro.core.isomorphism import are_isomorphic, find_isomorphism
from repro.core.knowledge import g_constant, knowledge_bound

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "QueryError",
    "parse_query",
    "Hypergraph",
    "characteristic",
    "contract",
    "CoverAnalysis",
    "analyze_covers",
    "covering_number",
    "fractional_edge_packing",
    "fractional_vertex_cover",
    "space_exponent",
    "ShareAllocation",
    "allocate_integer_shares",
    "share_exponents",
    "binomial_query",
    "cycle_query",
    "line_query",
    "spider_query",
    "star_query",
    "PlanStep",
    "PlanRound",
    "QueryPlan",
    "build_plan",
    "in_gamma_one",
    "find_lower_bound_plan",
    "is_eps_good",
    "cc_round_lower_bound",
    "cycle_round_lower_bound",
    "expected_answer_size",
    "k_eps",
    "m_eps",
    "one_round_answer_fraction",
    "round_lower_bound",
    "round_upper_bound",
    "space_exponent_lower_bound",
    "edge_cover_number",
    "friedgut_bound",
    "friedgut_holds",
    "optimal_edge_cover",
    "output_size_bound",
    "extend_query",
    "is_tight_packing",
    "lemma_39_holds",
    "are_isomorphic",
    "find_isomorphism",
    "g_constant",
    "knowledge_bound",
]
