"""Full conjunctive queries without self-joins (Section 2.3).

A query is written, as in equation (1) of the paper, as::

    q(x1, ..., xk) = S1(xbar_1), ..., Sl(xbar_l)

It is *full* -- every variable in the body appears in the head -- and
has *no self-joins* -- each relation name appears exactly once.  Both
restrictions are inherited from the paper and validated at construction
time.

The module offers three ways to build queries:

* directly, from :class:`Atom` objects::

      ConjunctiveQuery([Atom("S1", ("x", "y")), Atom("S2", ("y", "z"))])

* by parsing the paper's notation::

      parse_query("S1(x,y), S2(y,z)")
      parse_query("q(x,y,z) = S1(x,y), S2(y,z)")

* from the family constructors in :mod:`repro.core.families`
  (``line_query``, ``cycle_query``, ...).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Mapping, Sequence


class QueryError(Exception):
    """Raised for malformed queries (self-joins, empty bodies, ...)."""


@dataclass(frozen=True)
class Atom:
    """A single relational atom ``S(x1, ..., xa)``.

    Attributes:
        name: relation symbol; must be unique within a query.
        variables: variable names in positional order.  Repeated
            variables are allowed (they arise from contraction,
            Section 2.3) and act as equality constraints.
    """

    name: str
    variables: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("atom needs a non-empty relation name")
        if not self.variables:
            raise QueryError(f"atom {self.name!r} needs at least one variable")
        object.__setattr__(self, "variables", tuple(self.variables))

    @property
    def arity(self) -> int:
        """Number of attribute positions (counting repeats)."""
        return len(self.variables)

    @cached_property
    def first_positions(self) -> dict[str, int]:
        """First column position of each distinct variable.

        Repeated variables act as equality selections: a row satisfies
        the atom iff every position agrees with its variable's first
        position.  Both execution engines share this mapping.
        """
        positions: dict[str, int] = {}
        for position, variable in enumerate(self.variables):
            positions.setdefault(variable, position)
        return positions

    @property
    def variable_set(self) -> frozenset[str]:
        """Distinct variables of the atom."""
        return frozenset(self.variables)

    def rename(self, mapping: Mapping[str, str]) -> "Atom":
        """Return a copy with variables substituted through ``mapping``."""
        return Atom(
            self.name,
            tuple(mapping.get(v, v) for v in self.variables),
        )

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.variables)})"


class ConjunctiveQuery:
    """A full conjunctive query without self-joins.

    Args:
        atoms: the body atoms; relation names must be distinct.
        head: optional explicit head-variable order.  Must contain
            exactly the body variables (the query is full).  Defaults
            to body variables in order of first appearance.
        name: optional display name (``q`` by default).
    """

    def __init__(
        self,
        atoms: Iterable[Atom],
        head: Sequence[str] | None = None,
        name: str = "q",
    ) -> None:
        self._atoms = tuple(atoms)
        if not self._atoms:
            raise QueryError("query needs at least one atom")
        names = [atom.name for atom in self._atoms]
        if len(set(names)) != len(names):
            duplicates = sorted(
                {n for n in names if names.count(n) > 1}
            )
            raise QueryError(f"self-joins are not allowed: {duplicates}")

        seen: dict[str, None] = {}
        for atom in self._atoms:
            for variable in atom.variables:
                seen.setdefault(variable, None)
        body_variables = tuple(seen)

        if head is None:
            head = body_variables
        if set(head) != set(body_variables) or len(set(head)) != len(head):
            raise QueryError(
                "query must be full: head variables "
                f"{tuple(head)} != body variables {body_variables}"
            )
        self._head = tuple(head)
        self._name = name

    # -- basic accessors ---------------------------------------------------

    @property
    def name(self) -> str:
        """Display name of the query."""
        return self._name

    @property
    def atoms(self) -> tuple[Atom, ...]:
        """Body atoms in declaration order."""
        return self._atoms

    @property
    def head(self) -> tuple[str, ...]:
        """Head variables (all body variables, in head order)."""
        return self._head

    @property
    def variables(self) -> tuple[str, ...]:
        """Alias of :attr:`head`: the query is full."""
        return self._head

    @property
    def num_variables(self) -> int:
        """``k`` in the paper's notation."""
        return len(self._head)

    @property
    def num_atoms(self) -> int:
        """``l`` (ell) in the paper's notation."""
        return len(self._atoms)

    @property
    def total_arity(self) -> int:
        """``a = sum_j a_j`` in the paper's notation."""
        return sum(atom.arity for atom in self._atoms)

    def atom(self, name: str) -> Atom:
        """Look up an atom by relation name."""
        for candidate in self._atoms:
            if candidate.name == name:
                return candidate
        raise KeyError(name)

    def atoms_of(self, variable: str) -> tuple[Atom, ...]:
        """``atoms(x)``: the atoms in which ``variable`` occurs."""
        return tuple(
            atom for atom in self._atoms if variable in atom.variable_set
        )

    # -- structure ----------------------------------------------------------

    @cached_property
    def hypergraph(self) -> "Hypergraph":
        """The query hypergraph (one node per variable, one edge per atom)."""
        from repro.core.hypergraph import Hypergraph

        return Hypergraph(
            nodes=self._head,
            edges=tuple(atom.variable_set for atom in self._atoms),
            edge_names=tuple(atom.name for atom in self._atoms),
        )

    @property
    def is_connected(self) -> bool:
        """True when the query hypergraph is connected."""
        return self.hypergraph.is_connected

    @cached_property
    def connected_components(self) -> tuple["ConjunctiveQuery", ...]:
        """Maximal connected subqueries, as queries."""
        components = self.hypergraph.connected_components
        result = []
        for index, component in enumerate(components):
            atoms = tuple(
                atom
                for atom in self._atoms
                if atom.variable_set <= component
            )
            result.append(
                ConjunctiveQuery(atoms, name=f"{self._name}[{index}]")
            )
        return tuple(result)

    def subquery(self, atom_names: Iterable[str], name: str | None = None) -> "ConjunctiveQuery":
        """The subquery induced by a subset of atoms.

        The result keeps only the variables occurring in the selected
        atoms; it is full by construction.
        """
        wanted = set(atom_names)
        unknown = wanted - {atom.name for atom in self._atoms}
        if unknown:
            raise QueryError(f"unknown atoms: {sorted(unknown)}")
        atoms = tuple(atom for atom in self._atoms if atom.name in wanted)
        return ConjunctiveQuery(
            atoms, name=name or f"{self._name}|{len(atoms)}"
        )

    def rename_variables(self, mapping: Mapping[str, str]) -> "ConjunctiveQuery":
        """Apply an *injective* variable renaming."""
        targets = [mapping.get(v, v) for v in self._head]
        if len(set(targets)) != len(targets):
            raise QueryError("variable renaming must be injective")
        return ConjunctiveQuery(
            tuple(atom.rename(mapping) for atom in self._atoms),
            head=tuple(targets),
            name=self._name,
        )

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return self._atoms == other._atoms and self._head == other._head

    def __hash__(self) -> int:
        return hash((self._atoms, self._head))

    def __str__(self) -> str:
        body = ", ".join(str(atom) for atom in self._atoms)
        return f"{self._name}({', '.join(self._head)}) = {body}"

    def __repr__(self) -> str:
        return f"ConjunctiveQuery({str(self)!r})"


_ATOM_RE = re.compile(r"\s*([A-Za-z_][A-Za-z0-9_']*)\s*\(([^)]*)\)\s*")


def parse_query(text: str, name: str | None = None) -> ConjunctiveQuery:
    """Parse the paper's query notation.

    Accepts either a bare body, ``"S1(x,y), S2(y,z)"``, or a rule with
    an explicit head, ``"q(x,y,z) = S1(x,y), S2(y,z)"``.  Variable and
    relation names are identifiers (primes allowed, e.g. ``x'``).

    Raises:
        QueryError: on syntax errors, or if the parsed query violates
            fullness / no-self-join validation.
    """
    head: tuple[str, ...] | None = None
    body = text
    if "=" in text:
        head_text, body = text.split("=", 1)
        match = _ATOM_RE.fullmatch(head_text)
        if match is None:
            raise QueryError(f"malformed head: {head_text.strip()!r}")
        parsed_name, arguments = match.groups()
        head = _split_arguments(arguments, context=head_text)
        name = name or parsed_name

    atoms: list[Atom] = []
    position = 0
    body = body.strip()
    while position < len(body):
        match = _ATOM_RE.match(body, position)
        if match is None:
            raise QueryError(f"malformed body near: {body[position:]!r}")
        atom_name, arguments = match.groups()
        atoms.append(Atom(atom_name, _split_arguments(arguments, body)))
        position = match.end()
        if position < len(body):
            if body[position] != ",":
                raise QueryError(
                    f"expected ',' between atoms near: {body[position:]!r}"
                )
            position += 1
    if not atoms:
        raise QueryError(f"no atoms found in {text!r}")
    return ConjunctiveQuery(atoms, head=head, name=name or "q")


def _split_arguments(arguments: str, context: str) -> tuple[str, ...]:
    parts = [part.strip() for part in arguments.split(",")]
    if any(not part for part in parts):
        raise QueryError(f"empty argument in {context.strip()!r}")
    return tuple(parts)
