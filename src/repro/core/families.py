"""The paper's running query families (Table 1 and Table 2).

Constructors for

* ``C_k`` -- the cycle query ``/\\_j S_j(x_j, x_{(j mod k)+1})``,
* ``T_k`` -- the star query ``/\\_j S_j(z, x_j)``,
* ``L_k`` -- the line (chain) query ``/\\_j S_j(x_{j-1}, x_j)``,
* ``B_{k,m}`` -- one relation per m-subset ``I`` of ``[k]``: ``S_I(x_I)``,
* ``SP_k`` -- the "spider" ``/\\_i R_i(z, x_i), S_i(x_i, y_i)``
  (Example 4.2 / Table 2),

together with the *closed forms* the paper states for them: the minimum
fractional vertex cover, optimal share exponents, ``tau*``, the space
exponent, and the expected answer size on random matching databases.
The closed forms are cross-checked against the generic LP machinery in
the test suite -- they are the paper's Table 1 rows, so the repository
regenerates that table from first principles.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import combinations
from math import comb
from typing import Callable

from repro.core.query import Atom, ConjunctiveQuery


def cycle_query(k: int) -> ConjunctiveQuery:
    """``C_k(x_1..x_k) = S_1(x_1,x_2), ..., S_k(x_k,x_1)`` for k >= 3."""
    if k < 3:
        raise ValueError(f"cycle queries need k >= 3, got {k}")
    atoms = [
        Atom(f"S{j}", (f"x{j}", f"x{j % k + 1}"))
        for j in range(1, k + 1)
    ]
    return ConjunctiveQuery(atoms, name=f"C{k}")


def star_query(k: int) -> ConjunctiveQuery:
    """``T_k(z, x_1..x_k) = S_1(z,x_1), ..., S_k(z,x_k)`` for k >= 1."""
    if k < 1:
        raise ValueError(f"star queries need k >= 1, got {k}")
    atoms = [Atom(f"S{j}", ("z", f"x{j}")) for j in range(1, k + 1)]
    return ConjunctiveQuery(atoms, name=f"T{k}")


def line_query(k: int) -> ConjunctiveQuery:
    """``L_k(x_0..x_k) = S_1(x_0,x_1), ..., S_k(x_{k-1},x_k)`` for k >= 1."""
    if k < 1:
        raise ValueError(f"line queries need k >= 1, got {k}")
    atoms = [
        Atom(f"S{j}", (f"x{j - 1}", f"x{j}")) for j in range(1, k + 1)
    ]
    return ConjunctiveQuery(atoms, name=f"L{k}")


def binomial_query(k: int, m: int) -> ConjunctiveQuery:
    """``B_{k,m}``: one atom ``S_I(x_I)`` per m-subset ``I`` of ``[k]``.

    Requires ``1 <= m <= k`` and, to keep the query free of unary
    atoms (the paper's standing assumption in Section 3), ``m >= 2``
    unless ``k == m``.
    """
    if not 1 <= m <= k:
        raise ValueError(f"need 1 <= m <= k, got k={k}, m={m}")
    atoms = []
    for subset in combinations(range(1, k + 1), m):
        label = "".join(str(i) for i in subset)
        atoms.append(Atom(f"S{label}", tuple(f"x{i}" for i in subset)))
    return ConjunctiveQuery(atoms, name=f"B{k}_{m}")


def spider_query(k: int) -> ConjunctiveQuery:
    """``SP_k = /\\_i R_i(z, x_i), S_i(x_i, y_i)`` (Example 4.2).

    One-round space exponent ``1 - 1/k`` but a 2-round plan at
    ``eps = 0``: the paper's showcase for the power of extra rounds.
    """
    if k < 1:
        raise ValueError(f"spider queries need k >= 1, got {k}")
    atoms = []
    for i in range(1, k + 1):
        atoms.append(Atom(f"R{i}", ("z", f"x{i}")))
        atoms.append(Atom(f"S{i}", (f"x{i}", f"y{i}")))
    return ConjunctiveQuery(atoms, name=f"SP{k}")


@dataclass(frozen=True)
class FamilyFacts:
    """Closed-form facts for one Table 1 / Table 2 row.

    Attributes:
        query: the constructed query.
        tau_star: the fractional covering number stated by the paper.
        space_exp: the one-round space exponent ``1 - 1/tau*``.
        vertex_cover: the minimum vertex cover stated by the paper.
        share_exps: the optimal share exponents stated by the paper.
        answer_size_exponent: ``1 + chi(q)``: on random matching
            databases ``E[|q(I)|] = n^{answer_size_exponent}``
            (Lemma 3.4); Table 1 reports ``n^1`` for ``L_k, T_k`` and
            ``n^0 = 1`` for ``C_k``.
        rounds_at_zero: Table 2's "rounds for eps = 0" entry, or None
            when the paper lists no multi-round entry.
    """

    query: ConjunctiveQuery
    tau_star: Fraction
    space_exp: Fraction
    vertex_cover: dict[str, Fraction]
    share_exps: dict[str, Fraction]
    answer_size_exponent: int
    rounds_at_zero: int | None


def cycle_facts(k: int) -> FamilyFacts:
    """Table 1 row for ``C_k``: cover (1/2,..), tau* = k/2, eps = 1-2/k."""
    query = cycle_query(k)
    half = Fraction(1, 2)
    cover = {f"x{i}": half for i in range(1, k + 1)}
    shares = {f"x{i}": Fraction(1, k) for i in range(1, k + 1)}
    rounds = _ceil_log2(k)
    return FamilyFacts(
        query=query,
        tau_star=Fraction(k, 2),
        space_exp=1 - Fraction(2, k),
        vertex_cover=cover,
        share_exps=shares,
        answer_size_exponent=0,
        rounds_at_zero=rounds,
    )


def star_facts(k: int) -> FamilyFacts:
    """Table 1 row for ``T_k``: cover puts 1 on the hub; tau* = 1."""
    query = star_query(k)
    cover = {"z": Fraction(1)}
    cover.update({f"x{i}": Fraction(0) for i in range(1, k + 1)})
    shares = dict(cover)
    return FamilyFacts(
        query=query,
        tau_star=Fraction(1),
        space_exp=Fraction(0),
        vertex_cover=cover,
        share_exps=shares,
        answer_size_exponent=1,
        rounds_at_zero=1,
    )


def line_facts(k: int) -> FamilyFacts:
    """Table 1 row for ``L_k``: cover 0,1,0,1,...; tau* = ceil(k/2)."""
    query = line_query(k)
    tau = Fraction(_ceil_div(k, 2))
    cover: dict[str, Fraction] = {}
    for i in range(0, k + 1):
        # Odd positions x1, x3, ... carry weight 1; for even k the final
        # odd position already covers the last atom.
        cover[f"x{i}"] = Fraction(1) if i % 2 == 1 else Fraction(0)
    if k % 2 == 0 and k >= 2:
        # k even: atoms pair up perfectly; the alternating cover has
        # exactly k/2 ones already.
        pass
    shares = {name: value / tau for name, value in cover.items()}
    return FamilyFacts(
        query=query,
        tau_star=tau,
        space_exp=1 - 1 / tau,
        vertex_cover=cover,
        share_exps=shares,
        answer_size_exponent=1,
        rounds_at_zero=_ceil_log2(k) if k >= 2 else 1,
    )


def binomial_facts(k: int, m: int) -> FamilyFacts:
    """Table 1 row for ``B_{k,m}``: cover (1/m,..); tau* = k/m."""
    query = binomial_query(k, m)
    cover = {f"x{i}": Fraction(1, m) for i in range(1, k + 1)}
    shares = {f"x{i}": Fraction(1, k) for i in range(1, k + 1)}
    return FamilyFacts(
        query=query,
        tau_star=Fraction(k, m),
        space_exp=1 - Fraction(m, k),
        vertex_cover=cover,
        share_exps=shares,
        answer_size_exponent=k - (m - 1) * comb(k, m),
        rounds_at_zero=None,
    )


def spider_facts(k: int) -> FamilyFacts:
    """Table 2 row for ``SP_k``: tau* = k, eps = 1 - 1/k, 2 rounds at 0."""
    query = spider_query(k)
    cover: dict[str, Fraction] = {"z": Fraction(0)}
    for i in range(1, k + 1):
        cover[f"x{i}"] = Fraction(1)
        cover[f"y{i}"] = Fraction(0)
    tau = Fraction(k)
    shares = {name: value / tau for name, value in cover.items()}
    return FamilyFacts(
        query=query,
        tau_star=tau,
        space_exp=1 - Fraction(1, k),
        vertex_cover=cover,
        share_exps=shares,
        answer_size_exponent=1,
        rounds_at_zero=1 if k == 1 else 2,
    )


#: Registry used by the Table 1 / Table 2 benchmarks: family label to
#: (constructor of FamilyFacts taking the size parameter).
FAMILY_REGISTRY: dict[str, Callable[[int], FamilyFacts]] = {
    "C": cycle_facts,
    "T": star_facts,
    "L": line_facts,
    "SP": spider_facts,
}


def _ceil_div(numerator: int, denominator: int) -> int:
    return -(-numerator // denominator)


def _ceil_log2(value: int) -> int:
    if value < 1:
        raise ValueError(f"ceil_log2 needs value >= 1, got {value}")
    result = 0
    power = 1
    while power < value:
        power *= 2
        result += 1
    return result
