"""Closed-form bounds from the paper, in one place.

Every quantitative statement of the paper is exposed as a function so
benchmarks and tests can compare measured behaviour against theory:

=====================================  =====================================
Paper statement                        Function
=====================================  =====================================
Theorem 1.1 (space exponent)           :func:`space_exponent_lower_bound`
Theorem 3.3 (one-round answer frac.)   :func:`one_round_answer_fraction`
Lemma 3.4  (expected answer size)      :func:`expected_answer_size`
``k_eps = 2 * floor(1/(1-eps))``       :func:`k_eps`
``m_eps = floor(2/(1-eps))``           :func:`m_eps`
Corollary 4.8 (tree-like lower bound)  :func:`round_lower_bound`
Lemma 4.3 (upper bound)                :func:`round_upper_bound`
Lemma 4.9 (cycle lower bound)          :func:`cycle_round_lower_bound`
Theorem 4.10 (connected components)    :func:`cc_round_lower_bound`
=====================================  =====================================
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.characteristic import characteristic, is_tree_like
from repro.core.covers import covering_number
from repro.core.plans import in_gamma_one
from repro.core.query import ConjunctiveQuery, QueryError


def k_eps(eps: Fraction | float | int) -> int:
    """``k_eps = 2 * floor(1 / (1 - eps))`` (Theorem 1.2).

    The longest line query computable in one MPC(eps) round:
    ``tau*(L_k) = ceil(k/2) <= 1/(1-eps)`` iff ``k <= k_eps``.
    """
    eps = Fraction(eps)
    if not 0 <= eps < 1:
        raise ValueError(f"space exponent must be in [0, 1), got {eps}")
    return 2 * ((1 / (1 - eps)).__floor__())


def m_eps(eps: Fraction | float | int) -> int:
    """``m_eps = floor(2 / (1 - eps))`` (Lemma 4.9).

    The longest cycle query computable in one MPC(eps) round:
    ``tau*(C_k) = k/2 <= 1/(1-eps)`` iff ``k <= m_eps``.
    """
    eps = Fraction(eps)
    if not 0 <= eps < 1:
        raise ValueError(f"space exponent must be in [0, 1), got {eps}")
    return (2 / (1 - eps)).__floor__()


def space_exponent_lower_bound(query: ConjunctiveQuery) -> Fraction:
    """Theorem 1.1: one round needs ``eps >= 1 - 1/tau*(q)``.

    Holds for connected queries (without unary atoms) even on matching
    databases; exact over matching databases.
    """
    if not query.is_connected:
        raise QueryError("Theorem 1.1 applies to connected queries")
    return 1 - 1 / covering_number(query)


def one_round_answer_fraction(
    query: ConjunctiveQuery, eps: Fraction | float, p: int
) -> float:
    """Theorem 3.3: expected reported fraction ``<= O(p^{-(tau*(1-eps)-1)})``.

    Returns the fraction ``p^{-(tau*(1-eps)-1)}`` (capped at 1), the
    decay rate any one-round MPC(eps) algorithm obeys when
    ``eps < 1 - 1/tau*``; Proposition 3.11 shows the rate is achieved.
    """
    if p < 1:
        raise ValueError(f"need p >= 1, got {p}")
    tau = covering_number(query)
    exponent = float(tau * (1 - Fraction(eps)) - 1)
    if exponent <= 0:
        return 1.0
    return float(p) ** (-exponent)


def expected_answer_size(query: ConjunctiveQuery, n: int) -> float:
    """Lemma 3.4: ``E[|q(I)|] = n^(1 + chi(q))`` over matching databases.

    Exact for connected queries; for disconnected queries the paper's
    per-component argument multiplies, which is what this returns.
    """
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    exponent = sum(
        1 + characteristic(component)
        for component in query.connected_components
    )
    return float(n) ** exponent


def _ceil_log(base: int, value: int) -> int:
    """Smallest ``r >= 0`` with ``base ** r >= value`` (exact)."""
    if base < 2:
        raise ValueError(f"log base must be >= 2, got {base}")
    if value < 1:
        raise ValueError(f"log argument must be >= 1, got {value}")
    result = 0
    power = 1
    while power < value:
        power *= base
        result += 1
    return result


def round_lower_bound(query: ConjunctiveQuery, eps: Fraction | float) -> int:
    """Corollary 4.8: tree-like queries need >= ``ceil(log_{k_eps} diam)``.

    For non-tree-like queries the generic machinery in
    :mod:`repro.core.goodness` applies instead; calling this on one
    raises :class:`QueryError`.
    """
    if not is_tree_like(query):
        raise QueryError("Corollary 4.8 applies to tree-like queries")
    eps = Fraction(eps)
    return max(1, _ceil_log(k_eps(eps), query.hypergraph.diameter))


def round_upper_bound(query: ConjunctiveQuery, eps: Fraction | float) -> int:
    """Lemma 4.3: rounds needed by repeated HC on any connected query.

    ``ceil(log_{k_eps} rad(q)) + 1`` for tree-like queries and
    ``ceil(log_{k_eps} (rad(q) + 1)) + 1`` otherwise; 1 when the query
    is already in ``Gamma^1_eps``.
    """
    eps = Fraction(eps)
    if not query.is_connected:
        raise QueryError("Lemma 4.3 applies to connected queries")
    if in_gamma_one(query, eps):
        return 1
    radius = query.hypergraph.radius
    argument = radius if is_tree_like(query) else radius + 1
    return _ceil_log(k_eps(eps), argument) + 1


def cycle_round_lower_bound(k: int, eps: Fraction | float) -> int:
    """Lemma 4.9: ``C_k`` needs >= ``ceil(log_{k_eps}(k/(m_eps+1))) + 1``."""
    if k < 3:
        raise ValueError(f"cycle queries need k >= 3, got {k}")
    eps = Fraction(eps)
    base = k_eps(eps)
    target = Fraction(k, m_eps(eps) + 1)
    # Smallest r with base**r >= target, i.e. ceil(log_base target).
    result = 0
    power = Fraction(1)
    while power < target:
        power *= base
        result += 1
    return result + 1


def cc_round_lower_bound(p: int, eps: Fraction | float) -> int:
    """Theorem 4.10: CONNECTED-COMPONENTS needs ``Omega(log p)`` rounds.

    Concretely ``ceil(log_{k_eps} floor(p^delta)) - 2`` with
    ``delta = 1/(2t)`` and ``t = ceil(1/(1-eps))``, clamped to >= 1.
    The layered-graph construction in
    :mod:`repro.data.generators` realises the bound.
    """
    if p < 2:
        raise ValueError(f"need p >= 2, got {p}")
    eps = Fraction(eps)
    t = max(1, (1 / (1 - eps)).__ceil__())
    delta = 1.0 / (2 * t)
    k = int(float(p) ** delta)
    if k < 2:
        return 1
    return max(1, _ceil_log(k_eps(eps), k) - 2)
