"""Epsilon-good sets and (eps, r)-plans (Definition 4.4).

These are the combinatorial gadgets behind the multi-round *lower*
bounds of Section 4.2.  A set ``M`` of atoms is *eps-good* for a
connected query ``q`` when

1. every connected subquery of ``q`` lying in ``Gamma^1_eps`` contains
   at most one atom of ``M`` (the atoms of ``M`` are too far apart to
   be joined in a single round), and
2. ``chi(Mbar) = 0`` for ``Mbar = atoms(q) - M`` (each connected
   component of the complement is tree-like, so contracting it keeps
   ``chi`` -- and hence the expected answer size -- unchanged).

An ``(eps, r)``-plan is a chain ``atoms(q) = M_0 > M_1 > ... > M_r``
where each ``M_{j+1}`` is eps-good for the contraction ``q / Mbar_j``
and the final contraction is still outside ``Gamma^1_eps``.
Theorem 4.5: a query with an ``(eps, r)``-plan needs more than
``r + 1`` rounds on the tuple-based MPC(eps) model.

:func:`find_lower_bound_plan` searches for the longest such chain by
exhaustive search over atom subsets (queries in the paper have at most
a dozen atoms, so this is cheap), and the structured constructions of
Lemma 4.6 (lines) and Lemma 4.9 (cycles) are exposed as
:func:`line_good_set` / :func:`cycle_good_set`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core.characteristic import characteristic, contract
from repro.core.covers import covering_number
from repro.core.plans import gamma_one_threshold, in_gamma_one
from repro.core.query import ConjunctiveQuery, QueryError


def connected_atom_subsets(
    query: ConjunctiveQuery, min_size: int = 1
) -> tuple[frozenset[str], ...]:
    """All connected subsets of atoms (by name) of size >= ``min_size``.

    Enumerated by growing connected sets atom by atom; intended for the
    small queries of the paper (exponential in the number of atoms).
    """
    adjacency = query.hypergraph.edge_adjacency
    names = [atom.name for atom in query.atoms]
    found: set[frozenset[str]] = set()
    frontier: list[frozenset[str]] = [frozenset({name}) for name in names]
    found |= set(frontier)
    while frontier:
        next_frontier: list[frozenset[str]] = []
        for subset in frontier:
            reachable = set().union(*(adjacency[name] for name in subset))
            for name in reachable - subset:
                grown = subset | {name}
                if grown not in found:
                    found.add(grown)
                    next_frontier.append(grown)
        frontier = next_frontier
    return tuple(
        subset for subset in found if len(subset) >= min_size
    )


def is_eps_good(
    query: ConjunctiveQuery,
    m_atoms: frozenset[str] | set[str],
    eps: Fraction,
) -> bool:
    """Definition 4.4: is ``M`` eps-good for connected query ``q``?"""
    eps = Fraction(eps)
    m_atoms = frozenset(m_atoms)
    all_names = {atom.name for atom in query.atoms}
    if not m_atoms <= all_names:
        raise QueryError(f"unknown atoms: {sorted(m_atoms - all_names)}")

    # Condition 2: every connected component of the complement is
    # tree-like, i.e. chi of each component is 0.
    complement = all_names - m_atoms
    if complement:
        complement_query = query.subquery(complement)
        if any(
            characteristic(component) != 0
            for component in complement_query.connected_components
        ):
            return False

    # Condition 1: no Gamma^1_eps connected subquery holds two M-atoms.
    threshold = gamma_one_threshold(eps)
    for subset in connected_atom_subsets(query, min_size=2):
        if len(subset & m_atoms) < 2:
            continue
        if covering_number(query.subquery(subset)) <= threshold:
            return False
    return True


@dataclass(frozen=True)
class LowerBoundPlan:
    """An ``(eps, r)``-plan found for a query.

    Attributes:
        query: the original query.
        eps: the space exponent.
        chain: the surviving-atom chain ``M_1 > M_2 > ... > M_r``
            (``M_0 = atoms(q)`` is implicit).
        contractions: the successive contracted queries
            ``q / Mbar_1, ..., q / Mbar_r``.
    """

    query: ConjunctiveQuery
    eps: Fraction
    chain: tuple[frozenset[str], ...]
    contractions: tuple[ConjunctiveQuery, ...]

    @property
    def r(self) -> int:
        """The plan length ``r``."""
        return len(self.chain)

    @property
    def rounds_lower_bound(self) -> int:
        """Minimum number of rounds implied by this plan.

        Theorem 4.5: with an ``(eps, r)``-plan, every ``r + 1``-round
        tuple-based MPC(eps) algorithm fails, so any correct algorithm
        uses at least ``r + 2`` rounds.  With an empty chain the bound
        degrades gracefully: 2 when the query is outside
        ``Gamma^1_eps`` (one round provably fails) and the trivial 1
        when it is inside (one round suffices, so no lower bound).
        """
        if self.chain:
            return self.r + 2
        return 1 if in_gamma_one(self.query, self.eps) else 2


def find_lower_bound_plan(
    query: ConjunctiveQuery, eps: Fraction | float | int
) -> LowerBoundPlan:
    """Greedily build the longest ``(eps, r)``-plan we can find.

    At each stage, among all eps-good sets ``M`` for the current
    contraction we pick one with the largest ``|M|`` (ties broken by
    lexicographic atom order) -- mirroring the "every ``k_eps``-th
    atom" constructions of Lemmas 4.6 and 4.9 -- and contract.  The
    chain stops when the contraction would land inside
    ``Gamma^1_eps`` or no eps-good set with at least two atoms exists.

    Returns:
        A (possibly empty-chain) :class:`LowerBoundPlan`.  An empty
        chain with ``q`` outside ``Gamma^1_eps`` still certifies that
        one round is not enough (r = 0 gives a 2-round requirement).
    """
    eps = Fraction(eps)
    if not query.is_connected:
        raise QueryError("lower-bound plans require a connected query")
    chain: list[frozenset[str]] = []
    contractions: list[ConjunctiveQuery] = []
    current = query
    while True:
        candidate = _best_good_set(current, eps)
        if candidate is None:
            break
        complement = {
            atom.name for atom in current.atoms
        } - candidate
        contracted = contract(current, complement)
        if in_gamma_one(contracted, eps):
            break
        chain.append(candidate)
        contractions.append(contracted)
        current = contracted
    return LowerBoundPlan(
        query=query,
        eps=eps,
        chain=tuple(chain),
        contractions=tuple(contractions),
    )


def _best_good_set(
    query: ConjunctiveQuery, eps: Fraction
) -> frozenset[str] | None:
    """A large eps-good atom subset of size >= 2, or None.

    Greedy construction mirroring Lemmas 4.6 / 4.9: walk the atoms in
    declaration order (trying each rotation of the starting point) and
    keep an atom whenever no ``Gamma^1_eps`` connected subquery links
    it to an atom already kept.  The best candidate over all rotations
    that also satisfies condition 2 is returned.
    """
    threshold = gamma_one_threshold(eps)
    names = [atom.name for atom in query.atoms]
    gamma_sets = [
        subset
        for subset in connected_atom_subsets(query, min_size=2)
        if covering_number(query.subquery(subset)) <= threshold
    ]
    sets_containing: dict[str, list[frozenset[str]]] = {
        name: [s for s in gamma_sets if name in s] for name in names
    }

    best: frozenset[str] | None = None
    for start in range(len(names)):
        rotation = names[start:] + names[:start]
        chosen: set[str] = set()
        for name in rotation:
            if all(not (s & chosen) for s in sets_containing[name]):
                chosen.add(name)
        candidate = frozenset(chosen)
        if len(candidate) < 2 or candidate == frozenset(names):
            continue
        if (best is None or len(candidate) > len(best)) and is_eps_good(
            query, candidate, eps
        ):
            best = candidate
    return best


def line_good_set(k: int, eps: Fraction) -> frozenset[str]:
    """Lemma 4.6's eps-good set for ``L_k``: every ``k_eps``-th atom."""
    from repro.core.bounds import k_eps as k_eps_of

    eps = Fraction(eps)
    step = k_eps_of(eps)
    return frozenset(f"S{j}" for j in range(1, k + 1, step))


def cycle_good_set(k: int, eps: Fraction) -> frozenset[str]:
    """Lemma 4.9's eps-good set for ``C_k``: atoms ``k_eps`` apart."""
    from repro.core.bounds import k_eps as k_eps_of

    eps = Fraction(eps)
    step = k_eps_of(eps)
    chosen = list(range(1, k + 1, step))
    # Wrap-around: the last chosen atom must stay >= step away from the
    # first along the cycle; drop it otherwise.
    while len(chosen) > 1 and (k - chosen[-1] + chosen[0]) < step:
        chosen.pop()
    return frozenset(f"S{j}" for j in chosen)
