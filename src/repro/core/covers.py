"""Fractional vertex covers, edge packings and ``tau*`` (Figure 1).

The two dual LPs of Figure 1 in the paper::

    Vertex covering LP                 Edge packing LP
    min  sum_i v_i                     max  sum_j u_j
    s.t. sum_{i: x_i in vars(S_j)}     s.t. sum_{j: x_i in vars(S_j)}
              v_i >= 1   for all j              u_j <= 1   for all i
         v_i >= 0                           u_j >= 0

share the optimal value ``tau*(q)`` -- the *fractional covering number*
-- by LP strong duality.  Theorem 1.1 turns ``tau*`` into the one-round
space exponent ``eps = 1 - 1/tau*``; Proposition 3.2 turns the optimal
cover itself into HyperCube share exponents.

Everything here is exact: solutions are :class:`fractions.Fraction`
vectors produced by the rational simplex in :mod:`repro.lp`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core.query import ConjunctiveQuery, QueryError
from repro.lp import LinearProgram


def vertex_cover_program(query: ConjunctiveQuery) -> LinearProgram:
    """Build the vertex covering LP of Figure 1 (left)."""
    lp = LinearProgram(maximize=False)
    for variable in query.variables:
        lp.add_variable(variable)
    for atom in query.atoms:
        lp.add_constraint(
            {variable: 1 for variable in atom.variable_set},
            ">=",
            1,
            name=f"cover[{atom.name}]",
        )
    lp.set_objective({variable: 1 for variable in query.variables})
    return lp


def edge_packing_program(query: ConjunctiveQuery) -> LinearProgram:
    """Build the edge packing LP of Figure 1 (right), the dual LP."""
    lp = LinearProgram(maximize=True)
    for atom in query.atoms:
        lp.add_variable(atom.name)
    for variable in query.variables:
        lp.add_constraint(
            {atom.name: 1 for atom in query.atoms_of(variable)},
            "<=",
            1,
            name=f"pack[{variable}]",
        )
    lp.set_objective({atom.name: 1 for atom in query.atoms})
    return lp


def fractional_vertex_cover(query: ConjunctiveQuery) -> dict[str, Fraction]:
    """An optimal fractional vertex cover ``v`` (by variable name)."""
    solution = vertex_cover_program(query).solve()
    if not solution.is_optimal:  # pragma: no cover - covering LPs are feasible
        raise QueryError(f"vertex cover LP not optimal: {solution.status}")
    return dict(solution.values)


def fractional_edge_packing(query: ConjunctiveQuery) -> dict[str, Fraction]:
    """An optimal fractional edge packing ``u`` (by atom name)."""
    solution = edge_packing_program(query).solve()
    if not solution.is_optimal:  # pragma: no cover - packing LPs are feasible
        raise QueryError(f"edge packing LP not optimal: {solution.status}")
    return dict(solution.values)


def covering_number(query: ConjunctiveQuery) -> Fraction:
    """The fractional covering number ``tau*(q)`` (exact)."""
    solution = vertex_cover_program(query).solve()
    if not solution.is_optimal:  # pragma: no cover
        raise QueryError(f"vertex cover LP not optimal: {solution.status}")
    assert solution.objective is not None
    return solution.objective


def space_exponent(query: ConjunctiveQuery) -> Fraction:
    """The one-round space exponent ``eps(q) = 1 - 1/tau*(q)``.

    Theorem 1.1: over matching databases, one-round MPC(eps) computes
    ``q`` iff ``eps >= 1 - 1/tau*(q)``.  The result is an exact
    fraction in ``[0, 1)``.

    Note:
        The paper's lower bound assumes no unary atoms (a unary
        matching relation is the constant set ``[n]``); the value is
        still returned for such queries but only the upper-bound
        direction applies to them.
    """
    tau = covering_number(query)
    return 1 - Fraction(1, 1) / tau


@dataclass(frozen=True)
class CoverAnalysis:
    """Joint analysis of the two LPs of Figure 1 for one query.

    Attributes:
        tau_star: the fractional covering number (primal == dual value).
        vertex_cover: an optimal fractional vertex cover.
        edge_packing: an optimal fractional edge packing.
        cover_is_tight: True when every packing inequality (3) holds
            with equality under ``edge_packing``.
        packing_is_tight: True when every covering inequality (2) holds
            with equality under ``vertex_cover``.
        space_exponent: ``1 - 1/tau_star``.
    """

    tau_star: Fraction
    vertex_cover: dict[str, Fraction]
    edge_packing: dict[str, Fraction]
    cover_is_tight: bool
    packing_is_tight: bool
    space_exponent: Fraction


def analyze_covers(query: ConjunctiveQuery) -> CoverAnalysis:
    """Solve both LPs, check strong duality and tightness.

    Raises:
        QueryError: if the primal and dual optima disagree, which with
            exact arithmetic would indicate a solver defect.
    """
    cover_solution = vertex_cover_program(query).solve()
    packing_solution = edge_packing_program(query).solve()
    if not (cover_solution.is_optimal and packing_solution.is_optimal):
        raise QueryError("cover/packing LP failed to solve")  # pragma: no cover
    if cover_solution.objective != packing_solution.objective:
        raise QueryError(  # pragma: no cover - guarded by exactness
            "strong duality violated: "
            f"{cover_solution.objective} != {packing_solution.objective}"
        )
    cover = dict(cover_solution.values)
    packing = dict(packing_solution.values)

    packing_tight = all(
        sum(
            (cover[variable] for variable in atom.variable_set),
            start=Fraction(0),
        )
        == 1
        for atom in query.atoms
    )
    cover_tight = all(
        sum(
            (packing[atom.name] for atom in query.atoms_of(variable)),
            start=Fraction(0),
        )
        == 1
        for variable in query.variables
    )
    tau = cover_solution.objective
    assert tau is not None
    return CoverAnalysis(
        tau_star=tau,
        vertex_cover=cover,
        edge_packing=packing,
        cover_is_tight=cover_tight,
        packing_is_tight=packing_tight,
        space_exponent=1 - Fraction(1, 1) / tau,
    )


def is_fractional_vertex_cover(
    query: ConjunctiveQuery, cover: dict[str, Fraction]
) -> bool:
    """Check feasibility of an arbitrary vertex-cover candidate."""
    if any(value < 0 for value in cover.values()):
        return False
    return all(
        sum(
            (cover.get(variable, Fraction(0)) for variable in atom.variable_set),
            start=Fraction(0),
        )
        >= 1
        for atom in query.atoms
    )


def is_fractional_edge_packing(
    query: ConjunctiveQuery, packing: dict[str, Fraction]
) -> bool:
    """Check feasibility of an arbitrary edge-packing candidate."""
    if any(value < 0 for value in packing.values()):
        return False
    return all(
        sum(
            (
                packing.get(atom.name, Fraction(0))
                for atom in query.atoms_of(variable)
            ),
            start=Fraction(0),
        )
        <= 1
        for variable in query.variables
    )
