"""Multi-round query plans built from one-round operators (Section 4.1).

``Gamma^1_eps`` is the class of connected queries computable in one
round of MPC(eps) on matching databases: those with
``tau*(q) <= 1/(1 - eps)``.  ``Gamma^{r+1}_eps`` closes the class under
substitution: a query plan of depth ``r`` whose every operator lies in
``Gamma^1_eps`` computes the query in ``r`` rounds (Proposition 4.1).

:func:`build_plan` constructs such a plan for any connected query,
following the recipe of Lemma 4.3:

1. pick a hypergraph center ``v``;
2. cover every atom with a shortest atom-path starting at ``v``;
3. collapse each path bottom-up, greedily grouping consecutive
   segments while the group's subquery stays inside ``Gamma^1_eps``
   (the LP test reproduces the paper's group size
   ``k_eps = 2 * floor(1/(1-eps))`` automatically);
4. join all collapsed paths in one final round -- they all contain
   ``v``, so the final operator has ``tau* = 1`` (Corollary 3.10).

The resulting plan depth matches the paper's upper bound
``ceil(log_{k_eps} rad(q)) + 1`` (tree-like queries), and the executor
in :mod:`repro.algorithms.multiround` runs it on the MPC simulator one
HyperCube round per level.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache

from repro.core.covers import covering_number
from repro.core.query import Atom, ConjunctiveQuery, QueryError


def gamma_one_threshold(eps: Fraction) -> Fraction:
    """The ``tau*`` budget of one round: ``1 / (1 - eps)``."""
    eps = Fraction(eps)
    if not 0 <= eps < 1:
        raise ValueError(f"space exponent must be in [0, 1), got {eps}")
    return 1 / (1 - eps)


def in_gamma_one(query: ConjunctiveQuery, eps: Fraction) -> bool:
    """Membership in ``Gamma^1_eps``: connected and tau* <= 1/(1-eps)."""
    return query.is_connected and covering_number(query) <= gamma_one_threshold(eps)


@dataclass(frozen=True)
class PlanStep:
    """One one-round operator: compute ``query`` into view ``output``.

    The step query's atoms refer to relations available at this round:
    base relations or views produced by earlier rounds.
    """

    output: str
    query: ConjunctiveQuery


@dataclass(frozen=True)
class PlanRound:
    """All operators executed in one communication round."""

    steps: tuple[PlanStep, ...]


@dataclass(frozen=True)
class QueryPlan:
    """A depth-``r`` plan: ``r`` rounds of one-round operators.

    Attributes:
        query: the query the plan computes.
        rounds: the rounds, in execution order.
        output: the view name holding the final answer.
        eps: the space exponent the plan was built for.
    """

    query: ConjunctiveQuery
    rounds: tuple[PlanRound, ...]
    output: str
    eps: Fraction

    @property
    def depth(self) -> int:
        """Number of communication rounds."""
        return len(self.rounds)

    def operator_queries(self) -> tuple[ConjunctiveQuery, ...]:
        """All operator queries across all rounds (for validation)."""
        return tuple(
            step.query for round_ in self.rounds for step in round_.steps
        )


def validate_plan(plan: QueryPlan) -> None:
    """Check the structural invariants of Proposition 4.1.

    * every operator query is connected and lies in ``Gamma^1_eps``;
    * every operator references only relations available at its round;
    * the final output is produced by the last round.

    Raises:
        QueryError: on any violation.
    """
    available = {atom.name for atom in plan.query.atoms}
    produced: set[str] = set()
    for round_index, round_ in enumerate(plan.rounds):
        for step in round_.steps:
            for atom in step.query.atoms:
                if atom.name not in available:
                    raise QueryError(
                        f"round {round_index}: operator {step.output!r} uses "
                        f"unavailable relation {atom.name!r}"
                    )
            if not in_gamma_one(step.query, plan.eps):
                raise QueryError(
                    f"round {round_index}: operator {step.output!r} "
                    f"not in Gamma^1_eps (tau* = "
                    f"{covering_number(step.query)}, eps = {plan.eps})"
                )
            if step.output in available:
                raise QueryError(
                    f"round {round_index}: duplicate view {step.output!r}"
                )
            produced.add(step.output)
        available |= {step.output for step in round_.steps}
    if plan.output not in produced and plan.depth > 0:
        raise QueryError(f"plan never produces output {plan.output!r}")


# ---------------------------------------------------------------------------
# plan construction (Lemma 4.3)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Segment:
    """A relation usable as a plan-operator input: name + variables."""

    name: str
    variables: tuple[str, ...]

    def as_atom(self) -> Atom:
        return Atom(self.name, self.variables)


def _segment_query(segments: tuple[_Segment, ...]) -> ConjunctiveQuery:
    return ConjunctiveQuery(
        tuple(segment.as_atom() for segment in segments), name="op"
    )


def build_plan(query: ConjunctiveQuery, eps: Fraction | float | int) -> QueryPlan:
    """Build a multi-round MPC(eps) plan for a connected query.

    The Lemma 4.3 construction is rooted at a hypergraph node; the
    root determines the path decomposition and hence the depth (a
    chain query rooted at an endpoint collapses in
    ``ceil(log_{k_eps} k)`` rounds with no final join, while rooting
    at the center wastes one round).  We build a candidate plan per
    root and keep the shallowest.

    Args:
        query: a connected full conjunctive query.
        eps: the space exponent budget (exact fractions recommended).

    Returns:
        A validated :class:`QueryPlan` whose depth matches Lemma 4.3's
        bound for tree-like queries (and beats it where rooting
        smartly can).

    Raises:
        QueryError: if the query is disconnected.
    """
    eps = Fraction(eps)
    if not query.is_connected:
        raise QueryError("plans require a connected query")
    if in_gamma_one(query, eps):
        plan = QueryPlan(
            query=query,
            rounds=(
                PlanRound(steps=(PlanStep(output="answer", query=query),)),
            ),
            output="answer",
            eps=eps,
        )
        validate_plan(plan)
        return plan

    best: QueryPlan | None = None
    for root in query.variables:
        candidate = _build_plan_rooted(query, eps, root)
        if best is None or candidate.depth < best.depth:
            best = candidate
    assert best is not None
    validate_plan(best)
    return best


def _build_plan_rooted(
    query: ConjunctiveQuery, eps: Fraction, center: str
) -> QueryPlan:
    """The Lemma 4.3 construction rooted at ``center``."""
    paths = _cover_paths(query, center)

    # Collapse all paths level by level; identical groups across paths
    # are computed once (shared-prefix deduplication).
    threshold = gamma_one_threshold(eps)
    sequences: list[list[_Segment]] = [
        [
            _Segment(name, query.atom(name).variables)
            for name in path
        ]
        for path in paths
    ]
    rounds: list[PlanRound] = []
    view_counter = 0
    while any(len(sequence) > 1 for sequence in sequences):
        step_cache: dict[tuple[_Segment, ...], PlanStep] = {}
        next_sequences: list[list[_Segment]] = []
        for sequence in sequences:
            if len(sequence) == 1:
                next_sequences.append(sequence)
                continue
            new_sequence: list[_Segment] = []
            for group in _greedy_groups(tuple(sequence), threshold):
                if len(group) == 1:
                    new_sequence.append(group[0])
                    continue
                if group not in step_cache:
                    view_counter += 1
                    step_cache[group] = PlanStep(
                        output=f"V{view_counter}",
                        query=_segment_query(group),
                    )
                step = step_cache[group]
                new_sequence.append(
                    _Segment(step.output, _ordered_union(group))
                )
            next_sequences.append(new_sequence)
        rounds.append(PlanRound(steps=tuple(step_cache.values())))
        sequences = next_sequences

    # Final round: join all path views; each contains the center.
    final_segments = tuple(
        dict.fromkeys(sequence[0] for sequence in sequences)
    )
    if len(final_segments) == 1:
        output = final_segments[0].name
    else:
        output = "answer"
        rounds.append(
            PlanRound(
                steps=(
                    PlanStep(
                        output=output,
                        query=_segment_query(final_segments),
                    ),
                )
            )
        )
    return QueryPlan(
        query=query, rounds=tuple(rounds), output=output, eps=eps
    )


def _cover_paths(
    query: ConjunctiveQuery, center: str
) -> tuple[tuple[str, ...], ...]:
    """Shortest atom-paths from ``center`` covering every atom.

    Paths that are prefixes of other paths are dropped (their atoms are
    already covered).
    """
    hypergraph = query.hypergraph
    paths = {
        hypergraph.shortest_edge_path(center, atom.name)
        for atom in query.atoms
    }
    return tuple(
        sorted(
            (
                path
                for path in paths
                if not any(
                    other != path and other[: len(path)] == path
                    for other in paths
                )
            ),
        )
    )


def _greedy_groups(
    sequence: tuple[_Segment, ...], threshold: Fraction
) -> tuple[tuple[_Segment, ...], ...]:
    """Partition a path into maximal consecutive ``Gamma^1`` groups."""
    groups: list[tuple[_Segment, ...]] = []
    start = 0
    while start < len(sequence):
        end = start + 1
        while end < len(sequence):
            candidate = sequence[start : end + 1]
            subquery = _segment_query(candidate)
            if (
                subquery.is_connected
                and _cached_tau(candidate) <= threshold
            ):
                end += 1
            else:
                break
        groups.append(sequence[start:end])
        start = end
    return tuple(groups)


@lru_cache(maxsize=4096)
def _cached_tau(segments: tuple[_Segment, ...]) -> Fraction:
    return covering_number(_segment_query(segments))


def _ordered_union(segments: tuple[_Segment, ...]) -> tuple[str, ...]:
    seen: dict[str, None] = {}
    for segment in segments:
        for variable in segment.variables:
            seen.setdefault(variable, None)
    return tuple(seen)
