"""The characteristic ``chi(q)`` and query contraction (Section 2.3).

For a query with ``k`` variables, ``l`` atoms, total arity ``a`` and
``c`` connected components, the characteristic is::

    chi(q) = k + l - a - c

Lemma 2.1 establishes that chi is additive over components, subtracts
under contraction, and is always <= 0; a connected query with
``chi(q) = 0`` is *tree-like*.  Tree-like queries are exactly the ones
with matching upper/lower round bounds in Section 4, and
``E[|q(I)|] = n^(1 + chi(q))`` on random matching databases
(Lemma 3.4), so chi is also the expected-output-size exponent.

Contraction ``q/M`` collapses each connected component of the atom set
``M`` to a single variable and deletes the atoms of ``M``; it is the
step that peels one communication round off a multi-round algorithm in
the lower-bound argument of Section 4.2.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.query import Atom, ConjunctiveQuery, QueryError


def characteristic(query: ConjunctiveQuery) -> int:
    """``chi(q) = k + l - a - c`` (Section 2.3).

    Always <= 0 (Lemma 2.1(c)); equal to 0 iff every connected
    component is tree-like.
    """
    k = query.num_variables
    ell = query.num_atoms
    a = query.total_arity
    c = len(query.connected_components)
    return k + ell - a - c


def is_tree_like(query: ConjunctiveQuery) -> bool:
    """True when ``q`` is connected and ``chi(q) = 0``.

    Every connected subquery of a tree-like query is also tree-like,
    which Proposition 4.7 exploits.
    """
    return query.is_connected and characteristic(query) == 0


def contract(query: ConjunctiveQuery, atom_names: Iterable[str]) -> ConjunctiveQuery:
    """The contracted query ``q/M`` (Section 2.3).

    Each connected component of ``M`` merges its variables into a
    single representative (the earliest in head order), and the atoms
    of ``M`` disappear.  For example (the paper's running example)::

        L5 / {S2, S4} == S1(x0,x1), S3(x1,x3), S5(x3,x5)

    Args:
        query: the query to contract.
        atom_names: the atom set ``M`` (relation names).

    Raises:
        QueryError: if ``M`` contains every atom of the query (the
            result would have an empty body) or names unknown atoms.
    """
    contracted = set(atom_names)
    known = {atom.name for atom in query.atoms}
    unknown = contracted - known
    if unknown:
        raise QueryError(f"unknown atoms in M: {sorted(unknown)}")
    if contracted >= known:
        raise QueryError("cannot contract every atom of the query")
    if not contracted:
        return query

    order = {variable: i for i, variable in enumerate(query.head)}
    mapping: dict[str, str] = {}
    for component in query.hypergraph.edge_components(contracted):
        merged_variables: set[str] = set()
        for atom_name in component:
            merged_variables |= query.atom(atom_name).variable_set
        representative = min(merged_variables, key=order.__getitem__)
        for variable in merged_variables:
            if variable != representative:
                mapping[variable] = representative

    surviving_atoms = tuple(
        atom.rename(mapping)
        for atom in query.atoms
        if atom.name not in contracted
    )
    head = tuple(
        variable
        for variable in query.head
        if variable not in mapping
        and any(
            variable in atom.variable_set for atom in surviving_atoms
        )
    )
    return ConjunctiveQuery(
        surviving_atoms, head=head, name=f"{query.name}/M"
    )
