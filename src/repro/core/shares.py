"""HyperCube share exponents and integer share allocation (Section 3.1).

Given an optimal fractional vertex cover ``v`` with value ``tau``, the
HC algorithm assigns each variable the *share exponent*
``e_i = v_i / tau`` (so ``sum_i e_i = 1``) and organises the ``p``
servers as a grid ``[p_1] x ... x [p_k]`` with ``p_i = p^{e_i}``.

Real servers come in integer quantities, so this module also solves
the rounding problem: find integers ``p_i >= 1`` with
``prod_i p_i <= p`` that track the ideal real-valued shares as closely
as possible.  We use a greedy ascent -- start from the floor and grow
the coordinate with the largest log-shortfall while the product still
fits -- which is how practical HyperCube implementations (e.g. Myria)
allocate shares.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping

from repro.core.covers import fractional_vertex_cover
from repro.core.query import ConjunctiveQuery, QueryError


def share_exponents(
    query: ConjunctiveQuery,
    cover: Mapping[str, Fraction] | None = None,
) -> dict[str, Fraction]:
    """Exact share exponents ``e_i = v_i / tau`` (Proposition 3.2).

    Args:
        query: the query being analysed.
        cover: an optional fractional vertex cover; defaults to an
            optimal one.  Passing a sub-optimal cover yields the share
            exponents for *that* cover (useful in ablations).

    Returns:
        Mapping from variable name to an exact exponent; the exponents
        sum to exactly 1.
    """
    if cover is None:
        cover = fractional_vertex_cover(query)
    tau = sum((Fraction(value) for value in cover.values()), start=Fraction(0))
    if tau <= 0:
        raise QueryError("vertex cover has non-positive total weight")
    return {
        variable: Fraction(cover.get(variable, Fraction(0))) / tau
        for variable in query.variables
    }


@dataclass(frozen=True)
class ShareAllocation:
    """An integer share vector for a server grid.

    Attributes:
        shares: integer share per variable, each >= 1.
        total_servers: the requested number of servers ``p``.
        used_servers: ``prod_i shares[i]`` -- the servers actually
            addressed by the grid (always <= ``total_servers``).
        exponents: the ideal (fractional) share exponents targeted.
    """

    shares: dict[str, int]
    total_servers: int
    used_servers: int
    exponents: dict[str, Fraction]

    def dimensions(self) -> tuple[int, ...]:
        """Grid dimensions in variable order of ``shares``."""
        return tuple(self.shares.values())


def allocate_integer_shares(
    exponents: Mapping[str, Fraction],
    p: int,
) -> ShareAllocation:
    """Round ideal shares ``p^{e_i}`` to an integer grid with prod <= p.

    Greedy ascent: start at ``p_i = max(1, floor(p^{e_i}))`` and
    repeatedly increment (by multiplying toward the ideal) the
    coordinate whose log-space shortfall ``e_i log p - log p_i`` is
    largest, while the grid still fits within ``p`` servers.

    Args:
        exponents: share exponents summing to at most 1.
        p: number of available servers (>= 1).

    Returns:
        A :class:`ShareAllocation` with ``used_servers <= p``.
    """
    if p < 1:
        raise ValueError(f"need at least one server, got p={p}")
    total = sum(exponents.values(), start=Fraction(0))
    if total > 1:
        raise ValueError(f"share exponents sum to {total} > 1")

    log_p = math.log(p) if p > 1 else 0.0
    shares: dict[str, int] = {}
    for variable, exponent in exponents.items():
        ideal = math.exp(float(exponent) * log_p)
        shares[variable] = max(1, math.floor(ideal + 1e-9))

    def product() -> int:
        result = 1
        for value in shares.values():
            result *= value
        return result

    # The floor can overshoot only by rounding slack; shrink if needed.
    while product() > p:
        variable = max(
            shares,
            key=lambda name: math.log(shares[name])
            - float(exponents[name]) * log_p,
        )
        if shares[variable] == 1:  # pragma: no cover - defensive
            break
        shares[variable] -= 1

    # Greedy ascent toward the ideal exponents.
    improved = True
    while improved:
        improved = False
        candidates = sorted(
            shares,
            key=lambda name: float(exponents[name]) * log_p
            - math.log(shares[name]),
            reverse=True,
        )
        for variable in candidates:
            if exponents[variable] == 0:
                continue
            grown = product() // shares[variable] * (shares[variable] + 1)
            if grown <= p:
                shares[variable] += 1
                improved = True
                break

    return ShareAllocation(
        shares=dict(shares),
        total_servers=p,
        used_servers=product(),
        exponents=dict(exponents),
    )


def replication_factor(
    query: ConjunctiveQuery, shares: Mapping[str, int]
) -> dict[str, int]:
    """Per-atom replication ``prod_{i: x_i not in vars(S_j)} p_i``.

    Each tuple of ``S_j`` is sent to this many servers by the HC
    routing rule (Section 3.1); Proposition 3.2 bounds it by
    ``p^{1 - 1/tau}`` when the shares come from a vertex cover.
    """
    result: dict[str, int] = {}
    for atom in query.atoms:
        replication = 1
        for variable in query.variables:
            if variable not in atom.variable_set:
                replication *= shares.get(variable, 1)
        result[atom.name] = replication
    return result
