"""The quantitative one-round lower bound, as an executable formula.

Section 3.2 of the paper bounds the expected number of output tuples a
single server can *know* after one communication round.  The chain is:

1. Lemma 3.6: a server receiving a fraction ``f_j`` of the bits of a
   matching ``S_j`` knows (in expectation) at most ``f_j * n`` of its
   tuples.
2. The capacity constraint gives
   ``sum_j f_j (a_j - 1) <= c (a - l) / p^{1-eps}``.
3. Lemma 3.7 (via Friedgut on the extended query):
   ``E[|K_m(q)|] <= g_{q,c} * E[|q(I)|] / p^{(1-eps) tau*}`` with
   ``g_{q,c} = (c (a - l) / tau*)^{tau*}``.
4. A union bound over the ``p`` servers yields Theorem 3.3:
   the reported fraction is at most ``g_{q,c} / p^{(1-eps) tau* - 1}``.

This module computes each quantity so benchmarks can overlay the exact
theoretical ceiling on measured data, and tests can check the
internal consistency of the chain (e.g. the multi-round accounting of
Theorem 4.11 reuses ``g`` with ``c (r + 1)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core.covers import covering_number
from repro.core.query import ConjunctiveQuery, QueryError


def knowledge_fraction_budget(
    query: ConjunctiveQuery, p: int, eps: Fraction | float, c: float = 1.0
) -> float:
    """The message-budget constraint ``sum_j f_j (a_j - 1)`` <= this.

    Equals ``c (a - l) / p^{1-eps}``: the total fraction of input bits
    a single server may receive (Section 3.2.2), where ``a`` is total
    arity and ``l`` the number of atoms.
    """
    if p < 1:
        raise QueryError(f"need p >= 1, got {p}")
    a = query.total_arity
    ell = query.num_atoms
    if a <= ell:
        raise QueryError(
            "bit accounting needs arity >= 2 atoms (unary relations "
            "are excluded by the paper's standing assumption)"
        )
    return c * (a - ell) / float(p) ** float(1 - Fraction(eps))


def g_constant(query: ConjunctiveQuery, c: float = 1.0) -> float:
    """The constant ``g_{q,c} = (c (a - l) / tau*)^{tau*}`` of Lemma 3.7."""
    tau = covering_number(query)
    a = query.total_arity
    ell = query.num_atoms
    return (c * (a - ell) / float(tau)) ** float(tau)


@dataclass(frozen=True)
class KnowledgeBound:
    """The Lemma 3.7 / Theorem 3.3 quantities for one configuration.

    Attributes:
        tau_star: the fractional covering number.
        per_server_fraction: max expected fraction of answers known by
            ONE server: ``g_{q,c} / p^{(1-eps) tau*}``.
        all_servers_fraction: Theorem 3.3's union bound over p servers:
            ``g_{q,c} / p^{(1-eps) tau* - 1}`` (capped at 1).
        g: the constant ``g_{q,c}``.
    """

    tau_star: Fraction
    per_server_fraction: float
    all_servers_fraction: float
    g: float


def knowledge_bound(
    query: ConjunctiveQuery,
    p: int,
    eps: Fraction | float,
    c: float = 1.0,
) -> KnowledgeBound:
    """Evaluate the full Theorem 3.3 ceiling for (q, p, eps, c).

    Only meaningful in the sub-threshold regime
    ``eps < 1 - 1/tau*(q)``; above it the ceiling exceeds 1 and is
    capped (one round genuinely suffices there).
    """
    if p < 1:
        raise QueryError(f"need p >= 1, got {p}")
    eps = Fraction(eps)
    tau = covering_number(query)
    g = g_constant(query, c)
    exponent = float((1 - eps) * tau)
    per_server = min(1.0, g / float(p) ** exponent)
    overall = min(1.0, g / float(p) ** (exponent - 1))
    return KnowledgeBound(
        tau_star=tau,
        per_server_fraction=per_server,
        all_servers_fraction=overall,
        g=g,
    )


def multiround_g_constant(
    query: ConjunctiveQuery, c: float, rounds: int
) -> float:
    """Theorem 4.11's per-stage constant ``g_{q', c(r+1)}``.

    Each peeled round lets a server accumulate up to ``r + 1`` times
    the single-round budget, so the constant inflates accordingly.
    """
    if rounds < 0:
        raise QueryError(f"need rounds >= 0, got {rounds}")
    return g_constant(query, c * (rounds + 1))


def failure_probability_floor(
    query: ConjunctiveQuery, n: int, p: int, eps: Fraction | float
) -> float:
    """Corollary 3.5's failure probability ``(1 - o(1)) n^{chi(q)}``.

    For a deterministic-or-randomized one-round MPC(eps) algorithm
    below threshold, the failure probability on a random matching
    database is at least about ``n^{chi(q)}`` (1 for tree-like
    queries, 1/n for cycles, ...), with the ``1 - o(1)`` factor driven
    by the Theorem 3.3 fraction.
    """
    from repro.core.characteristic import characteristic

    if not query.is_connected:
        raise QueryError("Corollary 3.5 applies to connected queries")
    fraction = knowledge_bound(query, p, eps).all_servers_fraction
    chi = characteristic(query)
    return max(0.0, (1.0 - fraction)) * float(n) ** chi
