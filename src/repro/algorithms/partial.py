"""The below-threshold partial-answer algorithm (Proposition 3.11).

When a one-round algorithm is forced to run with ``eps`` *below* the
query's space exponent ``1 - 1/tau*``, Theorem 3.3 caps the expected
fraction of answers it can report at ``O(p^{-(tau*(1-eps)-1)})``.
Proposition 3.11 shows the cap is tight with this algorithm:

* give each variable the share ``p_i = p^{(1-eps) v_i}`` -- a virtual
  hypercube with ``P = p^{(1-eps) tau*} > p`` grid points;
* pick ``p`` of the ``P`` points uniformly at random, one per real
  server;
* route tuples by HC hashing, but only to chosen points;
* each server reports the answers it can assemble.

A potential answer survives iff its grid point was chosen, which
happens with probability ``p / P = p^{1-(1-eps) tau*}``; per-server
load stays ``O(n / p^{1-eps})`` because the cover inequality gives
``prod_{i in vars(S_j)} p_i >= p^{1-eps}``.

The experiment driver measures the *measured* reported fraction against
the theoretical decay as ``p`` grows -- the paper's one-round lower
bound made visible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping

from repro.backend import resolve_backend
from repro.algorithms.localjoin import evaluate_query
from repro.core.covers import covering_number, fractional_vertex_cover
from repro.core.query import ConjunctiveQuery
from repro.data.columnar import columnar_database
from repro.data.database import Database
from repro.engine import (
    GridSpec,
    HashRoute,
    RemapRanks,
    RoundEngine,
    RoundProfiler,
    collect_answers,
)
from repro.mpc.model import MPCConfig
from repro.mpc.routing import HashFamily, grid_size
from repro.mpc.simulator import MPCSimulator
from repro.mpc.stats import SimulationReport


@dataclass(frozen=True)
class PartialResult:
    """Outcome of a Proposition 3.11 run.

    Attributes:
        answers: the answers actually reported (a subset of the truth).
        total_answers: |q(I)|, for computing the reported fraction.
        reported_fraction: ``len(answers) / max(1, total_answers)``.
        theory_fraction: the predicted ``p^{1-(1-eps) tau*}``.
        virtual_grid_points: the ``P`` of the virtual hypercube.
        report: communication statistics.
    """

    answers: tuple[tuple[int, ...], ...]
    total_answers: int
    reported_fraction: float
    theory_fraction: float
    virtual_grid_points: int
    report: SimulationReport


def run_partial_hypercube(
    query: ConjunctiveQuery,
    database: Database,
    p: int,
    eps: Fraction | float,
    seed: int = 0,
    cover: Mapping[str, Fraction] | None = None,
    capacity_c: float = 4.0,
    backend: str | None = None,
    profiler: RoundProfiler | None = None,
) -> PartialResult:
    """Run the Proposition 3.11 algorithm with budget ``eps``.

    On the round engine this is HC routing over the *virtual* grid
    wrapped in a :class:`~repro.engine.steps.RemapRanks` step that
    keeps only the sampled grid points.

    Args:
        query: a connected query with ``eps < 1 - 1/tau*(q)`` (running
            at or above the space exponent degenerates to plain HC and
            reports everything).
        database: instances for the query's vocabulary.
        p: number of real servers.
        eps: the (insufficient) space exponent to respect.
        seed: drives both the hash family and the grid-point sample.
        cover: optional vertex cover (defaults to optimal).
        capacity_c: capacity constant for accounting.
        backend: ``"pure"`` (default), ``"numpy"`` or ``"auto"``.
    """
    eps = Fraction(eps)
    if cover is None:
        cover = fractional_vertex_cover(query)
    tau = covering_number(query)

    # Virtual shares p_i = ceil(p^{(1-eps) v_i}).
    shares: dict[str, int] = {}
    for variable in query.variables:
        exponent = float((1 - eps) * cover.get(variable, Fraction(0)))
        shares[variable] = max(1, round(float(p) ** exponent))
    variable_order = query.variables
    dimensions = tuple(shares[v] for v in variable_order)
    virtual_points = grid_size(dimensions)

    rng = random.Random(seed)
    if virtual_points <= p:
        chosen = list(range(virtual_points))
    else:
        chosen = rng.sample(range(virtual_points), p)
    point_to_server = {point: index for index, point in enumerate(chosen)}

    grid = GridSpec.from_shares(variable_order, shares, HashFamily(seed))
    config = MPCConfig(
        p=p, eps=eps, c=capacity_c, backend=resolve_backend(backend)
    )
    backend = config.backend
    simulator = MPCSimulator(
        config, input_bits=database.total_bits, enforce_capacity=False
    )
    engine = RoundEngine(simulator, profiler=profiler)

    steps = [
        RemapRanks(
            relation=atom.name,
            inner=HashRoute(relation=atom.name, atom=atom, grid=grid),
            mapping=point_to_server,
            virtual_size=virtual_points,
        )
        for atom in query.atoms
    ]
    engine.run_round(steps, columnar_database(database, backend))

    answers, _ = collect_answers(
        query, simulator, range(min(p, len(chosen))), backend,
        profiler=profiler,
    )
    reported = set(answers)

    truth = evaluate_query(
        query,
        {name: database[name].tuples for name in database.relations},
    )
    total = len(truth)
    theory = min(1.0, p / virtual_points) if virtual_points else 1.0
    return PartialResult(
        answers=tuple(sorted(reported)),
        total_answers=total,
        reported_fraction=len(reported) / total if total else 0.0,
        theory_fraction=theory,
        virtual_grid_points=virtual_points,
        report=simulator.report,
    )
