"""The below-threshold partial-answer algorithm (Proposition 3.11).

When a one-round algorithm is forced to run with ``eps`` *below* the
query's space exponent ``1 - 1/tau*``, Theorem 3.3 caps the expected
fraction of answers it can report at ``O(p^{-(tau*(1-eps)-1)})``.
Proposition 3.11 shows the cap is tight with this algorithm:

* give each variable the share ``p_i = p^{(1-eps) v_i}`` -- a virtual
  hypercube with ``P = p^{(1-eps) tau*} > p`` grid points;
* pick ``p`` of the ``P`` points uniformly at random, one per real
  server;
* route tuples by HC hashing, but only to chosen points;
* each server reports the answers it can assemble.

A potential answer survives iff its grid point was chosen, which
happens with probability ``p / P = p^{1-(1-eps) tau*}``; per-server
load stays ``O(n / p^{1-eps})`` because the cover inequality gives
``prod_{i in vars(S_j)} p_i >= p^{1-eps}``.

The experiment driver measures the *measured* reported fraction against
the theoretical decay as ``p`` grows -- the paper's one-round lower
bound made visible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping

from repro.backend import resolve_backend
from repro.algorithms.localjoin import evaluate_query
from repro.core.covers import fractional_vertex_cover
from repro.core.query import ConjunctiveQuery
from repro.data.database import Database
from repro.engine import (
    CollectAnswers,
    GridSpec,
    HashRoute,
    Plan,
    PlanRound,
    PlanSignature,
    RemapRanks,
    RoundProfiler,
    execute_plan,
)
from repro.mpc.routing import HashFamily, grid_size
from repro.mpc.stats import SimulationReport


@dataclass(frozen=True)
class PartialResult:
    """Outcome of a Proposition 3.11 run.

    Attributes:
        answers: the answers actually reported (a subset of the truth).
        total_answers: |q(I)|, for computing the reported fraction.
        reported_fraction: ``len(answers) / max(1, total_answers)``.
        theory_fraction: the predicted ``p^{1-(1-eps) tau*}``.
        virtual_grid_points: the ``P`` of the virtual hypercube.
        report: communication statistics.
    """

    answers: tuple[tuple[int, ...], ...]
    total_answers: int
    reported_fraction: float
    theory_fraction: float
    virtual_grid_points: int
    report: SimulationReport


def compile_partial_hypercube(
    query: ConjunctiveQuery,
    p: int,
    eps: Fraction | float,
    seed: int = 0,
    cover: Mapping[str, Fraction] | None = None,
    capacity_c: float = 4.0,
    backend: str | None = None,
) -> Plan:
    """Compile the Proposition 3.11 round into an immutable plan.

    The virtual grid and the sampled grid points are both functions of
    (query, p, eps, seed) alone -- the sample is drawn here, so a
    cached plan always keeps the same surviving grid points.  The
    virtual point count rides along as the plan's allocation-free
    metadata via the steps' ``virtual_size``.
    """
    eps = Fraction(eps)
    if cover is None:
        cover = fractional_vertex_cover(query)

    # Virtual shares p_i = ceil(p^{(1-eps) v_i}).
    shares: dict[str, int] = {}
    for variable in query.variables:
        exponent = float((1 - eps) * cover.get(variable, Fraction(0)))
        shares[variable] = max(1, round(float(p) ** exponent))
    variable_order = query.variables
    dimensions = tuple(shares[v] for v in variable_order)
    virtual_points = grid_size(dimensions)

    rng = random.Random(seed)
    if virtual_points <= p:
        chosen = list(range(virtual_points))
    else:
        chosen = rng.sample(range(virtual_points), p)
    point_to_server = {point: index for index, point in enumerate(chosen)}

    grid = GridSpec.from_shares(variable_order, shares, HashFamily(seed))
    steps = tuple(
        RemapRanks(
            relation=atom.name,
            inner=HashRoute(relation=atom.name, atom=atom, grid=grid),
            mapping=point_to_server,
            virtual_size=virtual_points,
        )
        for atom in query.atoms
    )
    return Plan(
        signature=PlanSignature(
            algorithm="partial",
            query_text=str(query),
            eps=eps,
            p=p,
            backend=resolve_backend(backend),
            seed=seed,
            capacity_c=capacity_c,
            enforce_capacity=False,
        ),
        rounds=(PlanRound(steps=steps),),
        finalize=CollectAnswers(
            query=query, workers=min(p, len(chosen))
        ),
    )


def run_partial_hypercube(
    query: ConjunctiveQuery,
    database: Database,
    p: int,
    eps: Fraction | float,
    seed: int = 0,
    cover: Mapping[str, Fraction] | None = None,
    capacity_c: float = 4.0,
    backend: str | None = None,
    profiler: RoundProfiler | None = None,
) -> PartialResult:
    """Run the Proposition 3.11 algorithm with budget ``eps``.

    On the round engine this is HC routing over the *virtual* grid
    wrapped in a :class:`~repro.engine.steps.RemapRanks` step that
    keeps only the sampled grid points.

    Args:
        query: a connected query with ``eps < 1 - 1/tau*(q)`` (running
            at or above the space exponent degenerates to plain HC and
            reports everything).
        database: instances for the query's vocabulary.
        p: number of real servers.
        eps: the (insufficient) space exponent to respect.
        seed: drives both the hash family and the grid-point sample.
        cover: optional vertex cover (defaults to optimal).
        capacity_c: capacity constant for accounting.
        backend: ``"pure"`` (default), ``"numpy"`` or ``"auto"``.

    .. deprecated:: 1.1
        Application code should use :func:`repro.connect` with
        ``allow_partial=True`` and a pinned ``eps``.
    """
    from repro.algorithms.registry import warn_legacy_entry_point

    warn_legacy_entry_point("run_partial_hypercube")
    plan = compile_partial_hypercube(
        query,
        p,
        eps,
        seed=seed,
        cover=cover,
        capacity_c=capacity_c,
        backend=backend,
    )
    execution = execute_plan(plan, database, profiler=profiler)
    reported = set(execution.answers)
    virtual_points = plan.rounds[0].steps[0].virtual_size

    truth = evaluate_query(
        query,
        {name: database[name].tuples for name in database.relations},
    )
    total = len(truth)
    theory = min(1.0, p / virtual_points) if virtual_points else 1.0
    return PartialResult(
        answers=tuple(sorted(reported)),
        total_answers=total,
        reported_fraction=len(reported) / total if total else 0.0,
        theory_fraction=theory,
        virtual_grid_points=virtual_points,
        report=execution.report,
    )
