"""Exact in-memory conjunctive-query evaluation.

Workers in the MPC model have unlimited local compute (Section 2.1);
what they do locally after a communication round is evaluate the query
on whatever tuples they received.  This module is that local engine: a
straightforward index-backed backtracking join.

The evaluator:

* orders atoms greedily (smallest relation first, then always an atom
  sharing a bound variable, to keep intermediate bindings selective);
* builds, per atom, a hash index keyed by the positions already bound
  when the atom is reached;
* handles repeated variables within an atom (they act as equality
  selections), which arise from contracted queries;
* returns answers as sorted tuples in the query's head-variable order.

For the matching databases of the paper every relation has ``n``
tuples and joins are key-key, so evaluation is near-linear; the
evaluator is nevertheless fully general and is cross-checked against
brute-force enumeration in the tests.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.core.query import Atom, ConjunctiveQuery

Rows = Sequence[tuple[int, ...]]


def evaluate_query(
    query: ConjunctiveQuery,
    relations: Mapping[str, Iterable[Sequence[int]]],
) -> tuple[tuple[int, ...], ...]:
    """All answers of ``query`` over the given relation instances.

    Args:
        query: a full conjunctive query.
        relations: rows per relation name; every atom of the query
            must be present (missing relations are treated as empty).

    Returns:
        Sorted, duplicate-free answer tuples in head-variable order.
    """
    instances: dict[str, list[tuple[int, ...]]] = {}
    for atom in query.atoms:
        rows = relations.get(atom.name, ())
        instances[atom.name] = [tuple(row) for row in rows]
        if not instances[atom.name]:
            return ()

    order = _atom_order(query, instances)
    indexes = _build_indexes(query, order, instances)

    answers: set[tuple[int, ...]] = set()
    binding: dict[str, int] = {}

    def extend(depth: int) -> None:
        if depth == len(order):
            answers.add(tuple(binding[v] for v in query.head))
            return
        atom = order[depth]
        bound_positions, index = indexes[depth]
        key = tuple(binding[atom.variables[i]] for i in bound_positions)
        for row in index.get(key, ()):
            assigned: list[str] = []
            consistent = True
            for position, variable in enumerate(atom.variables):
                value = row[position]
                if variable in binding:
                    if binding[variable] != value:
                        consistent = False
                        break
                else:
                    binding[variable] = value
                    assigned.append(variable)
            if consistent:
                extend(depth + 1)
            for variable in assigned:
                del binding[variable]

    extend(0)
    return tuple(sorted(answers))


def count_answers(
    query: ConjunctiveQuery,
    relations: Mapping[str, Iterable[Sequence[int]]],
) -> int:
    """Convenience: the number of answers (|q(I)|)."""
    return len(evaluate_query(query, relations))


def _atom_order(
    query: ConjunctiveQuery,
    instances: Mapping[str, list[tuple[int, ...]]],
) -> list[Atom]:
    """Greedy join order: smallest first, then stay connected."""
    remaining = list(query.atoms)
    remaining.sort(key=lambda atom: len(instances[atom.name]))
    order: list[Atom] = [remaining.pop(0)]
    bound: set[str] = set(order[0].variable_set)
    while remaining:
        connected = [
            atom for atom in remaining if atom.variable_set & bound
        ]
        pool = connected or remaining
        chosen = min(pool, key=lambda atom: len(instances[atom.name]))
        remaining.remove(chosen)
        order.append(chosen)
        bound |= chosen.variable_set
    return order


def _build_indexes(
    query: ConjunctiveQuery,
    order: Sequence[Atom],
    instances: Mapping[str, list[tuple[int, ...]]],
) -> list[tuple[tuple[int, ...], dict[tuple[int, ...], list[tuple[int, ...]]]]]:
    """Per-atom hash index on the positions bound before the atom.

    For each atom in join order, determine which of its positions hold
    variables bound by earlier atoms; index its rows by the values at
    those positions.  Rows violating intra-atom repeated-variable
    equality are dropped at build time.
    """
    indexes = []
    bound: set[str] = set()
    for atom in order:
        first_position: dict[str, int] = {}
        for position, variable in enumerate(atom.variables):
            first_position.setdefault(variable, position)
        bound_positions = tuple(
            first_position[variable]
            for variable in dict.fromkeys(atom.variables)
            if variable in bound
        )
        index: dict[tuple[int, ...], list[tuple[int, ...]]] = {}
        for row in instances[atom.name]:
            if any(
                row[position] != row[first_position[variable]]
                for position, variable in enumerate(atom.variables)
            ):
                continue
            key = tuple(row[i] for i in bound_positions)
            index.setdefault(key, []).append(row)
        indexes.append((bound_positions, index))
        bound |= atom.variable_set
    return indexes
