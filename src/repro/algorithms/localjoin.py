"""Exact in-memory conjunctive-query evaluation.

Workers in the MPC model have unlimited local compute (Section 2.1);
what they do locally after a communication round is evaluate the query
on whatever tuples they received.  This module is that local engine,
in two bit-identical flavours:

* :func:`evaluate_query` -- the reference path: a straightforward
  index-backed backtracking join over row tuples;
* :func:`evaluate_query_columnar` -- the vectorized path: a sort/
  searchsorted hash join over int64 column arrays (numpy backend),
  used by the columnar HyperCube executor;
* :func:`evaluate_query_table_segmented` -- the fleet-wide path: all
  ``p`` workers' fragments arrive as one pooled column set plus a
  segment (worker) id per row, and a single join pass with the
  segment id as the highest-order key component computes every
  worker's answers at once -- with direct-address (bincount) lookups
  replacing binary search where the pools are pre-sorted.

Both evaluators:

* order atoms greedily (smallest relation first, then always an atom
  sharing a bound variable, to keep intermediate bindings selective);
* handle repeated variables within an atom (they act as equality
  selections), which arise from contracted queries;
* return answers as sorted tuples in the query's head-variable order.

For the matching databases of the paper every relation has ``n``
tuples and joins are key-key, so evaluation is near-linear; the
evaluators are nevertheless fully general, cross-checked against
brute-force enumeration and against each other in the tests.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.backend import require_numpy
from repro.core.query import Atom, ConjunctiveQuery

Rows = Sequence[tuple[int, ...]]


def evaluate_query(
    query: ConjunctiveQuery,
    relations: Mapping[str, Iterable[Sequence[int]]],
) -> tuple[tuple[int, ...], ...]:
    """All answers of ``query`` over the given relation instances.

    Args:
        query: a full conjunctive query.
        relations: rows per relation name; every atom of the query
            must be present (missing relations are treated as empty).

    Returns:
        Sorted, duplicate-free answer tuples in head-variable order.
    """
    instances: dict[str, list[tuple[int, ...]]] = {}
    for atom in query.atoms:
        rows = relations.get(atom.name, ())
        instances[atom.name] = [tuple(row) for row in rows]
        if not instances[atom.name]:
            return ()

    order = _atom_order(query, instances)
    indexes = _build_indexes(query, order, instances)

    answers: set[tuple[int, ...]] = set()
    binding: dict[str, int] = {}

    def extend(depth: int) -> None:
        if depth == len(order):
            answers.add(tuple(binding[v] for v in query.head))
            return
        atom = order[depth]
        bound_positions, index = indexes[depth]
        key = tuple(binding[atom.variables[i]] for i in bound_positions)
        for row in index.get(key, ()):
            assigned: list[str] = []
            consistent = True
            for position, variable in enumerate(atom.variables):
                value = row[position]
                if variable in binding:
                    if binding[variable] != value:
                        consistent = False
                        break
                else:
                    binding[variable] = value
                    assigned.append(variable)
            if consistent:
                extend(depth + 1)
            for variable in assigned:
                del binding[variable]

    extend(0)
    return tuple(sorted(answers))


def evaluate_query_columnar(
    query: ConjunctiveQuery,
    fragments: Mapping[str, Sequence[Any]],
    assume_unique: bool = False,
) -> tuple[tuple[int, ...], ...]:
    """All answers of ``query`` over columnar relation fragments.

    The vectorized counterpart of :func:`evaluate_query`: relations
    arrive as parallel int64 column arrays and every join step is a
    sort + ``searchsorted`` hash join, so per-answer Python work is
    O(1) amortised.  Requires the numpy backend.

    Args:
        query: a full conjunctive query.
        fragments: per relation name, a sequence of parallel value
            columns (numpy int64 arrays); atoms whose relation is
            missing or empty make the answer empty.
        assume_unique: skip input deduplication and output sorting.
            Safe when every fragment is duplicate-free (the HC
            executor's case: routing never delivers a row twice),
            where the full-query answer set is then duplicate-free by
            construction; the returned order is unspecified.

    Returns:
        Duplicate-free answer tuples in head-variable order, sorted
        unless ``assume_unique`` -- the same answer *set*
        :func:`evaluate_query` produces on the same rows.
    """
    table = evaluate_query_table(query, fragments, assume_unique)
    return tuple(map(tuple, table.tolist()))


def evaluate_query_table(
    query: ConjunctiveQuery,
    fragments: Mapping[str, Sequence[Any]],
    assume_unique: bool = False,
) -> Any:
    """Like :func:`evaluate_query_columnar` but stays columnar.

    Returns the answers as one int64 array of shape
    ``(num_answers, len(head))`` instead of materialising Python
    tuples -- the form the round engine's view materialisation and
    answer collection consume directly.
    """
    numpy = require_numpy()
    empty = numpy.zeros((0, len(query.head)), dtype=numpy.int64)
    tables: dict[str, Any] = {}
    for atom in query.atoms:
        columns = fragments.get(atom.name)
        if columns is None or len(columns) == 0 or len(columns[0]) == 0:
            return empty
        table = numpy.column_stack(
            [numpy.asarray(c, dtype=numpy.int64) for c in columns]
        )
        if not assume_unique:
            # Mailboxes could in principle hold repeats.
            table = numpy.unique(table, axis=0)
        # Intra-atom repeated variables act as equality selections.
        first_position = atom.first_positions
        mask = None
        for position, variable in enumerate(atom.variables):
            first = first_position[variable]
            if first != position:
                equal = table[:, position] == table[:, first]
                mask = equal if mask is None else (mask & equal)
        if mask is not None:
            table = table[mask]
        if len(table) == 0:
            return empty
        tables[atom.name] = table

    sizes = {name: len(table) for name, table in tables.items()}
    order = _atom_order_by_size(query, sizes)

    binding: dict[str, Any] = {}
    first_atom = order[0]
    for variable, position in first_atom.first_positions.items():
        binding[variable] = tables[first_atom.name][:, position]

    for atom in order[1:]:
        table = tables[atom.name]
        positions = atom.first_positions
        shared = [v for v in positions if v in binding]
        num_bound = len(next(iter(binding.values())))
        if shared:
            key_left, key_right, _ = _factorize_keys(
                numpy,
                [binding[v] for v in shared],
                [table[:, positions[v]] for v in shared],
            )
            left_index, right_index = _join_pairs(numpy, key_left, key_right)
        else:
            left_index = numpy.repeat(
                numpy.arange(num_bound), len(table)
            )
            right_index = numpy.tile(numpy.arange(len(table)), num_bound)
        if len(left_index) == 0:
            return empty
        binding = {
            variable: column[left_index]
            for variable, column in binding.items()
        }
        for variable, position in positions.items():
            if variable not in binding:
                binding[variable] = table[right_index, position]

    head = numpy.column_stack([binding[v] for v in query.head])
    if not assume_unique:
        head = numpy.unique(head, axis=0)
    return head


def evaluate_query_table_segmented(
    query: ConjunctiveQuery,
    fragments: Mapping[str, Sequence[Any]],
    segments: Mapping[str, Any],
    num_segments: int,
    assume_unique: bool = False,
    sorted_relations: frozenset[str] | set[str] = frozenset(),
) -> tuple[Any, Any]:
    """Evaluate ``query`` independently inside every segment, at once.

    The fleet-wide counterpart of :func:`evaluate_query_table`: each
    atom arrives as one pooled column set spanning all ``p`` workers
    plus a parallel ``segments[atom]`` array of worker (segment) ids,
    and the whole fleet's local evaluations run as *one* vectorized
    join by prepending the segment id as the highest-order component
    of every factorized join key -- rows only match within their own
    segment, so the result equals running :func:`evaluate_query_table`
    per worker, without the per-worker Python loop.

    Args:
        query: a full conjunctive query.
        fragments: per atom name, the pooled parallel value columns of
            every segment's fragment (missing/empty => no answers).
        segments: per atom name, the int64 segment id of each pooled
            row; ids must lie in ``[0, num_segments)``.
        num_segments: number of segments (workers) pooled.
        assume_unique: skip per-segment input dedup and output
            sorting, as in :func:`evaluate_query_table`.
        sorted_relations: atom names whose pooled rows are known
            sorted by (segment, lexicographic row order) -- i.e. their
            delivery pool's ``source_sorted`` flag.  When such an
            atom's join key is a prefix of its column order, the join
            skips its sort (the sort-free fast path); the answer
            multiset is unaffected.

    Returns:
        ``(answers, answer_segments)`` -- an int64 table of shape
        ``(num_answers, len(head))`` holding every segment's local
        answers, and the parallel segment id per answer row.  Per-
        segment answer counts are one ``bincount(answer_segments)``
        away; the fleet-wide deduplicated union is one ``unique``.
    """
    numpy = require_numpy()
    empty = (
        numpy.zeros((0, len(query.head)), dtype=numpy.int64),
        numpy.zeros(0, dtype=numpy.int64),
    )
    # Fragments stay tuples of *contiguous* 1-D columns throughout:
    # at fleet scale the joins are memory-bound, and gathers/scans
    # over contiguous int64 arrays are several times faster than over
    # the strided views a stacked 2-D table would hand out.
    tables: dict[str, tuple] = {}
    table_segments: dict[str, Any] = {}
    for atom in query.atoms:
        columns = fragments.get(atom.name)
        if columns is None or len(columns) == 0 or len(columns[0]) == 0:
            return empty
        columns = tuple(
            numpy.ascontiguousarray(c, dtype=numpy.int64) for c in columns
        )
        segment = numpy.asarray(
            segments[atom.name], dtype=numpy.int64
        )
        if not assume_unique:
            # Dedup *within* each segment: unique over (segment, row).
            stacked = numpy.unique(
                numpy.column_stack((segment,) + columns), axis=0
            )
            segment = numpy.ascontiguousarray(stacked[:, 0])
            columns = tuple(
                numpy.ascontiguousarray(stacked[:, 1 + position])
                for position in range(len(columns))
            )
        # Intra-atom repeated variables act as equality selections.
        first_position = atom.first_positions
        mask = None
        for position, variable in enumerate(atom.variables):
            first = first_position[variable]
            if first != position:
                equal = columns[position] == columns[first]
                mask = equal if mask is None else (mask & equal)
        if mask is not None:
            columns = tuple(column[mask] for column in columns)
            segment = segment[mask]
        if len(columns[0]) == 0:
            return empty
        tables[atom.name] = columns
        table_segments[atom.name] = segment

    sizes = {name: len(columns[0]) for name, columns in tables.items()}
    order = _atom_order_by_size(query, sizes)

    binding: dict[str, Any] = {}
    first_atom = order[0]
    for variable, position in first_atom.first_positions.items():
        binding[variable] = tables[first_atom.name][position]
    segment = table_segments[first_atom.name]

    for atom in order[1:]:
        columns = tables[atom.name]
        atom_segment = table_segments[atom.name]
        positions = atom.first_positions
        shared = [v for v in positions if v in binding]
        # The segment id is always part of the key (highest-order
        # component): with no shared variables the "join" degenerates
        # to the per-segment cartesian product, exactly as the
        # per-worker evaluation computes it.
        key_left, key_right, order_preserving = _pack_segmented_keys(
            numpy,
            segment,
            atom_segment,
            num_segments,
            [binding[v] for v in shared],
            [columns[positions[v]] for v in shared],
        )
        # Sort-free fast path: the pool is sorted by (segment, lex
        # row) and the key columns are a lexicographic prefix of the
        # atom's columns, so the packed key is already non-decreasing.
        assume_sorted = (
            order_preserving
            and atom.name in sorted_relations
            and [positions[v] for v in shared] == list(range(len(shared)))
        )
        left_index, right_index = _join_pairs_sparse(
            numpy, key_left, key_right, assume_sorted=assume_sorted
        )
        if left_index is not None:
            if len(left_index) == 0:
                return empty
            binding = {
                variable: column[left_index]
                for variable, column in binding.items()
            }
            segment = segment[left_index]
        # left_index None: every bound row matched exactly once, so
        # the existing binding columns line up as-is (no gathers).
        for variable, position in positions.items():
            if variable not in binding:
                binding[variable] = columns[position][right_index]

    head = numpy.column_stack([binding[v] for v in query.head])
    if not assume_unique:
        stacked = numpy.unique(
            numpy.column_stack([segment, head]), axis=0
        )
        segment = numpy.ascontiguousarray(stacked[:, 0])
        head = stacked[:, 1:]
    return head, segment


def _atom_order_by_size(
    query: ConjunctiveQuery, sizes: Mapping[str, int]
) -> list[Atom]:
    """Greedy join order over abstract sizes (shared with both paths)."""
    remaining = list(query.atoms)
    remaining.sort(key=lambda atom: sizes[atom.name])
    order: list[Atom] = [remaining.pop(0)]
    bound: set[str] = set(order[0].variable_set)
    while remaining:
        connected = [
            atom for atom in remaining if atom.variable_set & bound
        ]
        pool = connected or remaining
        chosen = min(pool, key=lambda atom: sizes[atom.name])
        remaining.remove(chosen)
        order.append(chosen)
        bound |= chosen.variable_set
    return order


def _pack_segmented_keys(
    numpy: Any,
    segment_left: Any,
    segment_right: Any,
    num_segments: int,
    left_columns: Sequence[Any],
    right_columns: Sequence[Any],
) -> tuple[Any, Any, bool]:
    """Pack (segment, columns...) join keys, segment highest-order.

    Like :func:`_factorize_keys` with the segment id prepended, but
    exploits the known segment bound: the (fleet-sized) segment
    columns are never scanned for their min/max, and a bare
    segment-only key ships without so much as a copy.  Falls back to
    the generic factorizer when the packed span would overflow.
    """
    radices = []
    span = num_segments
    packable = True
    for left, right in zip(left_columns, right_columns):
        low = high = 0
        if len(left):
            low = min(low, int(left.min()))
            high = max(high, int(left.max()))
        if len(right):
            low = min(low, int(right.min()))
            high = max(high, int(right.max()))
        span *= high + 1
        if low < 0 or span >= (1 << 62):
            packable = False
            break
        radices.append(high + 1)
    if not packable:
        return _factorize_keys(
            numpy,
            [segment_left] + list(left_columns),
            [segment_right] + list(right_columns),
        )
    key_left = segment_left
    key_right = segment_right
    for left, right, radix in zip(left_columns, right_columns, radices):
        key_left = key_left * radix + left
        key_right = key_right * radix + right
    return key_left, key_right, True


def _factorize_keys(
    numpy: Any,
    left_columns: Sequence[Any],
    right_columns: Sequence[Any],
) -> tuple[Any, Any, bool]:
    """Map multi-column join keys on both sides to shared int keys.

    Single-column keys are used directly.  Wider keys are packed
    mixed-radix into one int64 when the combined value span fits
    (the common case: domain values are small positive ints);
    otherwise they are factorized through one ``numpy.unique`` over
    the stacked key rows of both sides, which never overflows.

    Returns:
        ``(key_left, key_right, order_preserving)`` -- the third flag
        is True when the keys are a monotone function of the key
        tuples' lexicographic order (direct and mixed-radix packing
        are; the ``unique`` fallback is not), which is what the
        sort-free join branch needs to trust pre-sorted inputs.
    """
    if len(left_columns) == 1:
        return left_columns[0], right_columns[0], True
    radices = []
    span = 1
    packable = True
    for left, right in zip(left_columns, right_columns):
        low = high = 0
        if len(left):
            low = min(low, int(left.min()))
            high = max(high, int(left.max()))
        if len(right):
            low = min(low, int(right.min()))
            high = max(high, int(right.max()))
        span *= high + 1
        if low < 0 or span >= (1 << 62):
            packable = False
            break
        radices.append(high + 1)
    if packable:
        key_left = left_columns[0].copy()
        key_right = right_columns[0].copy()
        for left, right, radix in zip(
            left_columns[1:], right_columns[1:], radices[1:]
        ):
            key_left = key_left * radix + left
            key_right = key_right * radix + right
        return key_left, key_right, True
    num_left = len(left_columns[0])
    stacked = numpy.column_stack(
        [
            numpy.concatenate([left, right])
            for left, right in zip(left_columns, right_columns)
        ]
    )
    _, inverse = numpy.unique(stacked, axis=0, return_inverse=True)
    inverse = inverse.reshape(-1)  # pre-2.1 numpy returns shape (n, 1)
    return inverse[:num_left], inverse[num_left:], False


def _join_pairs(
    numpy: Any,
    key_left: Any,
    key_right: Any,
    assume_sorted: bool = False,
) -> tuple[Any, Any]:
    """Index pairs ``(i, j)`` with ``key_left[i] == key_right[j]``.

    Sorts the right side once, locates each left key's run with two
    ``searchsorted`` calls, and expands the runs arithmetic-only.

    Args:
        assume_sorted: skip the right-side ``argsort`` entirely; only
            valid when ``key_right`` is already non-decreasing (e.g. a
            pre-sorted delivery pool keyed by its sort prefix).  The
            returned pair multiset is identical either way.

    A sorted right side additionally enables direct addressing: when
    the key span is within a small multiple of the data size, each
    key's (start, count) run is read from one ``bincount``/``cumsum``
    table in O(1) -- one cache line per probe instead of the
    ``log(n)`` scattered reads of a fleet-sized binary search, which
    is what makes the pooled join faster than per-worker joins over
    cache-resident fragments.
    """
    left_index, right_index = _join_pairs_sparse(
        numpy, key_left, key_right, assume_sorted
    )
    if left_index is None:
        left_index = numpy.arange(len(key_left), dtype=numpy.int64)
    return left_index, right_index


def _join_pairs_sparse(
    numpy: Any,
    key_left: Any,
    key_right: Any,
    assume_sorted: bool = False,
) -> tuple[Any | None, Any]:
    """:func:`_join_pairs` with the identity left side left implicit.

    Returns ``(left_index, right_index)`` where ``left_index`` is None
    when it would be exactly ``arange(len(key_left))`` -- the key-key
    join case where every left row matches exactly once, which lets
    callers skip re-gathering every bound column through an identity
    permutation.
    """
    if assume_sorted:
        order = None
        sorted_keys = key_right
    else:
        order = numpy.argsort(key_right, kind="stable")
        sorted_keys = key_right[order]
    # Direct addressing needs non-negative keys (bincount) with a
    # modest span; sorted_keys[0] >= 0 guards negatives (possible
    # under the documented "non-decreasing" precondition even though
    # no shipped caller produces them).
    span = (
        int(sorted_keys[-1]) + 1
        if assume_sorted and len(sorted_keys) and int(sorted_keys[0]) >= 0
        else -1
    )
    if 0 <= span <= max(
        1 << 22, 4 * (len(key_left) + len(key_right))
    ):
        run_counts = numpy.bincount(sorted_keys, minlength=span)
        run_starts_all = numpy.empty_like(run_counts)
        run_starts_all[0] = 0
        numpy.cumsum(run_counts[:-1], out=run_starts_all[1:])
        within = (key_left >= 0) & (key_left < span)
        if within.all():
            starts = run_starts_all[key_left]
            counts = run_counts[key_left]
        else:
            lookup = numpy.where(within, key_left, 0)
            starts = run_starts_all[lookup]
            counts = numpy.where(within, run_counts[lookup], 0)
    else:
        starts = numpy.searchsorted(sorted_keys, key_left, side="left")
        ends = numpy.searchsorted(sorted_keys, key_left, side="right")
        counts = ends - starts
    max_count = int(counts.max()) if len(counts) else 0
    if max_count <= 1:
        # Key-key join: no run expansion, and when nothing drops the
        # left side is the identity (signalled as None).
        if int(counts.sum()) == len(counts):
            left_index = None
            sorted_positions = starts
        else:
            left_index = numpy.nonzero(counts)[0]
            sorted_positions = starts[left_index]
        right_index = (
            sorted_positions
            if order is None
            else order[sorted_positions]
        )
        return left_index, right_index
    total = int(counts.sum())
    left_index = numpy.repeat(numpy.arange(len(key_left)), counts)
    run_starts = numpy.repeat(starts, counts)
    offsets = numpy.arange(total) - numpy.repeat(
        numpy.concatenate(
            ([0], numpy.cumsum(counts)[:-1])
        ) if len(counts) else numpy.zeros(0, dtype=numpy.int64),
        counts,
    )
    sorted_positions = run_starts + offsets
    right_index = (
        sorted_positions if order is None else order[sorted_positions]
    )
    return left_index, right_index


def count_answers(
    query: ConjunctiveQuery,
    relations: Mapping[str, Iterable[Sequence[int]]],
) -> int:
    """Convenience: the number of answers (|q(I)|)."""
    return len(evaluate_query(query, relations))


def _atom_order(
    query: ConjunctiveQuery,
    instances: Mapping[str, list[tuple[int, ...]]],
) -> list[Atom]:
    """Greedy join order: smallest first, then stay connected."""
    return _atom_order_by_size(
        query, {name: len(rows) for name, rows in instances.items()}
    )


def _build_indexes(
    query: ConjunctiveQuery,
    order: Sequence[Atom],
    instances: Mapping[str, list[tuple[int, ...]]],
) -> list[tuple[tuple[int, ...], dict[tuple[int, ...], list[tuple[int, ...]]]]]:
    """Per-atom hash index on the positions bound before the atom.

    For each atom in join order, determine which of its positions hold
    variables bound by earlier atoms; index its rows by the values at
    those positions.  Rows violating intra-atom repeated-variable
    equality are dropped at build time.
    """
    indexes = []
    bound: set[str] = set()
    for atom in order:
        first_position = atom.first_positions
        bound_positions = tuple(
            first_position[variable]
            for variable in dict.fromkeys(atom.variables)
            if variable in bound
        )
        index: dict[tuple[int, ...], list[tuple[int, ...]]] = {}
        for row in instances[atom.name]:
            if any(
                row[position] != row[first_position[variable]]
                for position, variable in enumerate(atom.variables)
            ):
                continue
            key = tuple(row[i] for i in bound_positions)
            index.setdefault(key, []).append(row)
        indexes.append((bound_positions, index))
        bound |= atom.variable_set
    return indexes
