"""Skew-aware HyperCube: heavy-hitter routing (after Koutris-Suciu [17]).

The paper's upper bounds hold on *matching databases* -- skew-free by
construction -- and defer skewed inputs to [17] (Section 2.5).  To
make that boundary concrete, this module implements the standard
remedy practical HyperCube deployments use:

1. Round-1 statistics: each input server (which sees its whole
   relation, Section 2.4 explicitly allows this) identifies *heavy
   hitters* -- join-attribute values occurring more than
   ``|S_j| / p_i`` times, i.e. more often than a balanced hash bucket.
2. Light values route by ordinary HC hashing.
3. A heavy value on a dimension shared by exactly two atoms is a
   residual *cartesian product* (every left tuple joins every right
   tuple), so the dimension's share ``p_v`` is refactored into a
   ``g1 x g2`` grid (``g1 = isqrt(p_v)``): left tuples hash their
   residual attributes to a row and replicate across columns, right
   tuples hash to a column and replicate across rows -- the
   introduction's cartesian-grid tradeoff applied surgically to the
   heavy value.  (With three or more atoms on the dimension we fall
   back to full spreading.)

On skew-free inputs no value is heavy and the algorithm degenerates to
exactly `run_hypercube`; on skewed inputs the maximum load drops from
``Theta(n)`` back toward ``O(n / sqrt(p_v))`` per heavy value at the
price of extra replication -- the [17] tradeoff, measurable in the
result stats.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import product
from typing import Mapping

from repro.algorithms.localjoin import evaluate_query
from repro.core.covers import fractional_vertex_cover
from repro.core.query import Atom, ConjunctiveQuery
from repro.core.shares import ShareAllocation, allocate_integer_shares, share_exponents
from repro.data.database import Database
from repro.mpc.model import MPCConfig
from repro.mpc.routing import HashFamily, grid_rank
from repro.mpc.simulator import MPCSimulator
from repro.mpc.stats import SimulationReport


@dataclass(frozen=True)
class SkewAwareResult:
    """Outcome of a skew-aware HC run.

    Attributes:
        answers: all answers (always exact).
        heavy_hitters: per variable, the values declared heavy.
        allocation: the integer share grid used.
        report: communication statistics.
    """

    answers: tuple[tuple[int, ...], ...]
    heavy_hitters: dict[str, frozenset[int]]
    allocation: ShareAllocation
    report: SimulationReport


def detect_heavy_hitters(
    query: ConjunctiveQuery,
    database: Database,
    shares: Mapping[str, int],
) -> dict[str, frozenset[int]]:
    """Values occurring more than ``|S_j| / p_i`` times on a dimension.

    Computed per (atom, variable position) and unioned per variable:
    input servers know their own relations, so this is legal round-1
    work in the model of Section 2.4.
    """
    heavy: dict[str, set[int]] = {v: set() for v in query.variables}
    for atom in query.atoms:
        relation = database[atom.name]
        for position, variable in enumerate(atom.variables):
            share = shares.get(variable, 1)
            if share <= 1:
                continue
            threshold = max(1, len(relation) // share)
            counts: dict[int, int] = {}
            for row in relation:
                counts[row[position]] = counts.get(row[position], 0) + 1
            for value, count in counts.items():
                if count > threshold:
                    heavy[variable].add(value)
    return {v: frozenset(values) for v, values in heavy.items()}


def _heavy_roles(query: ConjunctiveQuery) -> dict[str, dict[str, int] | None]:
    """Per variable: atom -> grid role (0 = rows, 1 = columns).

    Only defined when exactly two atoms contain the variable (the
    cartesian split of [17]); ``None`` means fall back to spreading.
    """
    roles: dict[str, dict[str, int] | None] = {}
    for variable in query.variables:
        atoms = sorted(
            atom.name for atom in query.atoms_of(variable)
        )
        if len(atoms) == 2:
            roles[variable] = {atoms[0]: 0, atoms[1]: 1}
        else:
            roles[variable] = None
    return roles


def _grid_factors(share: int) -> tuple[int, int]:
    """Factor a share into ``g1 x g2`` with ``g1 = isqrt(share)``."""
    import math

    g1 = max(1, math.isqrt(share))
    g2 = max(1, share // g1)
    return g1, g2


def _destinations_skew_aware(
    atom: Atom,
    row: tuple[int, ...],
    shares: Mapping[str, int],
    variable_order: tuple[str, ...],
    hashes: HashFamily,
    heavy: Mapping[str, frozenset[int]],
    roles: Mapping[str, dict[str, int] | None],
) -> list[int]:
    """HC destinations with cartesian-grid handling of heavy values."""
    axes_by_variable: dict[str, tuple[int, ...]] = {}
    for position, variable in enumerate(atom.variables):
        first = atom.variables.index(variable)
        if row[position] != row[first]:
            return []
        value = row[position]
        share = shares[variable]
        if value not in heavy.get(variable, frozenset()):
            axes_by_variable[variable] = (
                hashes.hash_value(variable, value, share),
            )
            continue
        variable_roles = roles.get(variable)
        if variable_roles is None or atom.name not in variable_roles:
            # Fallback: spread across the whole dimension.
            axes_by_variable[variable] = tuple(range(share))
            continue
        g1, g2 = _grid_factors(share)
        residual = tuple(
            row[i]
            for i, other in enumerate(atom.variables)
            if other != variable
        )
        residual_hash = hashes.hash_value(
            f"{variable}/residual", hash(residual) & ((1 << 31) - 1),
            g1 if variable_roles[atom.name] == 0 else g2,
        )
        if variable_roles[atom.name] == 0:
            coordinates = tuple(
                residual_hash * g2 + column for column in range(g2)
            )
        else:
            coordinates = tuple(
                row_index * g2 + residual_hash for row_index in range(g1)
            )
        axes_by_variable[variable] = coordinates

    axes = []
    for variable in variable_order:
        if variable in axes_by_variable:
            axes.append(axes_by_variable[variable])
        else:
            axes.append(tuple(range(shares[variable])))
    dimensions = tuple(shares[variable] for variable in variable_order)
    return [
        grid_rank(coordinates, dimensions)
        for coordinates in product(*axes)
    ]


def run_hypercube_skew_aware(
    query: ConjunctiveQuery,
    database: Database,
    p: int,
    eps: Fraction | float | None = None,
    seed: int = 0,
    capacity_c: float = 4.0,
) -> SkewAwareResult:
    """One-round HC with heavy-hitter spreading.

    Identical interface to :func:`repro.algorithms.hypercube.run_hypercube`;
    on skew-free inputs the two produce identical routing.
    """
    cover = fractional_vertex_cover(query)
    exponents = share_exponents(query, cover)
    allocation = allocate_integer_shares(exponents, p)
    shares = allocation.shares
    heavy = detect_heavy_hitters(query, database, shares)
    roles = _heavy_roles(query)
    hashes = HashFamily(seed)
    variable_order = query.variables

    if eps is None:
        tau = sum((Fraction(v) for v in cover.values()), start=Fraction(0))
        eps = max(Fraction(0), 1 - 1 / tau)
    config = MPCConfig(p=p, eps=Fraction(eps), c=capacity_c)
    simulator = MPCSimulator(
        config, input_bits=database.total_bits, enforce_capacity=False
    )

    simulator.begin_round()
    for atom in query.atoms:
        relation = database[atom.name]
        batches: dict[int, list[tuple[int, ...]]] = {}
        for row in relation:
            for destination in _destinations_skew_aware(
                atom, row, shares, variable_order, hashes, heavy, roles
            ):
                batches.setdefault(destination, []).append(row)
        for destination, rows in batches.items():
            simulator.send_from_input(
                atom.name, destination, rows, relation.tuple_bits
            )
    simulator.end_round()

    answers: set[tuple[int, ...]] = set()
    for worker in range(allocation.used_servers):
        local = {
            atom.name: simulator.worker_rows(worker, atom.name)
            for atom in query.atoms
        }
        answers.update(evaluate_query(query, local))

    return SkewAwareResult(
        answers=tuple(sorted(answers)),
        heavy_hitters=heavy,
        allocation=allocation,
        report=simulator.report,
    )
