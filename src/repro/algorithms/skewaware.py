"""Skew-aware HyperCube: heavy-hitter routing (after Koutris-Suciu [17]).

The paper's upper bounds hold on *matching databases* -- skew-free by
construction -- and defer skewed inputs to [17] (Section 2.5).  To
make that boundary concrete, this module implements the standard
remedy practical HyperCube deployments use:

1. Round-1 statistics: each input server (which sees its whole
   relation, Section 2.4 explicitly allows this) identifies *heavy
   hitters* -- join-attribute values occurring more than
   ``|S_j| / p_i`` times, i.e. more often than a balanced hash bucket.
2. Light values route by ordinary HC hashing.
3. A heavy value on a dimension shared by exactly two atoms is a
   residual *cartesian product* (every left tuple joins every right
   tuple), so the dimension's share ``p_v`` is refactored into a
   ``g1 x g2`` grid (``g1 = isqrt(p_v)``): left tuples hash their
   residual attributes to a row and replicate across columns, right
   tuples hash to a column and replicate across rows -- the
   introduction's cartesian-grid tradeoff applied surgically to the
   heavy value.  (With three or more atoms on the dimension we fall
   back to full spreading.)

Compilation and execution are split: :func:`compile_skew_aware` emits
an immutable :class:`~repro.engine.plan.Plan` whose single round has
one :class:`~repro.engine.steps.HeavyGridRoute` per atom *without*
heavy sets -- detection reads the data, so the round carries a
:class:`~repro.engine.plan.HeavyBind` marker and
:func:`~repro.engine.executor.execute_plan` binds the detected heavy
values just before routing.  The light/heavy split then runs either
tuple-at-a-time (``pure``) or as a handful of vectorized signature
groups (``numpy``); heavy-hitter detection itself is one
``unique``/``counts`` pass per (atom, position) under numpy.

On skew-free inputs no value is heavy and the algorithm degenerates to
exactly `run_hypercube`; on skewed inputs the maximum load drops from
``Theta(n)`` back toward ``O(n / sqrt(p_v))`` per heavy value at the
price of extra replication -- the [17] tradeoff, measurable in the
result stats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping

from repro.backend import NUMPY, require_numpy, resolve_backend
from repro.core.query import ConjunctiveQuery
from repro.core.covers import fractional_vertex_cover
from repro.core.shares import ShareAllocation, allocate_integer_shares, share_exponents
from repro.data.columnar import ColumnarDatabase, ColumnarRelation
from repro.data.database import Database
from repro.engine import (
    CollectAnswers,
    GridSpec,
    HeavyBind,
    HeavyGridRoute,
    Plan,
    PlanRound,
    PlanSignature,
    RoundProfiler,
    execute_plan,
)
from repro.mpc.routing import HashFamily
from repro.mpc.stats import SimulationReport


@dataclass(frozen=True)
class SkewAwareResult:
    """Outcome of a skew-aware HC run.

    Attributes:
        answers: all answers (always exact).
        heavy_hitters: per variable, the values declared heavy.
        allocation: the integer share grid used.
        report: communication statistics.
        per_server_answers: answer count per server (diagnostics).
    """

    answers: tuple[tuple[int, ...], ...]
    heavy_hitters: dict[str, frozenset[int]]
    allocation: ShareAllocation
    report: SimulationReport
    per_server_answers: tuple[int, ...] = field(default=())


def detect_heavy_hitters(
    query: ConjunctiveQuery,
    database: Database | ColumnarDatabase,
    shares: Mapping[str, int],
    backend: str | None = None,
    columnar: Mapping[str, ColumnarRelation] | None = None,
) -> dict[str, frozenset[int]]:
    """Values occurring more than ``|S_j| / p_i`` times on a dimension.

    Computed per (atom, variable position) and unioned per variable:
    input servers know their own relations, so this is legal round-1
    work in the model of Section 2.4.  Under the ``numpy`` backend
    each (atom, position) scan is one ``unique``/``counts`` pass; the
    ``pure`` reference counts per-value in a dict.  Identical output
    either way.

    Args:
        columnar: optional pre-columnarised relations (the executor
            passes its routing sources so detection re-uses the same
            arrays instead of converting the database twice).
    """
    backend = resolve_backend(backend)
    numpy = require_numpy() if backend == NUMPY else None
    heavy: dict[str, set[int]] = {v: set() for v in query.variables}
    for atom in query.atoms:
        relation = database[atom.name]
        if numpy is not None and len(relation):
            if columnar is not None and atom.name in columnar:
                columns = columnar[atom.name].columns
            else:
                columns = ColumnarRelation.from_relation(
                    relation, backend=NUMPY
                ).columns
        else:
            columns = None
        for position, variable in enumerate(atom.variables):
            share = shares.get(variable, 1)
            if share <= 1:
                continue
            threshold = max(1, len(relation) // share)
            if columns is not None:
                values, counts = numpy.unique(
                    columns[position], return_counts=True
                )
                heavy[variable].update(
                    values[counts > threshold].tolist()
                )
                continue
            counts_by_value: dict[int, int] = {}
            rows = (
                relation.rows()
                if isinstance(relation, ColumnarRelation)
                else relation
            )
            for row in rows:
                counts_by_value[row[position]] = (
                    counts_by_value.get(row[position], 0) + 1
                )
            for value, count in counts_by_value.items():
                if count > threshold:
                    heavy[variable].add(value)
    return {v: frozenset(values) for v, values in heavy.items()}


def _heavy_roles(query: ConjunctiveQuery) -> dict[str, dict[str, int] | None]:
    """Per variable: atom -> grid role (0 = rows, 1 = columns).

    Only defined when exactly two atoms contain the variable (the
    cartesian split of [17]); ``None`` means fall back to spreading.
    """
    roles: dict[str, dict[str, int] | None] = {}
    for variable in query.variables:
        atoms = sorted(
            atom.name for atom in query.atoms_of(variable)
        )
        if len(atoms) == 2:
            roles[variable] = {atoms[0]: 0, atoms[1]: 1}
        else:
            roles[variable] = None
    return roles


def compile_skew_aware(
    query: ConjunctiveQuery,
    p: int,
    eps: Fraction | float | None = None,
    seed: int = 0,
    capacity_c: float = 4.0,
    enforce_capacity: bool = False,
    backend: str | None = None,
) -> Plan:
    """Compile the skew-aware round into an immutable plan.

    Everything data-independent happens here -- shares, grid, roles,
    the step list; the heavy sets stay empty and the round's
    :class:`~repro.engine.plan.HeavyBind` tells the executor to detect
    and bind them per database (round-1 statistics work).
    """
    cover = fractional_vertex_cover(query)
    exponents = share_exponents(query, cover)
    allocation = allocate_integer_shares(exponents, p)
    shares = allocation.shares
    if eps is None:
        tau = sum((Fraction(v) for v in cover.values()), start=Fraction(0))
        eps = max(Fraction(0), 1 - 1 / tau)
    roles = _heavy_roles(query)
    grid = GridSpec.from_shares(query.variables, shares, HashFamily(seed))
    steps = tuple(
        HeavyGridRoute(
            relation=atom.name,
            atom=atom,
            grid=grid,
            heavy={},
            roles=roles,
        )
        for atom in query.atoms
    )
    return Plan(
        signature=PlanSignature(
            algorithm="skewaware",
            query_text=str(query),
            eps=Fraction(eps),
            p=p,
            backend=resolve_backend(backend),
            seed=seed,
            capacity_c=capacity_c,
            enforce_capacity=enforce_capacity,
        ),
        rounds=(
            PlanRound(
                steps=steps,
                bind_heavy=HeavyBind(
                    query=query, shares=tuple(shares.items())
                ),
            ),
        ),
        finalize=CollectAnswers(
            query=query, workers=allocation.used_servers
        ),
        allocation=allocation,
    )


def run_hypercube_skew_aware(
    query: ConjunctiveQuery,
    database: Database | ColumnarDatabase,
    p: int,
    eps: Fraction | float | None = None,
    seed: int = 0,
    capacity_c: float = 4.0,
    enforce_capacity: bool = False,
    backend: str | None = None,
    profiler: RoundProfiler | None = None,
) -> SkewAwareResult:
    """One-round HC with heavy-hitter spreading.

    Identical interface to :func:`repro.algorithms.hypercube.run_hypercube`;
    on skew-free inputs the two produce identical routing.

    .. deprecated:: 1.1
        Application code should use :func:`repro.connect` -- the
        Session planner routes here automatically when the skew
        sample finds heavy hitters.
    """
    from repro.algorithms.registry import warn_legacy_entry_point

    warn_legacy_entry_point("run_hypercube_skew_aware")
    plan = compile_skew_aware(
        query,
        p,
        eps=eps,
        seed=seed,
        capacity_c=capacity_c,
        enforce_capacity=enforce_capacity,
        backend=backend,
    )
    execution = execute_plan(plan, database, profiler=profiler)
    return SkewAwareResult(
        answers=execution.answers,
        heavy_hitters=execution.heavy_hitters or {},
        allocation=plan.allocation,
        report=execution.report,
        per_server_answers=execution.per_server,
    )
