"""The algorithm registry: one table of compilers with cost models.

Every query-answering algorithm in the repository is registered here
as an :class:`AlgorithmSpec` -- a uniform ``compile(query, p, ...)``
entry point over the per-module ``compile_*`` functions plus a
*declared cost model* the planner (:mod:`repro.planner`) uses to
choose between them.  The registry is the single source of truth for
"what can answer a conjunctive query": the planner iterates it, the
CLI dispatches through it, and :class:`~repro.serve.service.QueryService`
compiles through it.

Cost models are deliberately coarse -- they rank algorithms, they do
not predict wall-clock.  Each returns a :class:`CostEstimate` whose
``predicted_load`` is the paper's per-worker tuple count for the
algorithm (``O(n / p^{1/tau*})`` for one-round HyperCube by
Theorem 1.1 / Proposition 3.2, ``O(n / p)`` per round for multi-round
plans at ``eps = 0``) corrected by the data profile's skew statistics,
and whose ``cost`` adds the planner's round penalty so that a
lower-load multi-round plan must beat one-round HC by enough to pay
for its extra synchronisation barriers.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from fractions import Fraction
from math import isqrt
from typing import TYPE_CHECKING, Callable, Mapping

from repro.core.covers import fractional_vertex_cover, space_exponent
from repro.core.plans import build_plan
from repro.core.query import ConjunctiveQuery, QueryError
from repro.core.shares import allocate_integer_shares, share_exponents
from repro.engine.plan import Plan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.planner.stats import DataProfile

#: Extra weight a multi-round plan pays per communication round over a
#: one-round algorithm (synchronisation barriers, view shipping).  At
#: 3/2, matching-database staples (two-atom joins, C_3) stay on
#: HyperCube while chains of four or more atoms -- whose ``tau*`` grows
#: linearly and whose one-round load decays only as ``p^{2/k}`` --
#: switch to the logarithmic-depth multi-round plan.
ROUND_PENALTY = 1.5

#: Mild multiplier steering ties away from skew-aware routing: on
#: skew-free data its routing degenerates to plain HC, so plain HC
#: wins unless the profile actually found heavy hitters.
SKEW_TIEBREAK = 1.05

#: Single source of the per-algorithm ``run_*`` capacity defaults,
#: consumed by both the compile wrappers (resolving ``capacity_c=None``)
#: and each spec's ``default_capacity_c`` -- so registry-compiled
#: plans are bit-identical to direct ``run_*`` calls by construction.
_CAPACITY_DEFAULTS = {
    "hypercube": 4.0,
    "skewaware": 4.0,
    "multiround": 8.0,
    "partial": 4.0,
}


@dataclass(frozen=True)
class CostEstimate:
    """One algorithm's bid for a query under a data profile.

    Attributes:
        eligible: the algorithm can answer this (query, eps) at all;
            ineligible bids are reported in explains but never chosen.
        cost: comparable score, lower wins (predicted load x round
            penalties); ``inf`` when ineligible.
        predicted_load: predicted per-worker tuples of the heaviest
            round (the paper's load measure ``L``).
        rounds: predicted communication rounds.
        shares: the integer share vector the algorithm would route on
            (None when it has no single grid, e.g. multi-round plans).
        reason: one line of why -- surfaced verbatim in explains.
    """

    eligible: bool
    cost: float
    predicted_load: float
    rounds: int
    shares: tuple[tuple[str, int], ...] | None
    reason: str


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered algorithm.

    Attributes:
        name: registry key (``"hypercube"``, ``"multiround"``, ...).
        compile: uniform compiler ``(query, p, *, eps, seed,
            capacity_c, enforce_capacity, backend) -> Plan``; wraps
            the module-level ``compile_*`` function (building the
            logical plan for multi-round, dropping unsupported
            parameters for partial).
        cost: declared cost model ``(query, profile, p, eps) ->
            CostEstimate`` consumed by the planner.
        default_capacity_c: capacity constant matching the algorithm's
            ``run_*`` entry point, so registry-compiled plans are
            bit-identical to direct calls.
        exact: False for algorithms that report only a subset of the
            answer (the below-threshold partial algorithm); the
            planner never auto-picks inexact algorithms unless the
            statement opts in.
        replaces: the legacy ``run_*`` entry point this algorithm's
            Session route supersedes (documentation only).
    """

    name: str
    compile: Callable[..., Plan]
    cost: Callable[
        [ConjunctiveQuery, "DataProfile", int, Fraction | None], CostEstimate
    ]
    default_capacity_c: float
    exact: bool = True
    replaces: str = ""


def warn_legacy_entry_point(name: str) -> None:
    """Emit the deprecation warning of a superseded ``run_*`` shim.

    The four per-algorithm entry points the Session API supersedes
    (``run_hypercube``, ``run_hypercube_skew_aware``, ``run_plan``,
    ``run_partial_hypercube``) call this once per call site; they
    remain supported for parity suites and benchmarks, which pin an
    algorithm on purpose.
    """
    import warnings

    warnings.warn(
        f"{name} is a legacy entry point; prefer repro.connect(db)"
        ".query(...).execute() -- the planner picks the algorithm and "
        "results are bit-identical (see the README deprecation table)",
        DeprecationWarning,
        stacklevel=3,
    )


@contextmanager
def legacy_entry_points_allowed():
    """Silence the ``run_*`` deprecation for internal composition.

    The experiment harnesses (:mod:`repro.analysis.experiments`) and
    the join-witness driver pin specific algorithms *by design* and
    consume their ``run_*`` result types (reported fractions, round
    counts); they wrap their calls in this context so library-internal
    use never emits the application-facing warning -- including under
    ``-W error::DeprecationWarning``.
    """
    import warnings

    with warnings.catch_warnings():
        warnings.filterwarnings(
            "ignore",
            message=".*legacy entry point.*",
            category=DeprecationWarning,
        )
        yield


def _ineligible(reason: str) -> CostEstimate:
    return CostEstimate(
        eligible=False,
        cost=float("inf"),
        predicted_load=float("inf"),
        rounds=0,
        shares=None,
        reason=reason,
    )


def _hc_base(
    query: ConjunctiveQuery, profile: "DataProfile", p: int
) -> tuple[float, tuple[tuple[str, int], ...], Fraction]:
    """(skew-free one-round load, integer shares, tau*) for HC routing."""
    cover = fractional_vertex_cover(query)
    tau = sum((Fraction(v) for v in cover.values()), start=Fraction(0))
    allocation = allocate_integer_shares(share_exponents(query, cover), p)
    tau = max(tau, Fraction(1))
    load = profile.total_rows / float(p) ** float(1 / tau)
    return load, tuple(sorted(allocation.shares.items())), tau


def _hypercube_cost(
    query: ConjunctiveQuery,
    profile: "DataProfile",
    p: int,
    eps: Fraction | None,
) -> CostEstimate:
    """One-round HC: ``n / p^{1/tau*}`` plus full skew concentration.

    A heavy value on a dimension with share ``p_v`` pins all its
    tuples to one grid slice, so the predicted load is raised to the
    heaviest multiplicity the profile sampled.  Below the query's
    space exponent a one-round algorithm cannot report the full answer
    (Theorem 3.3), so HC is ineligible there.
    """
    query_eps = space_exponent(query)
    if eps is not None and eps < query_eps:
        return _ineligible(
            f"one round needs eps >= {query_eps} (Theorem 3.3); "
            f"got {eps}"
        )
    base, shares, tau = _hc_base(query, profile, p)
    heavy = max(
        (profile.heavy_multiplicity(v) for v, s in shares if s > 1),
        default=0,
    )
    load = max(base, float(heavy))
    return CostEstimate(
        eligible=True,
        cost=load,
        predicted_load=load,
        rounds=1,
        shares=shares,
        reason=f"one round at load n/p^(1/{tau})"
        + (f", skew raises load to {heavy}" if heavy > base else ""),
    )


def _skewaware_cost(
    query: ConjunctiveQuery,
    profile: "DataProfile",
    p: int,
    eps: Fraction | None,
) -> CostEstimate:
    """Skew-aware HC: heavy values spread over a ``g1 x g2`` sub-grid.

    The heavy term drops from the full multiplicity to
    ``multiplicity / isqrt(p_v)`` (the [17] cartesian split); a small
    tie-break keeps plain HC ahead on skew-free data where the two
    algorithms route identically.
    """
    query_eps = space_exponent(query)
    if eps is not None and eps < query_eps:
        return _ineligible(
            f"one round needs eps >= {query_eps} (Theorem 3.3); "
            f"got {eps}"
        )
    base, shares, tau = _hc_base(query, profile, p)
    heavy = 0.0
    for variable, share in shares:
        if share <= 1:
            continue
        multiplicity = profile.heavy_multiplicity(variable)
        if multiplicity:
            heavy = max(heavy, multiplicity / max(1, isqrt(share)))
    load = max(base, heavy)
    return CostEstimate(
        eligible=True,
        cost=load * SKEW_TIEBREAK,
        predicted_load=load,
        rounds=1,
        shares=shares,
        reason="heavy values split over cartesian sub-grids"
        if profile.has_skew
        else "no heavy hitters sampled; routing equals plain HC",
    )


def _multiround_cost(
    query: ConjunctiveQuery,
    profile: "DataProfile",
    p: int,
    eps: Fraction | None,
) -> CostEstimate:
    """Multi-round plan: depth rounds at ``n / p`` each (Prop. 4.1)."""
    eps_mr = Fraction(0) if eps is None else Fraction(eps)
    try:
        logical = build_plan(query, eps_mr)
    except QueryError as error:
        return _ineligible(f"no multi-round plan: {error}")
    depth = logical.depth
    load = profile.total_rows / float(p) ** float(1 - eps_mr)
    return CostEstimate(
        eligible=True,
        cost=depth * ROUND_PENALTY * load,
        predicted_load=load,
        rounds=depth,
        shares=None,
        reason=f"depth-{depth} plan at eps={eps_mr}, "
        f"load n/p^{float(1 - eps_mr):g} per round",
    )


def _partial_cost(
    query: ConjunctiveQuery,
    profile: "DataProfile",
    p: int,
    eps: Fraction | None,
) -> CostEstimate:
    """Below-threshold partial HC: one round, a fraction of answers.

    Only meaningful when the statement pins ``eps`` *below* the
    query's space exponent -- at or above it, plain HC reports
    everything at the same budget.
    """
    if eps is None:
        return _ineligible("partial answers need an explicit eps")
    if not query.is_connected:
        return _ineligible("partial coverage needs a connected query")
    query_eps = space_exponent(query)
    if Fraction(eps) >= query_eps:
        return _ineligible(
            f"eps {eps} >= space exponent {query_eps}: plain HC "
            "reports every answer"
        )
    load = profile.total_rows / float(p) ** float(1 - Fraction(eps))
    return CostEstimate(
        eligible=True,
        cost=load,
        predicted_load=load,
        rounds=1,
        shares=None,
        reason=f"one round under budget eps={eps}; reports ~"
        f"p^(1-(1-eps)tau*) of the answers (Prop. 3.11)",
    )


def _compile_hypercube(
    query: ConjunctiveQuery,
    p: int,
    *,
    eps: Fraction | None = None,
    seed: int = 0,
    capacity_c: float | None = None,
    enforce_capacity: bool = False,
    backend: str | None = None,
) -> Plan:
    from repro.algorithms.hypercube import compile_hypercube

    return compile_hypercube(
        query,
        p,
        eps=eps,
        seed=seed,
        capacity_c=_CAPACITY_DEFAULTS["hypercube"]
        if capacity_c is None
        else capacity_c,
        enforce_capacity=enforce_capacity,
        backend=backend,
    )


def _compile_skew_aware(
    query: ConjunctiveQuery,
    p: int,
    *,
    eps: Fraction | None = None,
    seed: int = 0,
    capacity_c: float | None = None,
    enforce_capacity: bool = False,
    backend: str | None = None,
) -> Plan:
    from repro.algorithms.skewaware import compile_skew_aware

    return compile_skew_aware(
        query,
        p,
        eps=eps,
        seed=seed,
        capacity_c=_CAPACITY_DEFAULTS["skewaware"]
        if capacity_c is None
        else capacity_c,
        enforce_capacity=enforce_capacity,
        backend=backend,
    )


def _compile_multiround(
    query: ConjunctiveQuery,
    p: int,
    *,
    eps: Fraction | None = None,
    seed: int = 0,
    capacity_c: float | None = None,
    enforce_capacity: bool = False,
    backend: str | None = None,
) -> Plan:
    from repro.algorithms.multiround import compile_multiround

    logical = build_plan(query, Fraction(0) if eps is None else Fraction(eps))
    return compile_multiround(
        logical,
        p,
        seed=seed,
        capacity_c=_CAPACITY_DEFAULTS["multiround"]
        if capacity_c is None
        else capacity_c,
        enforce_capacity=enforce_capacity,
        backend=backend,
    )


def _compile_partial(
    query: ConjunctiveQuery,
    p: int,
    *,
    eps: Fraction | None = None,
    seed: int = 0,
    capacity_c: float | None = None,
    enforce_capacity: bool = False,
    backend: str | None = None,
) -> Plan:
    from repro.algorithms.partial import compile_partial_hypercube

    if eps is None:
        raise QueryError("the partial algorithm requires an explicit eps")
    if enforce_capacity:
        raise QueryError(
            "the partial algorithm never enforces capacity (it runs "
            "below the space exponent by design)"
        )
    return compile_partial_hypercube(
        query,
        p,
        eps,
        seed=seed,
        capacity_c=_CAPACITY_DEFAULTS["partial"]
        if capacity_c is None
        else capacity_c,
        backend=backend,
    )


_REGISTRY: dict[str, AlgorithmSpec] = {}


def register(spec: AlgorithmSpec) -> AlgorithmSpec:
    """Install (or replace) one algorithm in the registry."""
    _REGISTRY[spec.name] = spec
    return spec


def get_algorithm(name: str) -> AlgorithmSpec:
    """The registered spec for ``name``.

    Raises:
        QueryError: for unknown names (the message lists the options,
            so CLI/RPC callers can surface it verbatim).
    """
    spec = _REGISTRY.get(name)
    if spec is None:
        raise QueryError(
            f"unknown algorithm {name!r}; registered: "
            f"{', '.join(algorithm_names())}"
        )
    return spec


def algorithm_names() -> tuple[str, ...]:
    """Registered algorithm names, sorted."""
    return tuple(sorted(_REGISTRY))


def compile_with(
    name: str,
    query: ConjunctiveQuery,
    p: int,
    *,
    eps: Fraction | None = None,
    seed: int = 0,
    capacity_c: float | None = None,
    enforce_capacity: bool = False,
    backend: str | None = None,
) -> Plan:
    """Compile ``query`` with the named algorithm's registered compiler.

    ``capacity_c=None`` resolves to the algorithm's ``run_*`` default,
    keeping registry-compiled plans bit-identical to direct calls.
    """
    return get_algorithm(name).compile(
        query,
        p,
        eps=eps,
        seed=seed,
        capacity_c=capacity_c,
        enforce_capacity=enforce_capacity,
        backend=backend,
    )


register(
    AlgorithmSpec(
        name="hypercube",
        compile=_compile_hypercube,
        cost=_hypercube_cost,
        default_capacity_c=_CAPACITY_DEFAULTS["hypercube"],
        replaces="run_hypercube",
    )
)
register(
    AlgorithmSpec(
        name="skewaware",
        compile=_compile_skew_aware,
        cost=_skewaware_cost,
        default_capacity_c=_CAPACITY_DEFAULTS["skewaware"],
        replaces="run_hypercube_skew_aware",
    )
)
register(
    AlgorithmSpec(
        name="multiround",
        compile=_compile_multiround,
        cost=_multiround_cost,
        default_capacity_c=_CAPACITY_DEFAULTS["multiround"],
        replaces="run_plan",
    )
)
register(
    AlgorithmSpec(
        name="partial",
        compile=_compile_partial,
        cost=_partial_cost,
        default_capacity_c=_CAPACITY_DEFAULTS["partial"],
        exact=False,
        replaces="run_partial_hypercube",
    )
)
