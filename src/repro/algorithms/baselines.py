"""Baseline algorithms the paper measures HyperCube against.

* :func:`run_broadcast_join` -- ship every relation to every server
  (the degenerate ``eps = 1`` regime): one round, replication ``p``.
* :func:`run_single_server` -- ship everything to server 0 (the
  ``p = 1`` regime in disguise): one round, maximum load ``N``.
* :func:`run_single_attribute_join` -- hash all relations on one
  shared variable (the one-round algorithm of Koutris-Suciu [17] for
  queries with a variable in every atom, Corollary 3.10's class).
* :func:`run_cartesian_grid` -- the introduction's drug-interaction
  tradeoff: compute a cartesian product ``A x B`` with a ``g x g``
  grid of reducers; replication rate ``g``, reducer input ``2n/g``,
  optimal at ``g = sqrt(p)``.

All four compile to the shared round engine --
:class:`~repro.engine.steps.Broadcast`,
:class:`~repro.engine.steps.ToServer`, a one-dimensional
:class:`~repro.engine.steps.HashRoute` grid, and
:class:`~repro.engine.steps.RoundRobinGrid` respectively -- and honour
``backend=`` like every other executor in the package.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.backend import resolve_backend
from repro.core.query import ConjunctiveQuery, QueryError
from repro.data.columnar import ColumnarRelation, columnar_database
from repro.data.database import Database, Relation, bits_per_value
from repro.engine import (
    Broadcast,
    GridSpec,
    HashRoute,
    RoundEngine,
    RoundRobinGrid,
    ToServer,
    collect_answers,
    fragment_tuple_count,
)
from repro.mpc.model import MPCConfig
from repro.mpc.routing import HashFamily
from repro.mpc.simulator import MPCSimulator
from repro.mpc.stats import SimulationReport


@dataclass(frozen=True)
class BaselineResult:
    """Answers plus communication statistics for a baseline run."""

    answers: tuple[tuple[int, ...], ...]
    report: SimulationReport


def run_broadcast_join(
    query: ConjunctiveQuery,
    database: Database,
    p: int,
    backend: str | None = None,
) -> BaselineResult:
    """Every relation broadcast to every worker; one round.

    Always correct; replication rate is exactly ``p`` -- the
    degenerate end of the space-exponent scale (``eps = 1``).
    """
    config = MPCConfig(
        p=p, eps=Fraction(1), backend=resolve_backend(backend)
    )
    backend = config.backend
    simulator = MPCSimulator(
        config, input_bits=database.total_bits, enforce_capacity=True
    )
    engine = RoundEngine(simulator)
    steps = [Broadcast(relation=atom.name) for atom in query.atoms]
    engine.run_round(steps, columnar_database(database, backend))
    # Every worker holds the whole input; evaluating at worker 0
    # suffices and already yields the sorted full answer.
    answers, _ = collect_answers(query, simulator, (0,), backend)
    return BaselineResult(answers=answers, report=simulator.report)


def run_single_server(
    query: ConjunctiveQuery,
    database: Database,
    p: int = 1,
    backend: str | None = None,
) -> BaselineResult:
    """Everything to worker 0; the sequential strawman."""
    config = MPCConfig(
        p=max(1, p), eps=Fraction(1), backend=resolve_backend(backend)
    )
    backend = config.backend
    simulator = MPCSimulator(
        config, input_bits=database.total_bits, enforce_capacity=False
    )
    engine = RoundEngine(simulator)
    steps = [
        ToServer(relation=atom.name, worker=0) for atom in query.atoms
    ]
    engine.run_round(steps, columnar_database(database, backend))
    answers, _ = collect_answers(query, simulator, (0,), backend)
    return BaselineResult(answers=answers, report=simulator.report)


def run_single_attribute_join(
    query: ConjunctiveQuery,
    database: Database,
    p: int,
    seed: int = 0,
    backend: str | None = None,
) -> BaselineResult:
    """Hash-partition every relation on one variable shared by all atoms.

    This is the classical parallel hash join ([17]'s one-round class):
    it requires a variable occurring in *every* atom -- exactly the
    queries with ``tau* = 1`` (Corollary 3.10).  Replication rate 1.
    On the engine it is simply HyperCube routing over a
    one-dimensional grid owned by the shared variable.

    Raises:
        QueryError: if no variable is shared by all atoms.
    """
    shared = None
    for variable in query.variables:
        if all(
            variable in atom.variable_set for atom in query.atoms
        ):
            shared = variable
            break
    if shared is None:
        raise QueryError(
            "single-attribute hash join needs a variable in every atom "
            f"(tau* = 1); {query.name} has none"
        )
    config = MPCConfig(
        p=p, eps=Fraction(0), backend=resolve_backend(backend)
    )
    backend = config.backend
    simulator = MPCSimulator(
        config, input_bits=database.total_bits, enforce_capacity=False
    )
    engine = RoundEngine(simulator)
    grid = GridSpec(
        variables=(shared,), dimensions=(p,), hashes=HashFamily(seed)
    )
    steps = [
        # The classical hash join routes *every* tuple by its hash --
        # it never inspects the other columns -- so keep the
        # repeated-variable short-circuit off to preserve the
        # baseline's exact shipping statistics.
        HashRoute(
            relation=atom.name,
            atom=atom,
            grid=grid,
            filter_contradictions=False,
        )
        for atom in query.atoms
    ]
    engine.run_round(steps, columnar_database(database, backend))
    answers, _ = collect_answers(query, simulator, range(p), backend)
    return BaselineResult(answers=answers, report=simulator.report)


@dataclass(frozen=True)
class CartesianResult:
    """The drug-interaction tradeoff, measured.

    Attributes:
        num_pairs: pairs examined (must be ``|A| * |B|``).
        replication_rate: times each input item was shipped (``g``).
        max_reducer_tuples: largest reducer input (``~ 2n/g``).
        report: communication statistics.
    """

    num_pairs: int
    replication_rate: float
    max_reducer_tuples: int
    report: SimulationReport


def run_cartesian_grid(
    left: Relation,
    right: Relation,
    p: int,
    groups: int | None = None,
    backend: str | None = None,
) -> CartesianResult:
    """Compute ``left x right`` with a ``g x g`` reducer grid.

    Each side is split into ``g`` groups; reducer ``(i, j)`` receives
    group ``i`` of ``left`` and group ``j`` of ``right`` -- Ullman's
    drug-interaction example from the introduction.  With ``g**2 <= p``
    each reducer is a worker; the tradeoff is replication ``g`` versus
    reducer input ``|left|/g + |right|/g``.  On the engine each side
    is one :class:`~repro.engine.steps.RoundRobinGrid` step pinning
    its own axis of the grid.

    Args:
        left, right: unary or wider relations (rows are items).
        p: number of workers; reducers use the first ``g*g``.
        groups: ``g``; defaults to ``floor(sqrt(p))`` (the optimum).
        backend: ``"pure"``, ``"numpy"`` or ``"auto"``.
    """
    import math

    g = groups if groups is not None else max(1, math.isqrt(p))
    if g * g > p:
        raise ValueError(f"grid {g}x{g} needs {g * g} workers, have {p}")
    n_bits = bits_per_value(max(left.domain_size, right.domain_size))
    input_bits = (len(left) + len(right)) * n_bits
    config = MPCConfig(
        p=p, eps=Fraction(1, 2), c=4.0, backend=resolve_backend(backend)
    )
    backend = config.backend
    simulator = MPCSimulator(config, input_bits, enforce_capacity=False)
    engine = RoundEngine(simulator)

    grid = GridSpec(variables=("left", "right"), dimensions=(g, g))
    steps = [
        RoundRobinGrid(relation=left.name, grid=grid, axis=0),
        RoundRobinGrid(relation=right.name, grid=grid, axis=1),
    ]
    sources = {
        relation.name: ColumnarRelation.from_relation(relation, backend)
        for relation in (left, right)
    }
    engine.run_round(steps, sources)

    pairs = 0
    max_reducer = 0
    for reducer in range(g * g):
        a = fragment_tuple_count(simulator, reducer, left.name, backend)
        b = fragment_tuple_count(simulator, reducer, right.name, backend)
        pairs += a * b
        max_reducer = max(max_reducer, a + b)
    replication = (
        simulator.report.rounds[0].total_tuples / (len(left) + len(right))
        if (len(left) + len(right))
        else 0.0
    )
    return CartesianResult(
        num_pairs=pairs,
        replication_rate=replication,
        max_reducer_tuples=max_reducer,
        report=simulator.report,
    )
