"""Baseline algorithms the paper measures HyperCube against.

* :func:`run_broadcast_join` -- ship every relation to every server
  (the degenerate ``eps = 1`` regime): one round, replication ``p``.
* :func:`run_single_server` -- ship everything to server 0 (the
  ``p = 1`` regime in disguise): one round, maximum load ``N``.
* :func:`run_single_attribute_join` -- hash all relations on one
  shared variable (the one-round algorithm of Koutris-Suciu [17] for
  queries with a variable in every atom, Corollary 3.10's class).
* :func:`run_cartesian_grid` -- the introduction's drug-interaction
  tradeoff: compute a cartesian product ``A x B`` with a ``g x g``
  grid of reducers; replication rate ``g``, reducer input ``2n/g``,
  optimal at ``g = sqrt(p)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.algorithms.localjoin import evaluate_query
from repro.core.query import ConjunctiveQuery, QueryError
from repro.data.database import Database, Relation, bits_per_value
from repro.mpc.model import MPCConfig
from repro.mpc.routing import HashFamily
from repro.mpc.simulator import MPCSimulator
from repro.mpc.stats import SimulationReport


@dataclass(frozen=True)
class BaselineResult:
    """Answers plus communication statistics for a baseline run."""

    answers: tuple[tuple[int, ...], ...]
    report: SimulationReport


def run_broadcast_join(
    query: ConjunctiveQuery, database: Database, p: int
) -> BaselineResult:
    """Every relation broadcast to every worker; one round.

    Always correct; replication rate is exactly ``p`` -- the
    degenerate end of the space-exponent scale (``eps = 1``).
    """
    config = MPCConfig(p=p, eps=Fraction(1))
    simulator = MPCSimulator(
        config, input_bits=database.total_bits, enforce_capacity=True
    )
    simulator.begin_round()
    for atom in query.atoms:
        relation = database[atom.name]
        simulator.broadcast_from_input(
            atom.name, relation.tuples, relation.tuple_bits
        )
    simulator.end_round()
    local = {
        atom.name: simulator.worker_rows(0, atom.name)
        for atom in query.atoms
    }
    return BaselineResult(
        answers=evaluate_query(query, local), report=simulator.report
    )


def run_single_server(
    query: ConjunctiveQuery, database: Database, p: int = 1
) -> BaselineResult:
    """Everything to worker 0; the sequential strawman."""
    config = MPCConfig(p=max(1, p), eps=Fraction(1))
    simulator = MPCSimulator(
        config, input_bits=database.total_bits, enforce_capacity=False
    )
    simulator.begin_round()
    for atom in query.atoms:
        relation = database[atom.name]
        simulator.send_from_input(
            atom.name, 0, relation.tuples, relation.tuple_bits
        )
    simulator.end_round()
    local = {
        atom.name: simulator.worker_rows(0, atom.name)
        for atom in query.atoms
    }
    return BaselineResult(
        answers=evaluate_query(query, local), report=simulator.report
    )


def run_single_attribute_join(
    query: ConjunctiveQuery,
    database: Database,
    p: int,
    seed: int = 0,
) -> BaselineResult:
    """Hash-partition every relation on one variable shared by all atoms.

    This is the classical parallel hash join ([17]'s one-round class):
    it requires a variable occurring in *every* atom -- exactly the
    queries with ``tau* = 1`` (Corollary 3.10).  Replication rate 1.

    Raises:
        QueryError: if no variable is shared by all atoms.
    """
    shared = None
    for variable in query.variables:
        if all(
            variable in atom.variable_set for atom in query.atoms
        ):
            shared = variable
            break
    if shared is None:
        raise QueryError(
            "single-attribute hash join needs a variable in every atom "
            f"(tau* = 1); {query.name} has none"
        )
    hashes = HashFamily(seed)
    config = MPCConfig(p=p, eps=Fraction(0))
    simulator = MPCSimulator(
        config, input_bits=database.total_bits, enforce_capacity=False
    )
    simulator.begin_round()
    for atom in query.atoms:
        relation = database[atom.name]
        position = atom.variables.index(shared)
        batches: dict[int, list[tuple[int, ...]]] = {}
        for row in relation:
            worker = hashes.hash_value(shared, row[position], p)
            batches.setdefault(worker, []).append(row)
        for worker, rows in batches.items():
            simulator.send_from_input(
                atom.name, worker, rows, relation.tuple_bits
            )
    simulator.end_round()
    answers: set[tuple[int, ...]] = set()
    for worker in range(p):
        local = {
            atom.name: simulator.worker_rows(worker, atom.name)
            for atom in query.atoms
        }
        answers.update(evaluate_query(query, local))
    return BaselineResult(
        answers=tuple(sorted(answers)), report=simulator.report
    )


@dataclass(frozen=True)
class CartesianResult:
    """The drug-interaction tradeoff, measured.

    Attributes:
        num_pairs: pairs examined (must be ``|A| * |B|``).
        replication_rate: times each input item was shipped (``g``).
        max_reducer_tuples: largest reducer input (``~ 2n/g``).
        report: communication statistics.
    """

    num_pairs: int
    replication_rate: float
    max_reducer_tuples: int
    report: SimulationReport


def run_cartesian_grid(
    left: Relation,
    right: Relation,
    p: int,
    groups: int | None = None,
) -> CartesianResult:
    """Compute ``left x right`` with a ``g x g`` reducer grid.

    Each side is split into ``g`` groups; reducer ``(i, j)`` receives
    group ``i`` of ``left`` and group ``j`` of ``right`` -- Ullman's
    drug-interaction example from the introduction.  With ``g**2 <= p``
    each reducer is a worker; the tradeoff is replication ``g`` versus
    reducer input ``|left|/g + |right|/g``.

    Args:
        left, right: unary or wider relations (rows are items).
        p: number of workers; reducers use the first ``g*g``.
        groups: ``g``; defaults to ``floor(sqrt(p))`` (the optimum).
    """
    import math

    g = groups if groups is not None else max(1, math.isqrt(p))
    if g * g > p:
        raise ValueError(f"grid {g}x{g} needs {g * g} workers, have {p}")
    n_bits = bits_per_value(max(left.domain_size, right.domain_size))
    input_bits = (len(left) + len(right)) * n_bits
    config = MPCConfig(p=p, eps=Fraction(1, 2), c=4.0)
    simulator = MPCSimulator(config, input_bits, enforce_capacity=False)

    def group_of(index: int) -> int:
        return index % g

    simulator.begin_round()
    left_groups: dict[int, list[tuple[int, ...]]] = {}
    for index, row in enumerate(left.tuples):
        left_groups.setdefault(group_of(index), []).append(row)
    right_groups: dict[int, list[tuple[int, ...]]] = {}
    for index, row in enumerate(right.tuples):
        right_groups.setdefault(group_of(index), []).append(row)
    for i in range(g):
        for j in range(g):
            reducer = i * g + j
            simulator.send_from_input(
                left.name, reducer, left_groups.get(i, []), left.tuple_bits
            )
            simulator.send_from_input(
                right.name, reducer, right_groups.get(j, []), right.tuple_bits
            )
    simulator.end_round()

    pairs = 0
    max_reducer = 0
    for i in range(g):
        for j in range(g):
            reducer = i * g + j
            a = simulator.worker_rows(reducer, left.name)
            b = simulator.worker_rows(reducer, right.name)
            pairs += len(a) * len(b)
            max_reducer = max(max_reducer, len(a) + len(b))
    replication = (
        simulator.report.rounds[0].total_tuples / (len(left) + len(right))
        if (len(left) + len(right))
        else 0.0
    )
    return CartesianResult(
        num_pairs=pairs,
        replication_rate=replication,
        max_reducer_tuples=max_reducer,
        report=simulator.report,
    )
