"""Baseline algorithms the paper measures HyperCube against.

* :func:`run_broadcast_join` -- ship every relation to every server
  (the degenerate ``eps = 1`` regime): one round, replication ``p``.
* :func:`run_single_server` -- ship everything to server 0 (the
  ``p = 1`` regime in disguise): one round, maximum load ``N``.
* :func:`run_single_attribute_join` -- hash all relations on one
  shared variable (the one-round algorithm of Koutris-Suciu [17] for
  queries with a variable in every atom, Corollary 3.10's class).
* :func:`run_cartesian_grid` -- the introduction's drug-interaction
  tradeoff: compute a cartesian product ``A x B`` with a ``g x g``
  grid of reducers; replication rate ``g``, reducer input ``2n/g``,
  optimal at ``g = sqrt(p)``.

All four compile to the shared plan IR --
:class:`~repro.engine.steps.Broadcast`,
:class:`~repro.engine.steps.ToServer`, a one-dimensional
:class:`~repro.engine.steps.HashRoute` grid, and
:class:`~repro.engine.steps.RoundRobinGrid` respectively -- via pure
``compile_*`` functions whose plans
:func:`~repro.engine.executor.execute_plan` runs; all honour
``backend=`` like every other executor in the package.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.backend import resolve_backend
from repro.core.query import ConjunctiveQuery, QueryError
from repro.data.columnar import ColumnarRelation
from repro.data.database import Database, Relation, bits_per_value
from repro.engine import (
    Broadcast,
    CollectAnswers,
    GridSpec,
    HashRoute,
    Plan,
    PlanRound,
    PlanSignature,
    RoundRobinGrid,
    ToServer,
    execute_plan,
    fragment_tuple_count,
)
from repro.mpc.routing import HashFamily
from repro.mpc.stats import SimulationReport


@dataclass(frozen=True)
class BaselineResult:
    """Answers plus communication statistics for a baseline run."""

    answers: tuple[tuple[int, ...], ...]
    report: SimulationReport


def compile_broadcast_join(
    query: ConjunctiveQuery, p: int, backend: str | None = None
) -> Plan:
    """Compile the broadcast join: every atom to every worker."""
    return Plan(
        signature=PlanSignature(
            algorithm="broadcast",
            query_text=str(query),
            eps=Fraction(1),
            p=p,
            backend=resolve_backend(backend),
            seed=0,
            capacity_c=2.0,
            enforce_capacity=True,
        ),
        rounds=(
            PlanRound(
                steps=tuple(
                    Broadcast(relation=atom.name) for atom in query.atoms
                )
            ),
        ),
        # Every worker holds the whole input; evaluating at worker 0
        # suffices and already yields the sorted full answer.
        finalize=CollectAnswers(query=query, workers=1),
    )


def run_broadcast_join(
    query: ConjunctiveQuery,
    database: Database,
    p: int,
    backend: str | None = None,
) -> BaselineResult:
    """Every relation broadcast to every worker; one round.

    Always correct; replication rate is exactly ``p`` -- the
    degenerate end of the space-exponent scale (``eps = 1``).
    """
    plan = compile_broadcast_join(query, p, backend)
    execution = execute_plan(plan, database)
    return BaselineResult(
        answers=execution.answers, report=execution.report
    )


def compile_single_server(
    query: ConjunctiveQuery, p: int = 1, backend: str | None = None
) -> Plan:
    """Compile the single-server strawman: everything to worker 0."""
    return Plan(
        signature=PlanSignature(
            algorithm="single_server",
            query_text=str(query),
            eps=Fraction(1),
            p=max(1, p),
            backend=resolve_backend(backend),
            seed=0,
            capacity_c=2.0,
            enforce_capacity=False,
        ),
        rounds=(
            PlanRound(
                steps=tuple(
                    ToServer(relation=atom.name, worker=0)
                    for atom in query.atoms
                )
            ),
        ),
        finalize=CollectAnswers(query=query, workers=1),
    )


def run_single_server(
    query: ConjunctiveQuery,
    database: Database,
    p: int = 1,
    backend: str | None = None,
) -> BaselineResult:
    """Everything to worker 0; the sequential strawman."""
    plan = compile_single_server(query, p, backend)
    execution = execute_plan(plan, database)
    return BaselineResult(
        answers=execution.answers, report=execution.report
    )


def compile_single_attribute_join(
    query: ConjunctiveQuery,
    p: int,
    seed: int = 0,
    backend: str | None = None,
) -> Plan:
    """Compile the classical hash join on one all-atom shared variable.

    Raises:
        QueryError: if no variable is shared by all atoms.
    """
    shared = None
    for variable in query.variables:
        if all(
            variable in atom.variable_set for atom in query.atoms
        ):
            shared = variable
            break
    if shared is None:
        raise QueryError(
            "single-attribute hash join needs a variable in every atom "
            f"(tau* = 1); {query.name} has none"
        )
    grid = GridSpec(
        variables=(shared,), dimensions=(p,), hashes=HashFamily(seed)
    )
    steps = tuple(
        # The classical hash join routes *every* tuple by its hash --
        # it never inspects the other columns -- so keep the
        # repeated-variable short-circuit off to preserve the
        # baseline's exact shipping statistics.
        HashRoute(
            relation=atom.name,
            atom=atom,
            grid=grid,
            filter_contradictions=False,
        )
        for atom in query.atoms
    )
    return Plan(
        signature=PlanSignature(
            algorithm="single_attribute",
            query_text=str(query),
            eps=Fraction(0),
            p=p,
            backend=resolve_backend(backend),
            seed=seed,
            capacity_c=2.0,
            enforce_capacity=False,
        ),
        rounds=(PlanRound(steps=steps),),
        finalize=CollectAnswers(query=query, workers=p),
    )


def run_single_attribute_join(
    query: ConjunctiveQuery,
    database: Database,
    p: int,
    seed: int = 0,
    backend: str | None = None,
) -> BaselineResult:
    """Hash-partition every relation on one variable shared by all atoms.

    This is the classical parallel hash join ([17]'s one-round class):
    it requires a variable occurring in *every* atom -- exactly the
    queries with ``tau* = 1`` (Corollary 3.10).  Replication rate 1.
    On the engine it is simply HyperCube routing over a
    one-dimensional grid owned by the shared variable.

    Raises:
        QueryError: if no variable is shared by all atoms.
    """
    plan = compile_single_attribute_join(query, p, seed, backend)
    execution = execute_plan(plan, database)
    return BaselineResult(
        answers=execution.answers, report=execution.report
    )


@dataclass(frozen=True)
class CartesianResult:
    """The drug-interaction tradeoff, measured.

    Attributes:
        num_pairs: pairs examined (must be ``|A| * |B|``).
        replication_rate: times each input item was shipped (``g``).
        max_reducer_tuples: largest reducer input (``~ 2n/g``).
        report: communication statistics.
    """

    num_pairs: int
    replication_rate: float
    max_reducer_tuples: int
    report: SimulationReport


def run_cartesian_grid(
    left: Relation,
    right: Relation,
    p: int,
    groups: int | None = None,
    backend: str | None = None,
) -> CartesianResult:
    """Compute ``left x right`` with a ``g x g`` reducer grid.

    Each side is split into ``g`` groups; reducer ``(i, j)`` receives
    group ``i`` of ``left`` and group ``j`` of ``right`` -- Ullman's
    drug-interaction example from the introduction.  With ``g**2 <= p``
    each reducer is a worker; the tradeoff is replication ``g`` versus
    reducer input ``|left|/g + |right|/g``.  On the engine each side
    is one :class:`~repro.engine.steps.RoundRobinGrid` step pinning
    its own axis of the grid.

    Args:
        left, right: unary or wider relations (rows are items).
        p: number of workers; reducers use the first ``g*g``.
        groups: ``g``; defaults to ``floor(sqrt(p))`` (the optimum).
        backend: ``"pure"``, ``"numpy"`` or ``"auto"``.
    """
    plan = compile_cartesian_grid(
        left.name, right.name, p, groups=groups, backend=backend
    )
    backend = plan.signature.backend
    n_bits = bits_per_value(max(left.domain_size, right.domain_size))
    input_bits = (len(left) + len(right)) * n_bits
    sources = {
        relation.name: ColumnarRelation.from_relation(relation, backend)
        for relation in (left, right)
    }
    execution = execute_plan(plan, sources, input_bits=input_bits)
    simulator = execution.simulator

    g = plan.rounds[0].steps[0].grid.dimensions[0]
    pairs = 0
    max_reducer = 0
    for reducer in range(g * g):
        a = fragment_tuple_count(simulator, reducer, left.name, backend)
        b = fragment_tuple_count(simulator, reducer, right.name, backend)
        pairs += a * b
        max_reducer = max(max_reducer, a + b)
    replication = (
        simulator.report.rounds[0].total_tuples / (len(left) + len(right))
        if (len(left) + len(right))
        else 0.0
    )
    return CartesianResult(
        num_pairs=pairs,
        replication_rate=replication,
        max_reducer_tuples=max_reducer,
        report=simulator.report,
    )


def compile_cartesian_grid(
    left: str,
    right: str,
    p: int,
    groups: int | None = None,
    backend: str | None = None,
) -> Plan:
    """Compile the ``g x g`` cartesian grid over two relation names.

    The plan has no finalize spec: the caller reads fragment counts
    off the execution's simulator (the tradeoff being measured is
    about shipping, not answers).
    """
    import math

    g = groups if groups is not None else max(1, math.isqrt(p))
    if g * g > p:
        raise ValueError(f"grid {g}x{g} needs {g * g} workers, have {p}")
    grid = GridSpec(variables=("left", "right"), dimensions=(g, g))
    return Plan(
        signature=PlanSignature(
            algorithm="cartesian",
            query_text=f"{left} x {right} @ {g}x{g}",
            eps=Fraction(1, 2),
            p=p,
            backend=resolve_backend(backend),
            seed=0,
            capacity_c=4.0,
            enforce_capacity=False,
        ),
        rounds=(
            PlanRound(
                steps=(
                    RoundRobinGrid(relation=left, grid=grid, axis=0),
                    RoundRobinGrid(relation=right, grid=grid, axis=1),
                )
            ),
        ),
    )
