"""The HyperCube (HC) one-round algorithm (Section 3.1, Prop. 3.2).

Given a query ``q`` with variables ``x_1..x_k`` and a fractional vertex
cover ``v`` of value ``tau``:

1. each variable gets share exponent ``e_i = v_i / tau``;
2. the ``p`` servers form a grid ``[p_1] x ... x [p_k]`` with
   ``p_i ~ p^{e_i}`` (integerised by
   :func:`repro.core.shares.allocate_integer_shares`);
3. independent hashes ``h_i : [n] -> [p_i]`` route every tuple
   ``S_j(a)`` to all grid points agreeing with ``h`` on the dimensions
   of ``vars(S_j)`` -- the tuple is replicated across the free
   dimensions, ``prod_{i not in vars(S_j)} p_i <= p^{1-1/tau}`` times;
4. after the single communication round each server joins its local
   fragments; every potential answer ``(a_1..a_k)`` is assembled at
   grid point ``(h_1(a_1), ..., h_k(a_k))``.

On matching databases the maximum load is ``O(n / p^{1/tau})`` tuples
per server w.h.p., matching Theorem 1.1's lower bound: HC is the
optimal one-round algorithm.

Two execution backends implement the identical protocol:

* ``pure`` (reference): per-row :func:`hc_destinations` plus the
  backtracking local join;
* ``numpy`` (vectorized): each relation's destination ranks are
  computed in one batched pass -- pinned dimensions hashed
  column-wise, free dimensions expanded with a single repeat/tile
  product -- shipped via :meth:`MPCSimulator.send_columns`, and
  joined locally with the columnar hash join.

The backends are cross-checked for exact equality of answers,
per-round received bits/tuples and per-server answer counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import product
from typing import Mapping

from repro.backend import NUMPY, require_numpy, resolve_backend
from repro.algorithms.localjoin import evaluate_query, evaluate_query_columnar
from repro.core.covers import fractional_vertex_cover
from repro.core.query import Atom, ConjunctiveQuery
from repro.core.shares import ShareAllocation, allocate_integer_shares, share_exponents
from repro.data.columnar import ColumnarRelation
from repro.data.database import Database, Relation
from repro.mpc.model import MPCConfig
from repro.mpc.routing import (
    HashFamily,
    grid_rank,
    grid_rank_columns,
    grid_weights,
)
from repro.mpc.simulator import MPCSimulator
from repro.mpc.stats import SimulationReport


@dataclass(frozen=True)
class HCResult:
    """Outcome of a HyperCube run.

    Attributes:
        answers: the union of all servers' outputs, sorted.
        allocation: the integer share grid used.
        report: exact communication statistics of the run.
        per_server_answers: answer count per server (diagnostics).
    """

    answers: tuple[tuple[int, ...], ...]
    allocation: ShareAllocation
    report: SimulationReport
    per_server_answers: tuple[int, ...]


def hc_destinations(
    atom: Atom,
    row: tuple[int, ...],
    shares: Mapping[str, int],
    variable_order: tuple[str, ...],
    hashes: HashFamily,
) -> list[int]:
    """All grid ranks that must receive ``row`` of ``atom``.

    Dimensions owned by the atom's variables are pinned to the hashed
    coordinates; the remaining dimensions range over their full shares
    (this is the replication).  Rows violating repeated-variable
    equality within the atom route nowhere (they can never join); the
    equality check runs *before* any hashing so contradictory rows
    short-circuit without wasted hash work.
    """
    first_position = atom.first_positions
    for position, variable in enumerate(atom.variables):
        if row[position] != row[first_position[variable]]:
            return []
    pinned = {
        variable: hashes.hash_value(
            variable, row[position], shares[variable]
        )
        for variable, position in first_position.items()
    }

    axes = []
    for variable in variable_order:
        if variable in pinned:
            axes.append((pinned[variable],))
        else:
            axes.append(tuple(range(shares[variable])))
    dimensions = tuple(shares[variable] for variable in variable_order)
    return [
        grid_rank(coordinates, dimensions)
        for coordinates in product(*axes)
    ]


def hc_route_columns(
    atom: Atom,
    relation: ColumnarRelation,
    shares: Mapping[str, int],
    variable_order: tuple[str, ...],
    hashes: HashFamily,
) -> tuple:
    """Batched destination ranks for every row of a columnar relation.

    The vectorized counterpart of mapping :func:`hc_destinations`
    over the relation: one pass filters repeated-variable
    contradictions, one :meth:`HashFamily.hash_column` call per
    distinct atom variable pins its dimension, and the free-dimension
    replication is expanded with a single repeat/tile product.

    Returns:
        ``(columns, destinations, row_indices)`` -- the surviving
        source columns, a flat int64 array of grid ranks, and gather
        indices into ``columns`` parallel to ``destinations`` (each
        surviving row appears once per free-grid point, destinations
        of one row contiguous and ascending, matching the scalar
        path's ordering).
    """
    numpy = require_numpy()
    columns = relation.columns
    first_position = atom.first_positions
    mask = None
    for position, variable in enumerate(atom.variables):
        first = first_position[variable]
        if first != position:
            equal = columns[position] == columns[first]
            mask = equal if mask is None else (mask & equal)
    if mask is not None:
        columns = tuple(column[mask] for column in columns)
    num_rows = len(columns[0]) if columns else 0

    dimensions = tuple(shares[variable] for variable in variable_order)
    weights = dict(zip(variable_order, grid_weights(dimensions)))

    # Rank of each row's grid point with all free dimensions at the
    # origin; the free sub-grid is then enumerated by rank offsets.
    coordinate_columns = [
        hashes.hash_column(
            variable, columns[first_position[variable]], shares[variable]
        )
        if variable in first_position
        else numpy.zeros(num_rows, dtype=numpy.int64)
        for variable in variable_order
    ]
    base = grid_rank_columns(coordinate_columns, dimensions)

    offsets = numpy.zeros(1, dtype=numpy.int64)
    for variable in variable_order:
        if variable not in first_position:
            steps = numpy.arange(shares[variable]) * weights[variable]
            offsets = (offsets[:, None] + steps[None, :]).reshape(-1)
    replication = len(offsets)

    destinations = (base[:, None] + offsets[None, :]).reshape(-1)
    row_indices = numpy.repeat(
        numpy.arange(num_rows, dtype=numpy.int64), replication
    )
    return columns, destinations, row_indices


def run_hypercube(
    query: ConjunctiveQuery,
    database: Database,
    p: int,
    eps: Fraction | float | None = None,
    cover: Mapping[str, Fraction] | None = None,
    seed: int = 0,
    capacity_c: float = 4.0,
    enforce_capacity: bool = False,
    backend: str | None = None,
) -> HCResult:
    """Run one round of HC on the simulator and return all answers.

    Args:
        query: a full conjunctive query (connected or not).
        database: instances for every atom of the query.
        p: number of servers.
        eps: space exponent for capacity accounting; defaults to the
            query's own space exponent ``1 - 1/tau*`` (the budget at
            which Proposition 3.2 guarantees success).
        cover: fractional vertex cover to derive shares from; defaults
            to an optimal one.
        seed: hash-family seed (determinism / repetition).
        capacity_c: the constant in the capacity bound.
        enforce_capacity: raise on overload instead of just recording.
        backend: ``"pure"`` (default, reference), ``"numpy"``
            (vectorized) or ``"auto"``; both produce identical
            answers, loads and statistics.

    Returns:
        An :class:`HCResult`; ``answers`` equals the true query answer
        on any database (HC never misses: every potential answer is
        assembled at exactly one grid point).
    """
    if cover is None:
        cover = fractional_vertex_cover(query)
    exponents = share_exponents(query, cover)
    allocation = allocate_integer_shares(exponents, p)
    shares = allocation.shares
    variable_order = query.variables
    hashes = HashFamily(seed)

    if eps is None:
        tau = sum((Fraction(v) for v in cover.values()), start=Fraction(0))
        eps = max(Fraction(0), 1 - 1 / tau)
    config = MPCConfig(
        p=p, eps=Fraction(eps), c=capacity_c,
        backend=resolve_backend(backend),
    )
    backend = config.backend  # MPCConfig is the source of truth
    simulator = MPCSimulator(
        config,
        input_bits=database.total_bits,
        enforce_capacity=enforce_capacity,
    )

    simulator.begin_round()
    if backend == NUMPY:
        for atom in query.atoms:
            relation = ColumnarRelation.from_relation(
                database[atom.name], backend=NUMPY
            )
            columns, destinations, row_indices = hc_route_columns(
                atom, relation, shares, variable_order, hashes
            )
            simulator.send_columns_from_input(
                atom.name,
                destinations,
                columns,
                bits_per_tuple=relation.tuple_bits,
                row_indices=row_indices,
            )
    else:
        for atom in query.atoms:
            relation: Relation = database[atom.name]
            batches: dict[int, list[tuple[int, ...]]] = {}
            for row in relation:
                for destination in hc_destinations(
                    atom, row, shares, variable_order, hashes
                ):
                    batches.setdefault(destination, []).append(row)
            for destination, rows in batches.items():
                simulator.send_from_input(
                    atom.name,
                    destination,
                    rows,
                    bits_per_tuple=relation.tuple_bits,
                )
    simulator.end_round()

    answers: set[tuple[int, ...]] = set()
    per_server: list[int] = []
    for worker in range(allocation.used_servers):
        if backend == NUMPY:
            found = _local_join_columnar(query, simulator, worker)
        else:
            local = {
                atom.name: simulator.worker_rows(worker, atom.name)
                for atom in query.atoms
            }
            found = evaluate_query(query, local)
        per_server.append(len(found))
        answers.update(found)
    per_server.extend([0] * (p - allocation.used_servers))

    return HCResult(
        answers=tuple(sorted(answers)),
        allocation=allocation,
        report=simulator.report,
        per_server_answers=tuple(per_server),
    )


def _local_join_columnar(
    query: ConjunctiveQuery, simulator: MPCSimulator, worker: int
) -> tuple[tuple[int, ...], ...]:
    """Evaluate the query at one worker over its columnar fragments."""
    numpy = require_numpy()
    fragments: dict[str, tuple] = {}
    for atom in query.atoms:
        batches = simulator.worker_column_batches(worker, atom.name)
        if not batches:
            return ()
        if len(batches) == 1:
            fragments[atom.name] = batches[0]
        else:
            fragments[atom.name] = tuple(
                numpy.concatenate([batch[i] for batch in batches])
                for i in range(len(batches[0]))
            )
    # Routing delivers every row at most once per worker, so the
    # fragments are duplicate-free and the dedup/sort passes can be
    # skipped; run_hypercube sorts the final answer union itself.
    return evaluate_query_columnar(query, fragments, assume_unique=True)
