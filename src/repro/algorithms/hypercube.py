"""The HyperCube (HC) one-round algorithm (Section 3.1, Prop. 3.2).

Given a query ``q`` with variables ``x_1..x_k`` and a fractional vertex
cover ``v`` of value ``tau``:

1. each variable gets share exponent ``e_i = v_i / tau``;
2. the ``p`` servers form a grid ``[p_1] x ... x [p_k]`` with
   ``p_i ~ p^{e_i}`` (integerised by
   :func:`repro.core.shares.allocate_integer_shares`);
3. independent hashes ``h_i : [n] -> [p_i]`` route every tuple
   ``S_j(a)`` to all grid points agreeing with ``h`` on the dimensions
   of ``vars(S_j)`` -- the tuple is replicated across the free
   dimensions, ``prod_{i not in vars(S_j)} p_i <= p^{1-1/tau}`` times;
4. after the single communication round each server joins its local
   fragments; every potential answer ``(a_1..a_k)`` is assembled at
   grid point ``(h_1(a_1), ..., h_k(a_k))``.

On matching databases the maximum load is ``O(n / p^{1/tau})`` tuples
per server w.h.p., matching Theorem 1.1's lower bound: HC is the
optimal one-round algorithm.

Compilation and execution are split: :func:`compile_hypercube` is a
pure function of (query, p, eps, cover, seed, backend) emitting an
immutable :class:`~repro.engine.plan.Plan` -- one
:class:`~repro.engine.steps.HashRoute` per atom on the share grid plus
a local-eval spec -- and :func:`~repro.engine.executor.execute_plan`
runs it tuple-at-a-time (``pure``, the reference) or column-wise
(``numpy``).  :func:`run_hypercube` composes the two; a serving layer
caches the plan and re-executes it per request.  The backends are
cross-checked for exact equality of answers, per-round received
bits/tuples and per-server answer counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping

from repro.backend import resolve_backend
from repro.core.covers import fractional_vertex_cover
from repro.core.query import Atom, ConjunctiveQuery
from repro.core.shares import ShareAllocation, allocate_integer_shares, share_exponents
from repro.data.columnar import ColumnarDatabase
from repro.data.database import Database
from repro.engine import (
    CollectAnswers,
    GridSpec,
    HashRoute,
    Plan,
    PlanRound,
    PlanSignature,
    RoundProfiler,
    execute_plan,
)
from repro.mpc.routing import HashFamily
from repro.mpc.stats import SimulationReport


@dataclass(frozen=True)
class HCResult:
    """Outcome of a HyperCube run.

    Attributes:
        answers: the union of all servers' outputs, sorted.
        allocation: the integer share grid used.
        report: exact communication statistics of the run.
        per_server_answers: answer count per server (diagnostics).
    """

    answers: tuple[tuple[int, ...], ...]
    allocation: ShareAllocation
    report: SimulationReport
    per_server_answers: tuple[int, ...]


def hc_destinations(
    atom: Atom,
    row: tuple[int, ...],
    shares: Mapping[str, int],
    variable_order: tuple[str, ...],
    hashes: HashFamily,
) -> list[int]:
    """All grid ranks that must receive ``row`` of ``atom``.

    Dimensions owned by the atom's variables are pinned to the hashed
    coordinates; the remaining dimensions range over their full shares
    (this is the replication).  Rows violating repeated-variable
    equality within the atom route nowhere (they can never join); the
    equality check runs *before* any hashing so contradictory rows
    short-circuit without wasted hash work.

    Thin wrapper over :meth:`repro.engine.steps.HashRoute.destinations`
    (kept as the public per-row routing oracle; the partial-coverage
    algorithm and the routing tests use it directly).
    """
    step = HashRoute(
        relation=atom.name,
        atom=atom,
        grid=GridSpec.from_shares(variable_order, shares, hashes),
    )
    return step.destinations(row, 0, 0)


def compile_hypercube(
    query: ConjunctiveQuery,
    p: int,
    eps: Fraction | float | None = None,
    cover: Mapping[str, Fraction] | None = None,
    seed: int = 0,
    capacity_c: float = 4.0,
    enforce_capacity: bool = False,
    backend: str | None = None,
) -> Plan:
    """Compile one HC round into an immutable plan (data-independent).

    The plan's single round routes every atom over the integer share
    grid; its finalize spec joins fragments at the grid's used servers.
    Compilation never looks at a database, so the plan can be cached
    by ``(query, eps, p, backend)`` and executed repeatedly.
    """
    if cover is None:
        cover = fractional_vertex_cover(query)
    exponents = share_exponents(query, cover)
    allocation = allocate_integer_shares(exponents, p)
    grid = GridSpec.from_shares(
        query.variables, allocation.shares, HashFamily(seed)
    )
    if eps is None:
        tau = sum((Fraction(v) for v in cover.values()), start=Fraction(0))
        eps = max(Fraction(0), 1 - 1 / tau)
    steps = tuple(
        HashRoute(relation=atom.name, atom=atom, grid=grid)
        for atom in query.atoms
    )
    return Plan(
        signature=PlanSignature(
            algorithm="hypercube",
            query_text=str(query),
            eps=Fraction(eps),
            p=p,
            backend=resolve_backend(backend),
            seed=seed,
            capacity_c=capacity_c,
            enforce_capacity=enforce_capacity,
        ),
        rounds=(PlanRound(steps=steps),),
        finalize=CollectAnswers(
            query=query, workers=allocation.used_servers
        ),
        allocation=allocation,
    )


def run_hypercube(
    query: ConjunctiveQuery,
    database: Database | ColumnarDatabase,
    p: int,
    eps: Fraction | float | None = None,
    cover: Mapping[str, Fraction] | None = None,
    seed: int = 0,
    capacity_c: float = 4.0,
    enforce_capacity: bool = False,
    backend: str | None = None,
    profiler: RoundProfiler | None = None,
) -> HCResult:
    """Run one round of HC on the simulator and return all answers.

    Args:
        query: a full conjunctive query (connected or not).
        database: instances for every atom of the query -- a
            row-oriented :class:`Database` or, for the large-``n``
            path, a :class:`ColumnarDatabase` that never materialises
            Python tuples.
        p: number of servers.
        eps: space exponent for capacity accounting; defaults to the
            query's own space exponent ``1 - 1/tau*`` (the budget at
            which Proposition 3.2 guarantees success).
        cover: fractional vertex cover to derive shares from; defaults
            to an optimal one.
        seed: hash-family seed (determinism / repetition).
        capacity_c: the constant in the capacity bound.
        enforce_capacity: raise on overload instead of just recording.
        backend: ``"pure"`` (default, reference), ``"numpy"``
            (vectorized) or ``"auto"``; both produce identical
            answers, loads and statistics.
        profiler: optional per-round route/ship/deliver/local timing
            collector (the CLI's ``--profile``).

    Returns:
        An :class:`HCResult`; ``answers`` equals the true query answer
        on any database (HC never misses: every potential answer is
        assembled at exactly one grid point).

    .. deprecated:: 1.1
        Application code should use :func:`repro.connect` -- the
        Session planner routes to this same compiler (bit-identically)
        when one-round HC wins.  This shim stays for parity suites and
        benchmarks that pin the algorithm on purpose.
    """
    from repro.algorithms.registry import warn_legacy_entry_point

    warn_legacy_entry_point("run_hypercube")
    plan = compile_hypercube(
        query,
        p,
        eps=eps,
        cover=cover,
        seed=seed,
        capacity_c=capacity_c,
        enforce_capacity=enforce_capacity,
        backend=backend,
    )
    execution = execute_plan(plan, database, profiler=profiler)
    return HCResult(
        answers=execution.answers,
        allocation=plan.allocation,
        report=execution.report,
        per_server_answers=execution.per_server,
    )
