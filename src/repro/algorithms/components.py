"""CONNECTED-COMPONENTS on the tuple-based MPC model (Theorem 4.10).

Two algorithms, matching the dichotomy the paper draws:

* :func:`run_hash_to_min` -- a sparse-graph algorithm in the
  tuple-based discipline: per round, every vertex pushes the smallest
  component id it knows to its neighbourhood, and its neighbourhood to
  that smallest vertex (the Hash-to-Min scheme).  On the layered path
  graphs of Theorem 4.10 (components are paths of length
  ``k ~ p^delta``) the number of rounds grows like ``Theta(log k) =
  Omega(log p)`` -- the shape the lower bound dictates: no constant
  number of rounds suffices when the space exponent is below 1.

* :func:`run_dense_two_round` -- the contrast from Karloff et al. [16]:
  when the graph is dense enough that a spanning forest of each
  worker's fragment fits in one worker's budget, two rounds suffice --
  round 1 computes local spanning forests and ships them to a
  coordinator, round 2 broadcasts final labels.

Both run on the simulator, so rounds and received bits are measured
exactly; ground truth comes from the generator's union-find labels.

Hash-to-Min compiles to the shared round engine: each iteration is an
iterate-until-fixpoint driver around one
:class:`~repro.engine.steps.HashRoute` round (a 1-D grid hashing the
destination vertex), so the route/ship loop is the same columnar code
path every other algorithm uses, ``backend="numpy"`` ships each
round's messages as one vectorized send, and the receiver-side state
update reads the round's fleet-wide delivery pool
(:meth:`~repro.mpc.simulator.MPCSimulator.relation_pool`) instead of
looping workers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backend import NUMPY, resolve_backend
from repro.core.query import Atom
from repro.data.columnar import ColumnarRelation
from repro.data.database import bits_per_value
from repro.data.generators import GraphInstance
from repro.engine import (
    FixpointSpec,
    GridSpec,
    HashRoute,
    Plan,
    PlanSignature,
    RoundEngine,
    plan_simulator,
)
from repro.mpc.model import MPCConfig
from repro.mpc.routing import HashFamily
from repro.mpc.simulator import MPCSimulator
from repro.mpc.stats import SimulationReport


@dataclass(frozen=True)
class ComponentsResult:
    """Outcome of a connected-components run.

    Attributes:
        labels: component label per vertex (smallest vertex id in the
            component, so directly comparable with the ground truth).
        rounds_used: communication rounds executed.
        correct: whether the labels match the instance's ground truth.
        report: communication statistics.
    """

    labels: dict[int, int]
    rounds_used: int
    correct: bool
    report: SimulationReport


def _graph_bits(graph: GraphInstance) -> tuple[int, int]:
    """(input bits N, bits per edge tuple) for capacity accounting."""
    value_bits = bits_per_value(graph.num_vertices)
    return 2 * len(graph.edges) * 2 * value_bits, 2 * value_bits


def compile_hash_to_min(
    p: int,
    eps: float = 0.0,
    seed: int = 0,
    max_rounds: int = 64,
    capacity_c: float = 8.0,
    backend: str | None = None,
) -> Plan:
    """Compile the hash-to-min round template into a fixpoint plan.

    The rounds of hash-to-min are data-dependent (each iteration's
    messages come from the evolving cluster state), so the plan
    carries a :class:`~repro.engine.plan.FixpointSpec` -- the 1-D
    routing grid on the destination vertex, the per-iteration mailbox
    key prefix and the iteration bound -- instead of a static round
    list.  :func:`run_hash_to_min` is its driver.
    """
    from fractions import Fraction

    return Plan(
        signature=PlanSignature(
            algorithm="hash_to_min",
            query_text="cc(v, u)",
            eps=Fraction(eps).limit_denominator(64),
            p=p,
            backend=resolve_backend(backend),
            seed=seed,
            capacity_c=capacity_c,
            enforce_capacity=False,
        ),
        fixpoint=FixpointSpec(
            grid=GridSpec(
                variables=("v",), dimensions=(p,), hashes=HashFamily(seed)
            ),
            relation_prefix="cluster@",
            max_rounds=max_rounds,
        ),
    )


def run_hash_to_min(
    graph: GraphInstance,
    p: int,
    eps: float = 0.0,
    seed: int = 0,
    max_rounds: int = 64,
    capacity_c: float = 8.0,
    backend: str | None = None,
) -> ComponentsResult:
    """Hash-to-Min connected components on the MPC simulator.

    State: each vertex ``v`` holds a cluster set ``C(v)`` (initially
    its closed neighbourhood).  Per round every vertex sends
    ``min C(v)`` to all members of ``C(v)`` and ``C(v)`` to
    ``min C(v)``; messages are (vertex, payload-vertex) *tuples* routed
    by hashing the destination vertex -- a legal tuple-based MPC
    algorithm.  Converges to ``C(v) = {component minimum}`` for every
    non-minimum vertex in ``O(log d)`` rounds on diameter-``d``
    components.

    Each iteration compiles to one engine round: the round's
    (destination, payload) pairs form a columnar relation routed by a
    :class:`~repro.engine.steps.HashRoute` over a 1-D grid on the
    destination vertex, and the receiving side folds the delivered
    pairs back into cluster state -- fleet-wide from the round's
    delivery pool under ``numpy``, per worker under ``pure``.  The
    iterate-until-fixpoint driver stops (without spending a round)
    when no vertex would learn anything new.

    Args:
        graph: the input graph with ground-truth labels.
        p: number of workers.
        eps: space exponent used only for capacity accounting.
        seed: vertex-partition hash seed.
        max_rounds: safety bound on iterations.
        capacity_c: capacity constant (loads are recorded, not
            enforced: the experiment reports them).
        backend: ``"pure"`` (default, reference), ``"numpy"`` or
            ``"auto"``; identical labels, rounds and loads either way.
    """
    plan = compile_hash_to_min(
        p,
        eps=eps,
        seed=seed,
        max_rounds=max_rounds,
        capacity_c=capacity_c,
        backend=backend,
    )
    backend = plan.signature.backend
    input_bits, edge_bits = _graph_bits(graph)
    simulator = plan_simulator(plan, input_bits)
    engine = RoundEngine(simulator)
    fixpoint = plan.fixpoint
    grid = fixpoint.grid
    max_rounds = fixpoint.max_rounds

    # Vertex state lives at its home worker: closed neighbourhood sets.
    clusters: dict[int, set[int]] = {
        v: {v} for v in range(1, graph.num_vertices + 1)
    }
    for u, v in graph.edges:
        clusters[u].add(v)
        clusters[v].add(u)

    rounds = 0
    while rounds < max_rounds:
        # Compute the messages every vertex emits this round.
        outbound: dict[int, set[int]] = {
            v: set() for v in clusters
        }  # destination vertex -> payload vertices
        for vertex, cluster in clusters.items():
            smallest = min(cluster)
            for member in cluster:
                outbound.setdefault(member, set()).add(smallest)
            outbound.setdefault(smallest, set()).update(cluster)

        # Detect fixpoint before spending a communication round.
        converged = all(
            payload <= clusters.get(destination, set())
            for destination, payload in outbound.items()
        )
        if converged:
            break

        # One engine round: ship this iteration's (destination,
        # payload) pairs, hashed on the destination vertex.  A fresh
        # mailbox key per iteration keeps each round's delivery pool
        # single-use (workers still keep everything ever received).
        relation = f"{fixpoint.relation_prefix}{rounds + 1}"
        source = ColumnarRelation.from_rows(
            relation,
            [
                (destination, value)
                for destination, payload in outbound.items()
                for value in payload
            ],
            domain_size=graph.num_vertices,
            arity=2,
            backend=backend,
        )
        assert source.tuple_bits == edge_bits
        step = HashRoute(
            relation=relation,
            atom=Atom(name=relation, variables=("v", "u")),
            grid=grid,
            sender=0,  # a worker holding the pair forwards it
        )
        engine.run_round([step], {relation: source})
        rounds += 1

        clusters = _fold_delivered_pairs(
            simulator, relation, clusters, backend
        )

    labels = {v: min(c) for v, c in clusters.items()}
    # Propagate to a fixpoint locally (label of label), mirroring the
    # final local computation a coordinator performs at no extra round.
    changed = True
    while changed:
        changed = False
        for vertex in labels:
            root = labels[labels[vertex]]
            if root < labels[vertex]:
                labels[vertex] = root
                changed = True
    return ComponentsResult(
        labels=labels,
        rounds_used=simulator.report.num_rounds,
        correct=labels == graph.labels,
        report=simulator.report,
    )


def _fold_delivered_pairs(
    simulator: MPCSimulator,
    relation: str,
    clusters: dict[int, set[int]],
    backend: str,
) -> dict[int, set[int]]:
    """One Hash-to-Min state transition from the delivered pairs.

    Every vertex first contracts to its known minimum, then absorbs
    the payload vertices delivered to it this round.  Under ``numpy``
    the round's pairs are read fleet-wide from the delivery pool (no
    per-worker loop); under ``pure`` from each worker's mailbox rows.
    """
    new_clusters: dict[int, set[int]] = {
        v: {min(c)} for v, c in clusters.items()
    }
    if backend == NUMPY:
        pool = simulator.relation_pool(relation)
        if pool is not None and len(pool):
            destinations = pool.columns[0].tolist()
            payloads = pool.columns[1].tolist()
            for destination, value in zip(destinations, payloads):
                new_clusters.setdefault(destination, set()).add(value)
        return new_clusters
    for worker in range(simulator.num_workers):
        for destination, value in simulator.worker_rows(worker, relation):
            new_clusters.setdefault(destination, set()).add(value)
    return new_clusters


def run_dense_two_round(
    graph: GraphInstance,
    p: int,
    eps: float = 0.5,
    seed: int = 0,
    capacity_c: float = 8.0,
) -> ComponentsResult:
    """The two-round dense-graph algorithm in the style of [16].

    Round 1: edges are partitioned across workers by hash; each worker
    computes a spanning forest of its fragment (at most ``n - 1``
    edges, however dense the fragment) and sends the forest to a
    coordinator.  Round 2: the coordinator merges the ``p`` forests
    with union-find and broadcasts the final labels.

    On graphs with ``m >> n p`` the forest shrinkage makes both rounds
    fit the budget -- the density condition of [16]; the experiment
    records loads so the contrast with sparse inputs is visible.
    """
    from fractions import Fraction

    input_bits, edge_bits = _graph_bits(graph)
    config = MPCConfig(p=p, eps=Fraction(eps).limit_denominator(64), c=capacity_c)
    simulator = MPCSimulator(config, input_bits, enforce_capacity=False)
    hashes = HashFamily(seed)

    # Round 1: partition edges, build local forests, ship to worker 0.
    fragments: dict[int, list[tuple[int, int]]] = {}
    for u, v in graph.edges:
        worker = hashes.hash_value("edge", u * graph.num_vertices + v, p)
        fragments.setdefault(worker, []).append((u, v))

    simulator.begin_round()
    for worker, edges in fragments.items():
        forest = _spanning_forest(edges)
        simulator.send(worker, 0, "forest", forest, edge_bits)
    simulator.end_round()

    # Coordinator merges forests.
    merged = simulator.worker_rows(0, "forest")
    labels = _union_find_labels(graph.num_vertices, merged)

    # Round 2: broadcast labels to every worker.
    label_rows = sorted(labels.items())
    simulator.begin_round()
    for worker in range(p):
        simulator.send(0, worker, "labels", label_rows, edge_bits)
    simulator.end_round()

    return ComponentsResult(
        labels=labels,
        rounds_used=simulator.report.num_rounds,
        correct=labels == graph.labels,
        report=simulator.report,
    )


def _spanning_forest(edges: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Kruskal-style forest of an edge list (union-find)."""
    parent: dict[int, int] = {}

    def find(x: int) -> int:
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent.setdefault(parent[x], parent[x])
            x = parent[x]
        return x

    forest = []
    for u, v in edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[max(ru, rv)] = min(ru, rv)
            forest.append((u, v))
    return forest


def _union_find_labels(
    num_vertices: int, edges: list[tuple[int, ...]]
) -> dict[int, int]:
    """Labels (component minimum) from an edge list."""
    parent = list(range(num_vertices + 1))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[max(ru, rv)] = min(ru, rv)
    return {v: find(v) for v in range(1, num_vertices + 1)}
