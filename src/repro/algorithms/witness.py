"""The JOIN-WITNESS experiment (Proposition 3.12).

Query: ``q(w,x,y,z) = R(w), S1(w,x), S2(x,y), S3(y,z), T(z)`` with the
``S_i`` uniform matchings and ``R, T`` random subsets of size
``sqrt(n)``, so ``E[|q(I)|] = 1``: a needle-in-a-haystack.  The paper
proves that no one-round MPC(eps) algorithm with ``eps < 1/2`` finds a
witness except with polynomially small probability.

The experiment mirrors the proof's structure: ``R`` and ``T`` are
small enough to broadcast (their bits are negligible), so the
algorithm's only real task is the chain ``q' = S1, S2, S3`` whose
covering number is 2.  We run the Proposition 3.11 partial algorithm
on ``q'`` with the given ``eps``, intersect the recovered ``q'``
tuples with the broadcast ``R`` and ``T``, and report whether a
witness survived -- repeated over seeds, the hit rate decays like
``p^{-(2(1-eps)-1)}``, exactly the bound's shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.algorithms.partial import run_partial_hypercube
from repro.algorithms.registry import legacy_entry_points_allowed
from repro.core.query import parse_query
from repro.data.database import Database
from repro.data.generators import witness_database

#: The Proposition 3.12 query (chain part only; R and T are broadcast).
WITNESS_CHAIN = parse_query("q(w,x,y,z) = S1(w,x), S2(x,y), S3(y,z)")


@dataclass(frozen=True)
class WitnessResult:
    """Outcome of one JOIN-WITNESS trial.

    Attributes:
        found: True when some full witness was recovered.
        witnesses: the recovered witnesses (may be empty).
        true_witnesses: the actual answers of the full query.
        chain_fraction: fraction of ``q'`` tuples the one-round
            algorithm recovered (the Theorem 3.3 quantity).
    """

    found: bool
    witnesses: tuple[tuple[int, ...], ...]
    true_witnesses: tuple[tuple[int, ...], ...]
    chain_fraction: float


def run_witness_experiment(
    n: int,
    p: int,
    eps: Fraction | float = Fraction(0),
    seed: int = 0,
) -> WitnessResult:
    """One trial of the Proposition 3.12 experiment.

    Args:
        n: domain size (also the size of each matching ``S_i``).
        p: number of servers.
        eps: space exponent; the theorem's regime is ``eps < 1/2``.
        seed: drives the instance and the algorithm's randomness.
    """
    database = witness_database(n, rng=seed)
    r_values = {row[0] for row in database["R"]}
    t_values = {row[0] for row in database["T"]}

    chain_db = Database(
        relations={
            name: database[name] for name in ("S1", "S2", "S3")
        },
        domain_size=n,
    )
    with legacy_entry_points_allowed():
        partial = run_partial_hypercube(
            WITNESS_CHAIN, chain_db, p=p, eps=Fraction(eps), seed=seed
        )

    recovered = tuple(
        row
        for row in partial.answers
        if row[0] in r_values and row[-1] in t_values
    )
    truth = tuple(
        row
        for row in _chain_truth(chain_db)
        if row[0] in r_values and row[-1] in t_values
    )
    return WitnessResult(
        found=bool(recovered),
        witnesses=recovered,
        true_witnesses=truth,
        chain_fraction=partial.reported_fraction,
    )


def _chain_truth(chain_db: Database) -> tuple[tuple[int, ...], ...]:
    from repro.algorithms.localjoin import evaluate_query

    return evaluate_query(
        WITNESS_CHAIN,
        {name: chain_db[name].tuples for name in chain_db.relations},
    )
