"""Algorithms from the paper, plus the baselines it compares against.

* :mod:`repro.algorithms.localjoin` -- exact in-memory evaluation of a
  full conjunctive query (the "unlimited local compute" of a worker).
* :mod:`repro.algorithms.hypercube` -- the one-round HyperCube (HC)
  algorithm of Section 3.1 (Proposition 3.2).
* :mod:`repro.algorithms.partial` -- the below-threshold algorithm of
  Proposition 3.11 that reports a ``p^{1 - (1-eps) tau*}`` fraction of
  answers.
* :mod:`repro.algorithms.multiround` -- the plan executor of
  Proposition 4.1: one HC round per plan level.
* :mod:`repro.algorithms.components` -- CONNECTED-COMPONENTS in the
  tuple-based model (Theorem 4.10) and the dense-graph two-round
  contrast of Karloff et al.
* :mod:`repro.algorithms.witness` -- the JOIN-WITNESS experiment of
  Proposition 3.12.
* :mod:`repro.algorithms.baselines` -- broadcast join, single-server
  evaluation, the cartesian grid of the introduction's drug-interaction
  example, and the single-attribute hash join of Koutris-Suciu [17].
"""

from repro.algorithms.localjoin import (
    evaluate_query,
    evaluate_query_columnar,
    evaluate_query_table,
)
from repro.algorithms.hypercube import HCResult, run_hypercube
from repro.algorithms.partial import PartialResult, run_partial_hypercube
from repro.algorithms.multiround import MultiRoundResult, run_plan
from repro.algorithms.components import (
    ComponentsResult,
    run_dense_two_round,
    run_hash_to_min,
)
from repro.algorithms.witness import WitnessResult, run_witness_experiment
from repro.algorithms.skewaware import (
    SkewAwareResult,
    detect_heavy_hitters,
    run_hypercube_skew_aware,
)
from repro.algorithms.baselines import (
    CartesianResult,
    run_broadcast_join,
    run_cartesian_grid,
    run_single_attribute_join,
    run_single_server,
)

__all__ = [
    "evaluate_query",
    "evaluate_query_columnar",
    "evaluate_query_table",
    "HCResult",
    "run_hypercube",
    "PartialResult",
    "run_partial_hypercube",
    "MultiRoundResult",
    "run_plan",
    "ComponentsResult",
    "run_dense_two_round",
    "run_hash_to_min",
    "WitnessResult",
    "run_witness_experiment",
    "SkewAwareResult",
    "detect_heavy_hitters",
    "run_hypercube_skew_aware",
    "CartesianResult",
    "run_broadcast_join",
    "run_cartesian_grid",
    "run_single_attribute_join",
    "run_single_server",
]
