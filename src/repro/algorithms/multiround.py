"""Multi-round plan execution (Proposition 4.1).

Executes a :class:`repro.core.plans.QueryPlan` on the MPC simulator:
each plan round is one communication round in which every operator
(a ``Gamma^1_eps`` subquery) is evaluated by the HyperCube routing of
Section 3.1, with all operators of the round sharing the same ``p``
servers (their loads add within the round, as in the paper's
"computed in parallel" argument of Lemma 4.3).

View materialisation follows the tuple-based MPC discipline
(Section 4.2.1): the tuples of a view are *join tuples* of the base
relations; between rounds they are re-routed purely by content -- the
executor hashes each view tuple exactly like a base tuple, so the
whole execution is a legal tuple-based MPC(eps) algorithm.

Compilation and execution are split: :func:`compile_multiround` turns
a validated logical :class:`~repro.core.plans.QueryPlan` into an
immutable physical :class:`~repro.engine.plan.Plan` -- per logical
round, one list of :class:`~repro.engine.steps.HashRoute` steps (one
per operator atom, on the operator's own share grid, namespaced per
operator so concurrent operators sharing a relation do not mix
fragments) plus the view-materialisation specs -- and
:func:`~repro.engine.executor.execute_plan` runs it round by round,
materialising views columnar so the ``numpy`` backend never leaves
column space between rounds.  Operator/view schema compatibility is
checked once, at compile time.

The executor returns both the final answer (asserted in tests to equal
the single-site join) and the per-round communication statistics, so
benchmarks can confirm that plan depth equals the number of simulator
rounds and that loads respect the ``eps`` budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backend import resolve_backend
from repro.core.covers import fractional_vertex_cover
from repro.core.plans import PlanStep, QueryPlan, validate_plan
from repro.core.shares import allocate_integer_shares, share_exponents
from repro.data.columnar import ColumnarDatabase
from repro.data.database import Database
from repro.engine import (
    FinalizeView,
    GridSpec,
    HashRoute,
    Plan,
    PlanRound,
    PlanSignature,
    RoundProfiler,
    ViewSpec,
    execute_plan,
)
from repro.mpc.routing import HashFamily
from repro.mpc.stats import SimulationReport


@dataclass(frozen=True)
class MultiRoundResult:
    """Outcome of a plan execution.

    Attributes:
        answers: the final view's tuples, sorted, in the head order of
            the original query.
        rounds_used: communication rounds executed (== plan depth).
        report: communication statistics per round.
        view_sizes: materialised size of every intermediate view.
        per_server_answers: per view, the answer count each worker
            contributed before deduplication (diagnostics / parity).
    """

    answers: tuple[tuple[int, ...], ...]
    rounds_used: int
    report: SimulationReport
    view_sizes: dict[str, int]
    per_server_answers: dict[str, tuple[int, ...]] = field(
        default_factory=dict
    )


def _step_key(step: PlanStep, atom_name: str) -> str:
    """Mailbox namespace: operator output x input relation."""
    return f"{step.output}:{atom_name}"


def compile_multiround(
    plan: QueryPlan,
    p: int,
    seed: int = 0,
    capacity_c: float = 8.0,
    enforce_capacity: bool = False,
    backend: str | None = None,
) -> Plan:
    """Compile a logical plan into an immutable physical plan.

    Per logical round, every operator gets its own share grid (with a
    per-(round, step) derived hash seed) and one
    :class:`~repro.engine.steps.HashRoute` per atom, namespaced into
    the operator's mailbox keys; the round's
    :class:`~repro.engine.plan.ViewSpec`s materialise operator outputs
    for content-based re-routing.  Operator/view schema compatibility
    is validated here, once -- execution never re-checks it.

    Raises:
        QueryError: from :func:`~repro.core.plans.validate_plan`.
        ValueError: on an operator whose atom schema does not match
            the view (or base relation) it reads.
    """
    validate_plan(plan)
    # Compile-time environment: relation/view name -> schema.  Base
    # relations enter with their atom's variable schema.
    schemas: dict[str, tuple[str, ...]] = {
        atom.name: atom.variables for atom in plan.query.atoms
    }
    rounds: list[PlanRound] = []
    for round_number, plan_round in enumerate(plan.rounds, start=1):
        steps: list[HashRoute] = []
        views: list[ViewSpec] = []
        for step_index, plan_step in enumerate(plan_round.steps):
            step_query = plan_step.query
            cover = fractional_vertex_cover(step_query)
            exponents = share_exponents(step_query, cover)
            allocation = allocate_integer_shares(exponents, p)
            grid = GridSpec.from_shares(
                step_query.variables,
                allocation.shares,
                HashFamily(seed ^ (round_number << 20) ^ (step_index << 10)),
            )
            for atom in step_query.atoms:
                schema = schemas[atom.name]
                if schema != atom.variables:
                    raise ValueError(
                        f"schema mismatch for {atom.name}: "
                        f"{schema} vs {atom.variables}"
                    )
                steps.append(
                    HashRoute(
                        relation=atom.name,
                        destination=_step_key(plan_step, atom.name),
                        atom=atom,
                        grid=grid,
                        # Round 1: the input server for the relation
                        # routes its tuples (arbitrary round-1
                        # messages are allowed by the model).  Rounds
                        # >= 2 are tuple-based: a worker holding the
                        # join tuple forwards it by content; worker 0
                        # stands in for "some holder" and the receiver
                        # is charged the same bits either way.
                        sender=None if round_number == 1 else 0,
                    )
                )
            views.append(
                ViewSpec(
                    name=plan_step.output,
                    query=step_query,
                    key_map=tuple(
                        (atom.name, _step_key(plan_step, atom.name))
                        for atom in step_query.atoms
                    ),
                )
            )
            schemas[plan_step.output] = step_query.head
        rounds.append(PlanRound(steps=tuple(steps), views=tuple(views)))
    return Plan(
        signature=PlanSignature(
            algorithm="multiround",
            query_text=f"{plan.query}@eps={plan.eps}",
            eps=plan.eps,
            p=p,
            backend=resolve_backend(backend),
            seed=seed,
            capacity_c=capacity_c,
            enforce_capacity=enforce_capacity,
        ),
        rounds=tuple(rounds),
        finalize=FinalizeView(view=plan.output, head=plan.query.head),
        # Bits are charged uniformly at the database's domain width
        # for base relations and views alike (tuple-based discipline).
        uniform_domain_bits=True,
    )


def run_plan(
    plan: QueryPlan,
    database: Database | ColumnarDatabase,
    p: int,
    seed: int = 0,
    capacity_c: float = 8.0,
    enforce_capacity: bool = False,
    backend: str | None = None,
    profiler: RoundProfiler | None = None,
) -> MultiRoundResult:
    """Execute a query plan round by round on the simulator.

    Args:
        plan: a validated multi-round plan (see
            :func:`repro.core.plans.build_plan`).
        database: instances for the plan's base relations.
        p: number of servers.
        seed: hash seed; each (round, step) derives its own sub-seed.
        capacity_c: capacity constant for the accounting.
        enforce_capacity: raise on overload when True.
        backend: ``"pure"`` (default, reference), ``"numpy"``
            (vectorized) or ``"auto"``; identical answers, per-round
            loads and view sizes either way.
        profiler: optional per-round route/ship/deliver/local timing
            collector (the CLI's ``--profile``).

    Returns:
        A :class:`MultiRoundResult`; ``answers`` is exactly
        ``plan.query`` evaluated on ``database``.

    .. deprecated:: 1.1
        Application code should use :func:`repro.connect` -- the
        Session planner builds the logical plan and routes here when
        multi-round wins the cost duel.
    """
    from repro.algorithms.registry import warn_legacy_entry_point

    warn_legacy_entry_point("run_plan")
    physical = compile_multiround(
        plan,
        p,
        seed=seed,
        capacity_c=capacity_c,
        enforce_capacity=enforce_capacity,
        backend=backend,
    )
    execution = execute_plan(physical, database, profiler=profiler)
    return MultiRoundResult(
        answers=execution.answers,
        rounds_used=execution.report.num_rounds,
        report=execution.report,
        view_sizes=execution.view_sizes,
        per_server_answers=execution.per_server_views,
    )
