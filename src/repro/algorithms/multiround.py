"""Multi-round plan execution (Proposition 4.1).

Executes a :class:`repro.core.plans.QueryPlan` on the MPC simulator:
each plan round is one communication round in which every operator
(a ``Gamma^1_eps`` subquery) is evaluated by the HyperCube routing of
Section 3.1, with all operators of the round sharing the same ``p``
servers (their loads add within the round, as in the paper's
"computed in parallel" argument of Lemma 4.3).

View materialisation follows the tuple-based MPC discipline
(Section 4.2.1): the tuples of a view are *join tuples* of the base
relations; between rounds they are re-routed purely by content -- the
executor hashes each view tuple exactly like a base tuple, so the
whole execution is a legal tuple-based MPC(eps) algorithm.

The executor returns both the final answer (asserted in tests to equal
the single-site join) and the per-round communication statistics, so
benchmarks can confirm that plan depth equals the number of simulator
rounds and that loads respect the ``eps`` budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.algorithms.hypercube import hc_destinations
from repro.algorithms.localjoin import evaluate_query
from repro.core.covers import fractional_vertex_cover
from repro.core.plans import QueryPlan, validate_plan
from repro.core.shares import allocate_integer_shares, share_exponents
from repro.data.database import Database, bits_per_value
from repro.mpc.model import MPCConfig
from repro.mpc.routing import HashFamily
from repro.mpc.simulator import MPCSimulator
from repro.mpc.stats import SimulationReport


@dataclass(frozen=True)
class MultiRoundResult:
    """Outcome of a plan execution.

    Attributes:
        answers: the final view's tuples, sorted, in the head order of
            the original query.
        rounds_used: communication rounds executed (== plan depth).
        report: communication statistics per round.
        view_sizes: materialised size of every intermediate view.
    """

    answers: tuple[tuple[int, ...], ...]
    rounds_used: int
    report: SimulationReport
    view_sizes: dict[str, int]


def run_plan(
    plan: QueryPlan,
    database: Database,
    p: int,
    seed: int = 0,
    capacity_c: float = 8.0,
    enforce_capacity: bool = False,
) -> MultiRoundResult:
    """Execute a query plan round by round on the simulator.

    Args:
        plan: a validated multi-round plan (see
            :func:`repro.core.plans.build_plan`).
        database: instances for the plan's base relations.
        p: number of servers.
        seed: hash seed; each (round, step) derives its own sub-seed.
        capacity_c: capacity constant for the accounting.
        enforce_capacity: raise on overload when True.

    Returns:
        A :class:`MultiRoundResult`; ``answers`` is exactly
        ``plan.query`` evaluated on ``database``.
    """
    validate_plan(plan)
    n = database.domain_size
    value_bits = bits_per_value(n)
    config = MPCConfig(p=p, eps=plan.eps, c=capacity_c)
    simulator = MPCSimulator(
        config,
        input_bits=database.total_bits,
        enforce_capacity=enforce_capacity,
    )

    # Environment: relation/view name -> (schema, rows).  Base
    # relations enter with their atom's variable schema.
    environment: dict[str, tuple[tuple[str, ...], tuple[tuple[int, ...], ...]]] = {}
    for atom in plan.query.atoms:
        environment[atom.name] = (
            atom.variables,
            database[atom.name].tuples,
        )

    view_sizes: dict[str, int] = {}
    for round_number, plan_round in enumerate(plan.rounds, start=1):
        simulator.begin_round()
        for step_index, step in enumerate(plan_round.steps):
            step_query = step.query
            cover = fractional_vertex_cover(step_query)
            exponents = share_exponents(step_query, cover)
            allocation = allocate_integer_shares(exponents, p)
            hashes = HashFamily(
                seed ^ (round_number << 20) ^ (step_index << 10)
            )
            order = step_query.variables
            for atom in step_query.atoms:
                schema, rows = environment[atom.name]
                if schema != atom.variables:
                    raise ValueError(
                        f"schema mismatch for {atom.name}: "
                        f"{schema} vs {atom.variables}"
                    )
                tuple_bits = len(schema) * value_bits
                batches: dict[int, list[tuple[int, ...]]] = {}
                for row in rows:
                    for destination in hc_destinations(
                        atom, row, allocation.shares, order, hashes
                    ):
                        batches.setdefault(destination, []).append(row)
                # Storage is namespaced per step so concurrent
                # operators sharing a relation do not mix fragments.
                key = f"{step.output}:{atom.name}"
                for destination, batch in batches.items():
                    if round_number == 1:
                        # Round 1: the input server for the relation
                        # routes its tuples (arbitrary round-1
                        # messages are allowed by the model).
                        simulator.send(
                            f"input:{atom.name}",
                            destination,
                            key,
                            batch,
                            tuple_bits,
                        )
                    else:
                        # Tuple-based rounds >= 2: a worker holding
                        # the join tuple forwards it by content.  We
                        # charge the receiver the same bits either
                        # way; sender 0 stands in for "some holder".
                        simulator.send(0, destination, key, batch, tuple_bits)
        simulator.end_round()

        # Local evaluation of every step at every worker.
        for step in plan_round.steps:
            step_query = step.query
            output_rows: set[tuple[int, ...]] = set()
            for worker in range(p):
                local = {
                    atom.name: simulator.worker_rows(
                        worker, f"{step.output}:{atom.name}"
                    )
                    for atom in step_query.atoms
                }
                output_rows.update(evaluate_query(step_query, local))
            schema = step_query.head
            environment[step.output] = (schema, tuple(sorted(output_rows)))
            view_sizes[step.output] = len(output_rows)

    final_schema, final_rows = environment[plan.output]
    # Re-order columns into the original query's head order.
    positions = [final_schema.index(v) for v in plan.query.head]
    answers = tuple(
        sorted(tuple(row[i] for i in positions) for row in final_rows)
    )
    return MultiRoundResult(
        answers=answers,
        rounds_used=simulator.report.num_rounds,
        report=simulator.report,
        view_sizes=view_sizes,
    )
