"""Multi-round plan execution (Proposition 4.1).

Executes a :class:`repro.core.plans.QueryPlan` on the MPC simulator:
each plan round is one communication round in which every operator
(a ``Gamma^1_eps`` subquery) is evaluated by the HyperCube routing of
Section 3.1, with all operators of the round sharing the same ``p``
servers (their loads add within the round, as in the paper's
"computed in parallel" argument of Lemma 4.3).

View materialisation follows the tuple-based MPC discipline
(Section 4.2.1): the tuples of a view are *join tuples* of the base
relations; between rounds they are re-routed purely by content -- the
executor hashes each view tuple exactly like a base tuple, so the
whole execution is a legal tuple-based MPC(eps) algorithm.

Execution compiles to the shared round engine: each plan round becomes
one list of :class:`~repro.engine.steps.HashRoute` steps (one per
operator atom, on the operator's own share grid, namespaced per
operator so concurrent operators sharing a relation do not mix
fragments), and views are materialised columnar so the ``numpy``
backend never leaves column space between rounds.

The executor returns both the final answer (asserted in tests to equal
the single-site join) and the per-round communication statistics, so
benchmarks can confirm that plan depth equals the number of simulator
rounds and that loads respect the ``eps`` budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.backend import resolve_backend
from repro.core.covers import fractional_vertex_cover
from repro.core.plans import PlanStep, QueryPlan, validate_plan
from repro.core.shares import allocate_integer_shares, share_exponents
from repro.data.columnar import ColumnarDatabase, ColumnarRelation
from repro.data.database import Database
from repro.engine import (
    GridSpec,
    HashRoute,
    RoundEngine,
    RoundProfiler,
    materialise_view,
)
from repro.mpc.model import MPCConfig
from repro.mpc.routing import HashFamily
from repro.mpc.simulator import MPCSimulator
from repro.mpc.stats import SimulationReport


@dataclass(frozen=True)
class MultiRoundResult:
    """Outcome of a plan execution.

    Attributes:
        answers: the final view's tuples, sorted, in the head order of
            the original query.
        rounds_used: communication rounds executed (== plan depth).
        report: communication statistics per round.
        view_sizes: materialised size of every intermediate view.
        per_server_answers: per view, the answer count each worker
            contributed before deduplication (diagnostics / parity).
    """

    answers: tuple[tuple[int, ...], ...]
    rounds_used: int
    report: SimulationReport
    view_sizes: dict[str, int]
    per_server_answers: dict[str, tuple[int, ...]] = field(
        default_factory=dict
    )


def _step_key(step: PlanStep, atom_name: str) -> str:
    """Mailbox namespace: operator output x input relation."""
    return f"{step.output}:{atom_name}"


def run_plan(
    plan: QueryPlan,
    database: Database | ColumnarDatabase,
    p: int,
    seed: int = 0,
    capacity_c: float = 8.0,
    enforce_capacity: bool = False,
    backend: str | None = None,
    profiler: RoundProfiler | None = None,
) -> MultiRoundResult:
    """Execute a query plan round by round on the simulator.

    Args:
        plan: a validated multi-round plan (see
            :func:`repro.core.plans.build_plan`).
        database: instances for the plan's base relations.
        p: number of servers.
        seed: hash seed; each (round, step) derives its own sub-seed.
        capacity_c: capacity constant for the accounting.
        enforce_capacity: raise on overload when True.
        backend: ``"pure"`` (default, reference), ``"numpy"``
            (vectorized) or ``"auto"``; identical answers, per-round
            loads and view sizes either way.
        profiler: optional per-round route/ship/deliver/local timing
            collector (the CLI's ``--profile``).

    Returns:
        A :class:`MultiRoundResult`; ``answers`` is exactly
        ``plan.query`` evaluated on ``database``.
    """
    validate_plan(plan)
    n = database.domain_size
    config = MPCConfig(
        p=p, eps=plan.eps, c=capacity_c, backend=resolve_backend(backend)
    )
    backend = config.backend
    simulator = MPCSimulator(
        config,
        input_bits=database.total_bits,
        enforce_capacity=enforce_capacity,
    )
    engine = RoundEngine(simulator, profiler=profiler)

    # Environment: relation/view name -> (schema, columnar tuples).
    # Base relations enter with their atom's variable schema; bits are
    # charged uniformly at the database's domain width, as for views.
    environment: dict[str, tuple[tuple[str, ...], ColumnarRelation]] = {}
    for atom in plan.query.atoms:
        relation = database[atom.name]
        if isinstance(relation, ColumnarRelation):
            source = relation.with_backend(backend)
        else:
            source = ColumnarRelation.from_relation(
                relation, backend=backend
            )
        environment[atom.name] = (
            atom.variables,
            replace(source, domain_size=n),
        )

    view_sizes: dict[str, int] = {}
    per_server_answers: dict[str, tuple[int, ...]] = {}
    for round_number, plan_round in enumerate(plan.rounds, start=1):
        steps: list[HashRoute] = []
        sources: dict[str, ColumnarRelation] = {}
        for step_index, plan_step in enumerate(plan_round.steps):
            step_query = plan_step.query
            cover = fractional_vertex_cover(step_query)
            exponents = share_exponents(step_query, cover)
            allocation = allocate_integer_shares(exponents, p)
            grid = GridSpec.from_shares(
                step_query.variables,
                allocation.shares,
                HashFamily(seed ^ (round_number << 20) ^ (step_index << 10)),
            )
            for atom in step_query.atoms:
                schema, source = environment[atom.name]
                if schema != atom.variables:
                    raise ValueError(
                        f"schema mismatch for {atom.name}: "
                        f"{schema} vs {atom.variables}"
                    )
                sources[atom.name] = source
                steps.append(
                    HashRoute(
                        relation=atom.name,
                        destination=_step_key(plan_step, atom.name),
                        atom=atom,
                        grid=grid,
                        # Round 1: the input server for the relation
                        # routes its tuples (arbitrary round-1
                        # messages are allowed by the model).  Rounds
                        # >= 2 are tuple-based: a worker holding the
                        # join tuple forwards it by content; worker 0
                        # stands in for "some holder" and the receiver
                        # is charged the same bits either way.
                        sender=None if round_number == 1 else 0,
                    )
                )
        engine.run_round(steps, sources)

        # Local evaluation of every step at every worker, then
        # materialise each output view (sorted, duplicate-free) for
        # content-based re-routing in later rounds.
        for plan_step in plan_round.steps:
            view, counts = materialise_view(
                plan_step.output,
                plan_step.query,
                simulator,
                range(p),
                backend,
                domain_size=n,
                key_of=lambda name, s=plan_step: _step_key(s, name),
                profiler=profiler,
            )
            environment[plan_step.output] = (plan_step.query.head, view)
            view_sizes[plan_step.output] = len(view)
            per_server_answers[plan_step.output] = tuple(counts)

    final_schema, final_view = environment[plan.output]
    # Re-order columns into the original query's head order.
    positions = [final_schema.index(v) for v in plan.query.head]
    answers = tuple(
        sorted(
            tuple(row[i] for i in positions) for row in final_view.rows()
        )
    )
    return MultiRoundResult(
        answers=answers,
        rounds_used=simulator.report.num_rounds,
        report=simulator.report,
        view_sizes=view_sizes,
        per_server_answers=per_server_answers,
    )
