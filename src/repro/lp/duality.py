"""Mechanical LP dualisation and strong-duality verification.

Figure 1 of the paper pairs the fractional *vertex covering* LP with the
fractional *edge packing* LP and relies on strong duality:

    ``tau*(q) = min sum_i v_i = max sum_j u_j``

This module constructs the dual of a standard-form LP mechanically, so
tests can verify that the hand-written packing LP in
:mod:`repro.core.covers` *is* the dual of the covering LP, and that both
optima agree exactly.

The supported primal forms are the two that arise from hypergraphs:

* ``min c.x  s.t.  A x >= b, x >= 0``   (covering)  whose dual is
  ``max b.y  s.t.  A^T y <= c, y >= 0`` (packing), and
* ``max c.x  s.t.  A x <= b, x >= 0``   (packing)   whose dual is
  ``min b.y  s.t.  A^T y >= c, y >= 0`` (covering).

Mixed senses are rejected: the paper never needs them and refusing keeps
the construction obviously correct.
"""

from __future__ import annotations

from fractions import Fraction

from repro.lp.model import LinearProgram, LPError
from repro.lp.simplex import GREATER_EQUAL, LESS_EQUAL


def dual_of(primal: LinearProgram) -> LinearProgram:
    """Build the dual of a pure covering or pure packing LP.

    Dual variables are named ``y0, y1, ...`` in primal-constraint order.

    Raises:
        LPError: if the primal mixes constraint senses, or uses a sense
            inconsistent with its orientation (e.g. a maximisation with
            ``>=`` rows), since such programs are not in either of the
            two supported standard forms.
    """
    constraints = primal.constraints
    if not constraints:
        raise LPError("cannot dualise an LP with no constraints")
    senses = {sense for _, sense, _ in constraints}
    if len(senses) != 1:
        raise LPError(f"mixed constraint senses are unsupported: {senses}")
    sense = senses.pop()
    expected = LESS_EQUAL if primal.maximize else GREATER_EQUAL
    if sense != expected:
        raise LPError(
            f"{'max' if primal.maximize else 'min'} LP must use "
            f"{expected!r} constraints, found {sense!r}"
        )

    dual = LinearProgram(maximize=not primal.maximize)
    dual_names = [dual.add_variable(f"y{i}") for i in range(len(constraints))]

    # One dual constraint per primal variable: column of A transposed.
    objective = primal.objective
    for var in primal.variables:
        column = {
            dual_names[i]: coeffs[var]
            for i, (coeffs, _, _) in enumerate(constraints)
            if var in coeffs
        }
        bound = objective.get(var, Fraction(0))
        dual_sense = GREATER_EQUAL if primal.maximize else LESS_EQUAL
        dual.add_constraint(column, dual_sense, bound, name=f"col[{var}]")

    dual.set_objective(
        {dual_names[i]: rhs for i, (_, _, rhs) in enumerate(constraints)}
    )
    return dual


def verify_strong_duality(primal: LinearProgram) -> Fraction:
    """Solve ``primal`` and its mechanical dual; assert equal optima.

    Returns:
        The common optimal value.

    Raises:
        LPError: if either program fails to solve or the optima differ
            (which, with exact arithmetic, would indicate a solver bug).
    """
    primal_solution = primal.solve()
    if not primal_solution.is_optimal:
        raise LPError(f"primal not optimal: {primal_solution.status}")
    dual_solution = dual_of(primal).solve()
    if not dual_solution.is_optimal:
        raise LPError(f"dual not optimal: {dual_solution.status}")
    if primal_solution.objective != dual_solution.objective:
        raise LPError(
            "strong duality violated: "
            f"{primal_solution.objective} != {dual_solution.objective}"
        )
    return primal_solution.objective
