"""Exact two-phase primal simplex over rational numbers.

This is a deliberately simple, exact implementation aimed at the small
linear programs that arise from query hypergraphs (tens of variables and
constraints).  All arithmetic uses :class:`fractions.Fraction`, so the
optimal objective value is returned exactly -- e.g. the fractional
covering number of the triangle query is the fraction ``3/2``.

The solver accepts problems of the form::

    maximize / minimize   c . x
    subject to            a_i . x  (<= | >= | ==)  b_i     for each i
                          x >= 0

Internally the problem is converted to equality standard form with
slack, surplus and artificial variables, and solved with the classical
two-phase tableau method.  Pivoting follows Bland's rule (smallest
index), which is slower than Dantzig's rule but provably never cycles --
important because degenerate vertices are common in covering LPs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence

Number = int | float | Fraction

#: Sentinel senses accepted for constraints.
LESS_EQUAL = "<="
GREATER_EQUAL = ">="
EQUAL = "=="

_VALID_SENSES = (LESS_EQUAL, GREATER_EQUAL, EQUAL)


class SimplexStatus(enum.Enum):
    """Termination status of a simplex solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclass(frozen=True)
class SimplexResult:
    """Outcome of :meth:`ExactSimplex.solve`.

    Attributes:
        status: one of :class:`SimplexStatus`.
        objective: exact optimal objective value (in the *original*
            min/max orientation), or ``None`` unless status is OPTIMAL.
        solution: exact values of the structural variables, or ``None``
            unless status is OPTIMAL.
        duals: exact dual values, one per constraint, or ``None``
            unless status is OPTIMAL.  Sign convention: the duals
            satisfy strong duality for the original orientation, i.e.
            ``sum_i duals[i] * b_i == objective``.
    """

    status: SimplexStatus
    objective: Fraction | None = None
    solution: tuple[Fraction, ...] | None = None
    duals: tuple[Fraction, ...] | None = None

    @property
    def is_optimal(self) -> bool:
        """True when an optimal solution was found."""
        return self.status is SimplexStatus.OPTIMAL


def _to_fraction(value: Number) -> Fraction:
    """Convert ``value`` to an exact Fraction.

    Floats are accepted for convenience but converted via their exact
    binary expansion; prefer ints, Fractions, or strings like ``"1/3"``
    upstream when exactness matters.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    return Fraction(value).limit_denominator(10**12)


class ExactSimplex:
    """Two-phase exact simplex solver.

    Args:
        objective: coefficients of the structural variables.
        constraints: iterable of ``(coefficients, sense, rhs)`` triples;
            ``coefficients`` must have the same length as ``objective``
            and ``sense`` is one of ``"<="``, ``">="``, ``"=="``.
        maximize: if True the objective is maximised, otherwise
            minimised.

    Example:
        >>> solver = ExactSimplex(
        ...     objective=[1, 1, 1],
        ...     constraints=[([1, 1, 0], ">=", 1),
        ...                  ([0, 1, 1], ">=", 1),
        ...                  ([1, 0, 1], ">=", 1)],
        ...     maximize=False)
        >>> result = solver.solve()
        >>> result.objective
        Fraction(3, 2)
    """

    def __init__(
        self,
        objective: Sequence[Number],
        constraints: Iterable[tuple[Sequence[Number], str, Number]],
        maximize: bool = True,
    ) -> None:
        self._n = len(objective)
        self._maximize = maximize
        # Internally we always maximise; negate for minimisation.
        sign = 1 if maximize else -1
        self._c = [sign * _to_fraction(v) for v in objective]
        self._rows: list[list[Fraction]] = []
        self._senses: list[str] = []
        self._b: list[Fraction] = []
        for coeffs, sense, rhs in constraints:
            if sense not in _VALID_SENSES:
                raise ValueError(f"invalid constraint sense: {sense!r}")
            if len(coeffs) != self._n:
                raise ValueError(
                    f"constraint has {len(coeffs)} coefficients, "
                    f"expected {self._n}"
                )
            self._rows.append([_to_fraction(v) for v in coeffs])
            self._senses.append(sense)
            self._b.append(_to_fraction(rhs))

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def solve(self) -> SimplexResult:
        """Solve the LP and return a :class:`SimplexResult`."""
        tableau = _Tableau.build(self._rows, self._senses, self._b, self._c)
        if not tableau.run_phase_one():
            return SimplexResult(status=SimplexStatus.INFEASIBLE)
        if not tableau.run_phase_two():
            return SimplexResult(status=SimplexStatus.UNBOUNDED)
        objective = tableau.objective_value()
        solution = tableau.primal_solution(self._n)
        duals = tableau.dual_solution()
        if not self._maximize:
            objective = -objective
            duals = tuple(-d for d in duals)
        return SimplexResult(
            status=SimplexStatus.OPTIMAL,
            objective=objective,
            solution=solution,
            duals=duals,
        )


class _Tableau:
    """Dense simplex tableau in equality form with exact arithmetic.

    Columns are laid out as ``[structural | slack/surplus | artificial]``
    and the right-hand side is stored separately.  ``basis[i]`` is the
    column index basic in row ``i``.  The (reduced-cost) objective row
    stores ``z_j - c_j``; a column may enter the basis while its entry
    is negative.
    """

    def __init__(self) -> None:
        self.rows: list[list[Fraction]] = []
        self.rhs: list[Fraction] = []
        self.basis: list[int] = []
        self.ncols = 0
        self.n_structural = 0
        self.artificial_cols: set[int] = set()
        #: per-constraint (column, sign) of its slack/surplus variable,
        #: or None for equality rows; used for dual extraction.
        self.slack_info: list[tuple[int, int] | None] = []
        #: per-constraint flag: True when the row was negated during
        #: right-hand-side normalisation (the dual flips sign too).
        self.row_negated: list[bool] = []
        self.cost: list[Fraction] = []
        self.cost_rhs = Fraction(0)
        self._phase2_c: list[Fraction] = []

    # -- construction ---------------------------------------------------

    @staticmethod
    def build(
        rows: list[list[Fraction]],
        senses: list[str],
        b: list[Fraction],
        c: list[Fraction],
    ) -> "_Tableau":
        tab = _Tableau()
        m = len(rows)
        n = len(c)
        tab.n_structural = n

        # Normalise rows so that every right-hand side is non-negative.
        norm_rows: list[list[Fraction]] = []
        norm_senses: list[str] = []
        norm_b: list[Fraction] = []
        for row, sense, rhs in zip(rows, senses, b):
            negated = rhs < 0
            if negated:
                row = [-v for v in row]
                rhs = -rhs
                if sense == LESS_EQUAL:
                    sense = GREATER_EQUAL
                elif sense == GREATER_EQUAL:
                    sense = LESS_EQUAL
            tab.row_negated.append(negated)
            norm_rows.append(list(row))
            norm_senses.append(sense)
            norm_b.append(rhs)

        n_slack = sum(1 for s in norm_senses if s != EQUAL)
        n_artificial = sum(1 for s in norm_senses if s != LESS_EQUAL)
        tab.ncols = n + n_slack + n_artificial

        slack_at = n
        artificial_at = n + n_slack
        for i in range(m):
            row = norm_rows[i] + [Fraction(0)] * (tab.ncols - n)
            sense = norm_senses[i]
            if sense == LESS_EQUAL:
                row[slack_at] = Fraction(1)
                tab.slack_info.append((slack_at, 1))
                tab.basis.append(slack_at)
                slack_at += 1
            elif sense == GREATER_EQUAL:
                row[slack_at] = Fraction(-1)
                tab.slack_info.append((slack_at, -1))
                slack_at += 1
                row[artificial_at] = Fraction(1)
                tab.artificial_cols.add(artificial_at)
                tab.basis.append(artificial_at)
                artificial_at += 1
            else:  # EQUAL
                tab.slack_info.append(None)
                row[artificial_at] = Fraction(1)
                tab.artificial_cols.add(artificial_at)
                tab.basis.append(artificial_at)
                artificial_at += 1
            tab.rows.append(row)
            tab.rhs.append(norm_b[i])

        tab._phase2_c = list(c) + [Fraction(0)] * (tab.ncols - n)
        return tab

    # -- pivoting -------------------------------------------------------

    def _pivot(self, row_idx: int, col_idx: int) -> None:
        """Pivot on (row_idx, col_idx), updating rows, rhs and cost."""
        pivot_row = self.rows[row_idx]
        pivot_val = pivot_row[col_idx]
        inv = Fraction(1) / pivot_val
        self.rows[row_idx] = [v * inv for v in pivot_row]
        self.rhs[row_idx] *= inv
        pivot_row = self.rows[row_idx]
        pivot_rhs = self.rhs[row_idx]

        for i, row in enumerate(self.rows):
            if i == row_idx:
                continue
            factor = row[col_idx]
            if factor == 0:
                continue
            self.rows[i] = [v - factor * pv for v, pv in zip(row, pivot_row)]
            self.rhs[i] -= factor * pivot_rhs

        factor = self.cost[col_idx]
        if factor != 0:
            self.cost = [v - factor * pv for v, pv in zip(self.cost, pivot_row)]
            self.cost_rhs -= factor * pivot_rhs

        self.basis[row_idx] = col_idx

    def _iterate(self, allowed_cols: set[int] | None = None) -> bool:
        """Run simplex iterations to optimality with Bland's rule.

        Returns False if the problem is unbounded in the current phase.
        ``allowed_cols`` optionally restricts entering columns.
        """
        while True:
            entering = -1
            for j in range(self.ncols):
                if allowed_cols is not None and j not in allowed_cols:
                    continue
                if self.cost[j] < 0:
                    entering = j
                    break
            if entering < 0:
                return True

            leaving = -1
            best_ratio: Fraction | None = None
            for i, row in enumerate(self.rows):
                coeff = row[entering]
                if coeff <= 0:
                    continue
                ratio = self.rhs[i] / coeff
                if (
                    best_ratio is None
                    or ratio < best_ratio
                    or (ratio == best_ratio and self.basis[i] < self.basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = i
            if leaving < 0:
                return False
            self._pivot(leaving, entering)

    # -- phases ----------------------------------------------------------

    def run_phase_one(self) -> bool:
        """Drive artificial variables to zero.  Returns feasibility."""
        if not self.artificial_cols:
            # All-slack basis: already feasible; just install phase-2 cost.
            return True

        # Phase-1 objective: maximise -(sum of artificials); reduced
        # costs must be priced out against the artificial basis.
        self.cost = [Fraction(0)] * self.ncols
        for j in self.artificial_cols:
            self.cost[j] = Fraction(1)
        self.cost_rhs = Fraction(0)
        for i, basic in enumerate(self.basis):
            if basic in self.artificial_cols:
                self.cost = [
                    cv - rv for cv, rv in zip(self.cost, self.rows[i])
                ]
                self.cost_rhs -= self.rhs[i]

        if not self._iterate():  # pragma: no cover - phase 1 is bounded
            raise AssertionError("phase-1 LP cannot be unbounded")
        if self.cost_rhs != 0:
            return False

        # Pivot any artificial variables remaining in the basis out, or
        # drop their (redundant) rows.
        for i in range(len(self.rows) - 1, -1, -1):
            if self.basis[i] not in self.artificial_cols:
                continue
            pivot_col = -1
            for j in range(self.ncols):
                if j in self.artificial_cols:
                    continue
                if self.rows[i][j] != 0:
                    pivot_col = j
                    break
            if pivot_col >= 0:
                self._pivot(i, pivot_col)
            else:
                del self.rows[i]
                del self.rhs[i]
                del self.basis[i]
        return True

    def run_phase_two(self) -> bool:
        """Optimise the real objective.  Returns False if unbounded."""
        # Install reduced costs for the phase-2 objective: z_j - c_j,
        # priced out against the current basis.
        self.cost = [-v for v in self._phase2_c]
        self.cost_rhs = Fraction(0)
        for i, basic in enumerate(self.basis):
            cb = self._phase2_c[basic]
            if cb != 0:
                self.cost = [
                    cv + cb * rv for cv, rv in zip(self.cost, self.rows[i])
                ]
                self.cost_rhs += cb * self.rhs[i]

        allowed = {j for j in range(self.ncols) if j not in self.artificial_cols}
        return self._iterate(allowed_cols=allowed)

    # -- extraction -------------------------------------------------------

    def objective_value(self) -> Fraction:
        """Optimal objective value of the internal (max) orientation."""
        return self.cost_rhs

    def primal_solution(self, n_structural: int) -> tuple[Fraction, ...]:
        """Values of the structural variables at the optimum."""
        values = [Fraction(0)] * n_structural
        for i, basic in enumerate(self.basis):
            if basic < n_structural:
                values[basic] = self.rhs[i]
        return tuple(values)

    def dual_solution(self) -> tuple[Fraction, ...]:
        """Dual values, one per original constraint.

        For a constraint with a slack variable (coefficient ``sign``)
        the dual equals ``sign * (z_j - c_j)`` of that slack column.
        For equality constraints the dual is recovered from the
        reduced cost of the constraint's artificial column (whose
        original cost is zero in phase 2).
        """
        duals: list[Fraction] = []
        artificial_sorted = sorted(self.artificial_cols)
        next_artificial = 0
        for info, negated in zip(self.slack_info, self.row_negated):
            if info is not None:
                col, sign = info
                value = sign * self.cost[col]
            else:
                col = artificial_sorted[next_artificial]
                value = self.cost[col]
            if info is None or info[1] == -1:
                next_artificial += 1
            duals.append(-value if negated else value)
        return tuple(duals)
