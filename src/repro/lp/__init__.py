"""Exact linear-programming substrate.

The fractional vertex cover and fractional edge packing linear programs
(Figure 1 of the paper) are the engine behind every bound in
Beame-Koutris-Suciu.  Their optimal values -- the fractional covering
number ``tau*`` -- feed directly into share exponents and space
exponents, so we solve them in *exact rational arithmetic* rather than
floating point: ``tau*(C_3) = 3/2`` must come out as the fraction
``3/2``, not ``1.4999999999``.

The package provides:

* :class:`repro.lp.model.LinearProgram` -- a small modelling layer
  (named variables, linear constraints, min/max objective).
* :class:`repro.lp.simplex.ExactSimplex` -- a from-scratch two-phase
  primal simplex over :class:`fractions.Fraction` using Bland's rule,
  which guarantees termination without cycling.
* :mod:`repro.lp.duality` -- mechanical construction of the dual of a
  standard-form LP and strong-duality verification, used to cross-check
  the vertex-cover/edge-packing pair of Figure 1.
"""

from repro.lp.model import LinearProgram, LPSolution
from repro.lp.simplex import ExactSimplex, SimplexResult, SimplexStatus
from repro.lp.duality import dual_of, verify_strong_duality

__all__ = [
    "LinearProgram",
    "LPSolution",
    "ExactSimplex",
    "SimplexResult",
    "SimplexStatus",
    "dual_of",
    "verify_strong_duality",
]
