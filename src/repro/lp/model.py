"""A small modelling layer over the exact simplex solver.

:class:`LinearProgram` lets callers build LPs with *named* variables and
readable constraints, which keeps the covering/packing constructions in
:mod:`repro.core.covers` close to the notation of Figure 1 in the paper::

    lp = LinearProgram(maximize=False)
    for variable in query.variables:
        lp.add_variable(variable)
    for atom in query.atoms:
        lp.add_constraint({v: 1 for v in atom.variables}, ">=", 1)
    lp.set_objective({v: 1 for v in query.variables})
    solution = lp.solve()

All variables are implicitly non-negative, which matches every LP in the
paper (vertex cover, edge packing) and makes mechanical dualisation in
:mod:`repro.lp.duality` straightforward.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping

from repro.lp.simplex import (
    EQUAL,
    GREATER_EQUAL,
    LESS_EQUAL,
    ExactSimplex,
    Number,
    SimplexResult,
    SimplexStatus,
)


class LPError(Exception):
    """Raised for malformed models or unsolvable programs."""


@dataclass(frozen=True)
class LPSolution:
    """A solved linear program.

    Attributes:
        status: termination status of the solver.
        objective: exact optimal value (``None`` unless optimal).
        values: mapping from variable name to exact optimal value.
        duals: exact dual value per constraint, in insertion order.
    """

    status: SimplexStatus
    objective: Fraction | None
    values: dict[str, Fraction] = field(default_factory=dict)
    duals: tuple[Fraction, ...] = ()

    @property
    def is_optimal(self) -> bool:
        """True when the program was solved to optimality."""
        return self.status is SimplexStatus.OPTIMAL

    def __getitem__(self, name: str) -> Fraction:
        return self.values[name]


@dataclass(frozen=True)
class _Constraint:
    coefficients: dict[str, Fraction]
    sense: str
    rhs: Fraction
    name: str


class LinearProgram:
    """An LP over named non-negative variables.

    Args:
        maximize: orientation of the objective.

    Variables must be added before they are referenced by constraints or
    the objective; referencing an unknown variable raises
    :class:`LPError` immediately, which catches typos in query-variable
    names early.
    """

    def __init__(self, maximize: bool = True) -> None:
        self._maximize = maximize
        self._variables: list[str] = []
        self._index: dict[str, int] = {}
        self._constraints: list[_Constraint] = []
        self._objective: dict[str, Fraction] = {}

    # -- model building ---------------------------------------------------

    @property
    def maximize(self) -> bool:
        """True when this is a maximisation problem."""
        return self._maximize

    @property
    def variables(self) -> tuple[str, ...]:
        """Variable names in insertion order."""
        return tuple(self._variables)

    @property
    def constraints(self) -> tuple[tuple[dict[str, Fraction], str, Fraction], ...]:
        """Constraints as ``(coefficients, sense, rhs)`` triples."""
        return tuple(
            (dict(c.coefficients), c.sense, c.rhs) for c in self._constraints
        )

    @property
    def objective(self) -> dict[str, Fraction]:
        """Objective coefficients by variable name."""
        return dict(self._objective)

    def add_variable(self, name: str) -> str:
        """Register a non-negative variable and return its name."""
        if name in self._index:
            raise LPError(f"duplicate variable: {name!r}")
        self._index[name] = len(self._variables)
        self._variables.append(name)
        return name

    def add_constraint(
        self,
        coefficients: Mapping[str, Number],
        sense: str,
        rhs: Number,
        name: str = "",
    ) -> None:
        """Add ``sum coefficients[v] * v  (sense)  rhs``."""
        if sense not in (LESS_EQUAL, GREATER_EQUAL, EQUAL):
            raise LPError(f"invalid sense: {sense!r}")
        resolved: dict[str, Fraction] = {}
        for var, coeff in coefficients.items():
            if var not in self._index:
                raise LPError(f"unknown variable in constraint: {var!r}")
            resolved[var] = Fraction(coeff)
        self._constraints.append(
            _Constraint(resolved, sense, Fraction(rhs), name)
        )

    def set_objective(self, coefficients: Mapping[str, Number]) -> None:
        """Set the objective; unspecified variables get coefficient 0."""
        for var in coefficients:
            if var not in self._index:
                raise LPError(f"unknown variable in objective: {var!r}")
        self._objective = {
            var: Fraction(coeff) for var, coeff in coefficients.items()
        }

    # -- solving ------------------------------------------------------------

    def _dense(self) -> tuple[list[Fraction], list[tuple[list[Fraction], str, Fraction]]]:
        n = len(self._variables)
        objective = [Fraction(0)] * n
        for var, coeff in self._objective.items():
            objective[self._index[var]] = coeff
        constraints = []
        for constraint in self._constraints:
            row = [Fraction(0)] * n
            for var, coeff in constraint.coefficients.items():
                row[self._index[var]] = coeff
            constraints.append((row, constraint.sense, constraint.rhs))
        return objective, constraints

    def solve(self) -> LPSolution:
        """Solve with the exact simplex and return an :class:`LPSolution`."""
        if not self._variables:
            raise LPError("cannot solve an LP with no variables")
        objective, constraints = self._dense()
        result: SimplexResult = ExactSimplex(
            objective, constraints, maximize=self._maximize
        ).solve()
        if not result.is_optimal:
            return LPSolution(status=result.status, objective=None)
        values = {
            name: result.solution[i]
            for i, name in enumerate(self._variables)
        }
        return LPSolution(
            status=result.status,
            objective=result.objective,
            values=values,
            duals=result.duals,
        )
