"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``analyze "S1(x,y), S2(y,z), S3(z,x)"`` -- print the full analysis
  of a query: tau*, space exponent, covers, shares, chi, radius,
  diameter, round bounds.
* ``run "S1(x,y), S2(y,z)" --n 100 --p 16 --backend numpy`` --
  generate a random matching database and run HyperCube on the
  simulator, on the pure-Python reference engine or the vectorized
  numpy one (``--backend {auto,pure,numpy}``; both give identical
  answers and load accounting).
* ``plan "S1(x,y), ..." --eps 1/2`` -- build and print a multi-round
  plan.
* ``run-plan "S1(a,b), S2(b,c), S3(c,d)" --eps 0 --n 100 --p 16`` --
  build the plan AND execute it on the simulator round by round (the
  Proposition 4.1 executor), verifying the final view against the
  exact join; honours ``--backend`` like ``run``.
* ``skew "S1(x,y), S2(y,z)" --n 200 --p 16 --heavy-fraction 0.5`` --
  generate a skewed database (heavy hitter on every first attribute)
  and race plain HC against the skew-aware executor, printing heavy
  hitters, max loads and imbalance; honours ``--backend``.
* ``query "S1(x,y), S2(y,z)" --n 200 --p 16`` -- the planner-backed
  front door: generate a database, open a :class:`repro.api.Session`
  and let the cost-based planner pick the algorithm (pin one with
  ``--algorithm``, pin the budget with ``--eps``); prints the chosen
  route and verifies the answers against the exact join.
* ``explain "S1(x,y), S2(y,z)"`` -- the planner's full report for a
  statement (chosen algorithm, shares, predicted rounds/load vs the
  paper's bounds, every candidate's bid) without executing it.
* ``serve --vocab "S1(x,y), S2(y,z), S3(z,x)" --n 200 --p 16`` --
  start a long-lived :class:`~repro.serve.service.QueryService` over
  a generated matching database and read commands from stdin (or
  ``--script FILE``): ``run <query>``, ``update <rel> <v,v> ...``,
  ``delete <rel> <v,v> ...``, ``stats``, ``exit``.  Repeated and
  isomorphic queries are served from the plan/result caches; the
  ``stats`` command prints the service-level counters.  With
  ``--tcp PORT`` the same database is served to the network instead,
  over the asyncio JSON-lines RPC protocol of
  :mod:`repro.serve.rpc` (planner-routed, with cross-request
  coalescing); ``--plan-cache-size`` / ``--routing-cache-size`` /
  ``--result-cache-size`` bound the cache layers in both modes.
* ``tables`` -- regenerate Table 1 and Table 2 of the paper.

``run``, ``run-plan`` and ``skew`` execute through the algorithm
registry (:mod:`repro.algorithms.registry`) -- the same compilers the
planner chooses from -- and accept ``--profile``, which prints a
per-round route/ship/deliver/local-eval wall-clock breakdown -- the
numbers that show where an execution actually spends its time.
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction

from repro.analysis.reporting import format_table
from repro.core.bounds import round_upper_bound
from repro.core.characteristic import characteristic, is_tree_like
from repro.core.covers import analyze_covers
from repro.core.plans import build_plan
from repro.core.query import QueryError, parse_query
from repro.core.shares import allocate_integer_shares, share_exponents


def _new_profiler(args: argparse.Namespace):
    """A RoundProfiler when ``--profile`` was given, else None."""
    if not getattr(args, "profile", False):
        return None
    from repro.engine import RoundProfiler

    return RoundProfiler()


def _print_profile(profiler, title: str) -> None:
    if profiler is not None:
        print()
        print(profiler.format_table(title=title))


def _parse_eps(text: str) -> Fraction:
    try:
        return Fraction(text)
    except (ValueError, ZeroDivisionError) as error:
        raise argparse.ArgumentTypeError(
            f"invalid space exponent {text!r}: {error}"
        ) from None


def cmd_analyze(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    analysis = analyze_covers(query)
    shares = share_exponents(query, analysis.vertex_cover)
    rows = [
        ["query", str(query)],
        ["tau* (covering number)", analysis.tau_star],
        ["space exponent (Thm 1.1)", analysis.space_exponent],
        ["vertex cover", dict(analysis.vertex_cover)],
        ["edge packing", dict(analysis.edge_packing)],
        ["share exponents", dict(shares)],
        ["characteristic chi", characteristic(query)],
        ["tree-like", is_tree_like(query)],
    ]
    if query.is_connected:
        hypergraph = query.hypergraph
        rows.append(["radius", hypergraph.radius])
        rows.append(["diameter", hypergraph.diameter])
        rows.append(
            ["rounds at eps=0 (Lemma 4.3)", round_upper_bound(query, Fraction(0))]
        )
    print(format_table(["property", "value"], rows))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from repro.algorithms.localjoin import evaluate_query
    from repro.algorithms.registry import compile_with
    from repro.backend import resolve_backend
    from repro.data.matching import matching_database
    from repro.engine import execute_plan

    query = parse_query(args.query)
    database = matching_database(query, n=args.n, rng=args.seed)
    backend = resolve_backend(args.backend)
    profiler = _new_profiler(args)
    plan = compile_with(
        "hypercube", query, args.p, seed=args.seed, backend=backend
    )
    parallel = None
    workers = getattr(args, "workers", 1)
    if workers >= 2 and backend == "numpy":
        from repro.engine.parallel import ParallelContext

        parallel = ParallelContext(workers, min_rows=0)
    try:
        execution = execute_plan(
            plan,
            database,
            profiler=profiler,
            parallel=parallel,
            chunk_rows=getattr(args, "chunk_rows", None),
        )
    finally:
        if parallel is not None:
            parallel.close()
    truth = evaluate_query(
        query, {name: database[name].tuples for name in database.relations}
    )
    verified = execution.answers == truth
    print(format_table(
        ["property", "value"],
        [
            ["query", str(query)],
            ["n (domain)", args.n],
            ["p (servers)", args.p],
            ["backend", backend],
            ["shares", plan.allocation.shares],
            ["answers", len(execution.answers)],
            ["verified vs exact join", verified],
            ["max load (tuples)", execution.report.max_load_tuples],
            ["replication rate",
             f"{execution.report.replication_rate:.3f}"],
        ]
        + (
            [
                ["route workers", workers],
                ["parallel rounds", parallel.parallel_rounds],
                ["fallback rounds", parallel.fallback_rounds],
            ]
            if parallel is not None
            else []
        ),
    ))
    _print_profile(profiler, f"HC timing breakdown ({backend})")
    return 0 if verified else 1


def cmd_plan(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    plan = build_plan(query, args.eps)
    print(f"plan for {query.name} at eps={args.eps}: depth {plan.depth}")
    for index, round_ in enumerate(plan.rounds, start=1):
        for step in round_.steps:
            print(f"  round {index}: {step.output} := {step.query}")
    return 0


def cmd_run_plan(args: argparse.Namespace) -> int:
    from repro.algorithms.localjoin import evaluate_query
    from repro.algorithms.registry import compile_with
    from repro.backend import resolve_backend
    from repro.data.matching import matching_database
    from repro.engine import execute_plan

    query = parse_query(args.query)
    plan = build_plan(query, args.eps)
    database = matching_database(query, n=args.n, rng=args.seed)
    backend = resolve_backend(args.backend)
    profiler = _new_profiler(args)
    physical = compile_with(
        "multiround", query, args.p, eps=args.eps, seed=args.seed,
        backend=backend,
    )
    execution = execute_plan(
        physical,
        database,
        profiler=profiler,
        chunk_rows=getattr(args, "chunk_rows", None),
    )
    truth = evaluate_query(
        query, {name: database[name].tuples for name in database.relations}
    )
    verified = execution.answers == truth
    rows = [
        ["query", str(query)],
        ["eps (space exponent)", args.eps],
        ["n (domain)", args.n],
        ["p (servers)", args.p],
        ["backend", backend],
        ["plan depth", plan.depth],
        ["rounds used", execution.report.num_rounds],
        ["answers", len(execution.answers)],
        ["verified vs exact join", verified],
        ["max load (tuples)", execution.report.max_load_tuples],
        ["replication rate",
         f"{execution.report.replication_rate:.3f}"],
    ]
    rows.extend(
        [f"view |{view}|", size]
        for view, size in sorted(execution.view_sizes.items())
    )
    print(format_table(["property", "value"], rows))
    _print_profile(profiler, f"plan timing breakdown ({backend})")
    return 0 if verified else 1


def cmd_skew(args: argparse.Namespace) -> int:
    from repro.algorithms.localjoin import evaluate_query
    from repro.algorithms.registry import compile_with
    from repro.backend import resolve_backend
    from repro.data.generators import skewed_database
    from repro.engine import execute_plan

    query = parse_query(args.query)
    database = skewed_database(
        query, n=args.n, rng=args.seed, heavy_fraction=args.heavy_fraction
    )
    backend = resolve_backend(args.backend)
    plain_profiler = _new_profiler(args)
    aware_profiler = _new_profiler(args)
    chunk_rows = getattr(args, "chunk_rows", None)
    plain = execute_plan(
        compile_with(
            "hypercube", query, args.p, seed=args.seed, backend=backend
        ),
        database,
        profiler=plain_profiler,
        chunk_rows=chunk_rows,
    )
    aware = execute_plan(
        compile_with(
            "skewaware", query, args.p, seed=args.seed, backend=backend
        ),
        database,
        profiler=aware_profiler,
        chunk_rows=chunk_rows,
    )
    truth = evaluate_query(
        query, {name: database[name].tuples for name in database.relations}
    )
    verified = aware.answers == truth and plain.answers == truth
    heavy = {
        variable: sorted(values)
        for variable, values in (aware.heavy_hitters or {}).items()
        if values
    }
    print(format_table(
        ["property", "value"],
        [
            ["query", str(query)],
            ["n (domain)", args.n],
            ["p (servers)", args.p],
            ["backend", backend],
            ["heavy fraction", args.heavy_fraction],
            ["heavy hitters", heavy or "none"],
            ["answers", len(aware.answers)],
            ["verified vs exact join", verified],
            ["plain HC max load", plain.report.max_load_tuples],
            ["skew-aware max load", aware.report.max_load_tuples],
            [
                "plain imbalance",
                f"{plain.report.rounds[0].load_imbalance:.2f}",
            ],
            [
                "aware imbalance",
                f"{aware.report.rounds[0].load_imbalance:.2f}",
            ],
        ],
    ))
    _print_profile(plain_profiler, f"plain HC timing breakdown ({backend})")
    _print_profile(aware_profiler, f"skew-aware timing breakdown ({backend})")
    return 0 if verified else 1


def _generated_database(query, args: argparse.Namespace):
    """The database ``query``/``explain`` run against.

    A random matching database by default; ``--skewed`` funnels
    ``--heavy-fraction`` of every relation into one heavy value so the
    planner's skew routing is observable from the command line.
    """
    if getattr(args, "skewed", False):
        from repro.data.generators import skewed_database

        return skewed_database(
            query,
            n=args.n,
            rng=args.seed,
            heavy_fraction=args.heavy_fraction,
        )
    from repro.data.matching import matching_database

    return matching_database(query, n=args.n, rng=args.seed)


def _session_for(query, args: argparse.Namespace):
    from repro.api import connect
    from repro.backend import resolve_backend

    return connect(
        _generated_database(query, args),
        p=args.p,
        backend=resolve_backend(args.backend),
        seed=args.seed,
        chunk_rows=getattr(args, "chunk_rows", None),
    )


def cmd_query(args: argparse.Namespace) -> int:
    from repro.algorithms.localjoin import evaluate_query
    from repro.api import connect
    from repro.backend import resolve_backend

    query = parse_query(args.query)
    database = _generated_database(query, args)
    session = connect(
        database,
        p=args.p,
        backend=resolve_backend(args.backend),
        seed=args.seed,
        chunk_rows=getattr(args, "chunk_rows", None),
    )
    statement = session.query(
        query,
        eps=args.eps,
        algorithm=args.algorithm,
        allow_partial=args.allow_partial,
    )
    result = statement.execute()
    explain = result.explain
    rows = [
        ["query", str(query)],
        ["n (domain)", args.n],
        ["p (servers)", args.p],
        ["backend", session.backend],
        ["chosen algorithm", result.algorithm
         + (" (pinned)" if args.algorithm else "")],
        ["eps effective", explain.eps_effective
         if explain.eps_effective is not None else "per-query"],
        ["predicted rounds / load",
         f"{explain.predicted_rounds} / {explain.predicted_load:.1f}"],
        ["answers", len(result.answers)],
    ]
    if result.algorithm != "partial":
        truth = evaluate_query(
            query,
            {
                name: database[name].tuples
                for name in database.relations
            },
        )
        verified = result.answers == truth
        rows.append(["verified vs exact join", verified])
    else:
        verified = True
        rows.append(["verified vs exact join", "n/a (partial answers)"])
    rows.append(["max load (tuples)", result.report.max_load_tuples])
    if result.heavy_hitters:
        rows.append(
            ["heavy hitters",
             {v: sorted(values)
              for v, values in result.heavy_hitters.items() if values}
             or "none"]
        )
    print(format_table(["property", "value"], rows))
    print("\n(`repro explain` prints the full planner report)")
    return 0 if verified else 1


def cmd_explain(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    session = _session_for(query, args)
    explain = session.explain(
        query,
        eps=args.eps,
        algorithm=args.algorithm,
        allow_partial=args.allow_partial,
    )
    print(explain.format())
    return 0


def _serve_handle(service, line: str, out) -> bool:
    """Process one serve-REPL line; False means quit."""
    import time

    from repro.data.database import DataError
    from repro.mpc.simulator import CapacityExceeded

    line = line.strip()
    if not line or line.startswith("#"):
        return True
    command, _, rest = line.partition(" ")
    command = command.lower()
    if command in ("exit", "quit"):
        return False
    try:
        if command == "run":
            start = time.perf_counter()
            result = service.execute(rest)
            elapsed = (time.perf_counter() - start) * 1000
            flags = (
                f"plan:{'hit' if result.plan_hit else 'miss'} "
                f"result:{'hit' if result.result_hit else 'miss'}"
            )
            print(
                f"{len(result.answers)} answers in {elapsed:.2f} ms "
                f"[{flags}] v{result.version}",
                file=out,
            )
        elif command in ("update", "delete"):
            relation, _, row_text = rest.partition(" ")
            if not relation:
                raise ValueError(f"usage: {command} <relation> <v,v> ...")
            rows = [
                tuple(int(value) for value in token.split(","))
                for token in row_text.split()
            ]
            if not rows:
                raise ValueError(f"{command}: no rows given")
            delta = {relation: rows}
            version = (
                service.update(inserts=delta)
                if command == "update"
                else service.update(deletes=delta)
            )
            print(f"v{version}: {command}d {len(rows)} rows in {relation}", file=out)
        elif command == "stats":
            stats = service.stats
            rows = [
                ["requests", stats.requests],
                ["executions", stats.executions],
                ["plan hits (exact / isomorphic)",
                 f"{stats.plans.hits} / {stats.plans.isomorphic_hits}"],
                ["plan misses (compiles)", stats.plans.misses],
                ["result hits", stats.result_hits],
                ["routing hits / misses",
                 f"{stats.routing_hits} / {stats.routing_misses}"],
                ["evictions (plan / routing / result)",
                 f"{stats.plans.evictions} / {stats.routing_evictions}"
                 f" / {stats.result_evictions}"],
                ["updates", stats.updates],
                ["answers served", stats.answers_served],
                ["capacity failures", stats.capacity_failures],
                ["ivm merges / fallbacks",
                 f"{stats.ivm_hits} / {stats.ivm_fallbacks}"],
                ["ivm retained (states / bytes)",
                 f"{service.ivm_retained_states}"
                 f" / {service.ivm_retained_bytes}"],
                ["parallel rounds", stats.parallel_rounds],
                ["fallback rounds", stats.fallback_rounds],
            ]
            rows.extend(
                [f"{phase} seconds", f"{seconds:.4f}"]
                for phase, seconds in stats.phase_seconds.items()
            )
            print(format_table(["counter", "value"], rows), file=out)
        else:
            print(f"error: unknown command {command!r} "
                  "(run / update / delete / stats / exit)", file=out)
    except (
        QueryError,
        DataError,
        ValueError,
        KeyError,
        CapacityExceeded,
    ) as error:
        print(f"error: {error}", file=out)
    except Exception as error:  # noqa: BLE001 -- the REPL must survive
        # Anything unexpected still comes back as one structured line
        # (with the type, since the message alone may be cryptic).
        print(f"error: {error.__class__.__name__}: {error}", file=out)
    return True


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.backend import resolve_backend
    from repro.data.matching import matching_database

    vocab = parse_query(args.vocab)
    database = matching_database(vocab, n=args.n, rng=args.seed)
    backend = resolve_backend(args.backend)
    cache_sizes = dict(
        plan_cache_size=args.plan_cache_size,
        routing_cache_size=args.routing_cache_size,
        result_cache_size=args.result_cache_size,
    )

    if args.tcp is not None:
        import asyncio

        from repro.api import connect
        from repro.serve.rpc import serve_tcp

        session = connect(
            database,
            p=args.p,
            backend=backend,
            eps=args.eps,
            algorithm=args.algorithm,
            seed=args.seed,
            workers=args.workers,
            chunk_rows=args.chunk_rows,
            **cache_sizes,
        )
        routing = (
            f"pinned to {args.algorithm}"
            if args.algorithm
            else "planner-routed"
        )
        print(
            f"serving {vocab} over n={args.n} matching database "
            f"(p={args.p}, backend={backend}, {routing}, "
            f"workers={args.workers})"
        )
        try:
            asyncio.run(
                serve_tcp(
                    session,
                    host=args.host,
                    port=args.tcp,
                    max_inflight=args.max_inflight,
                    max_queue=args.max_queue,
                    quota_rps=args.quota_rps,
                    quota_burst=args.quota_burst,
                    idle_timeout=args.idle_timeout,
                    metrics_port=args.metrics_port,
                )
            )
        except KeyboardInterrupt:
            print("rpc server stopped")
        finally:
            session.close()
        return 0

    from repro.serve import QueryService

    algorithm = args.algorithm or "hypercube"
    service = QueryService(
        database,
        p=args.p,
        backend=backend,
        algorithm=algorithm,
        eps=args.eps,
        seed=args.seed,
        workers=args.workers,
        chunk_rows=args.chunk_rows,
        **cache_sizes,
    )
    print(
        f"serving {vocab} over n={args.n} matching database "
        f"(p={args.p}, backend={backend}, algorithm={algorithm}, "
        f"workers={args.workers})"
    )
    try:
        if args.script:
            with open(args.script, encoding="utf-8") as stream:
                for line in stream:
                    if not _serve_handle(service, line, sys.stdout):
                        break
        else:
            for line in sys.stdin:
                if not _serve_handle(service, line, sys.stdout):
                    break
    finally:
        service.close()
    return 0


def cmd_shares(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    exponents = share_exponents(query)
    allocation = allocate_integer_shares(exponents, args.p)
    print(format_table(
        ["variable", "exponent", "integer share"],
        [
            [variable, exponents[variable], allocation.shares[variable]]
            for variable in query.variables
        ],
        title=f"shares for p={args.p} "
        f"(grid uses {allocation.used_servers} servers)",
    ))
    return 0


def cmd_tables(args: argparse.Namespace) -> int:
    from repro.analysis.tables import table1_rows, table2_rows

    rows1 = table1_rows(n=args.n, trials=args.trials, seed=0)
    print(format_table(
        ["query", "E[|q|]", "measured", "tau*", "eps", "matches paper"],
        [
            [
                row.name,
                f"{row.expected_answer_size:g}",
                f"{row.measured_answer_size:g}",
                row.tau_star,
                row.space_exponent,
                row.matches_paper,
            ]
            for row in rows1
        ],
        title="Table 1",
    ))
    print()
    rows2 = table2_rows()
    print(format_table(
        ["query", "space exp", "rounds@0", "paper", "curve"],
        [
            [
                row.name,
                row.space_exponent,
                row.rounds_at_zero,
                row.paper_rounds_at_zero,
                " ".join(
                    f"{eps}:{depth}"
                    for eps, depth in sorted(row.rounds_by_eps.items())
                ),
            ]
            for row in rows2
        ],
        title="Table 2",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Beame-Koutris-Suciu (PODS 2013) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    analyze = commands.add_parser("analyze", help="analyse a query")
    analyze.add_argument("query", help='e.g. "S1(x,y), S2(y,z), S3(z,x)"')
    analyze.set_defaults(handler=cmd_analyze)

    def add_execution_options(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument("--n", type=int, default=100, help="domain size")
        subparser.add_argument("--p", type=int, default=16, help="number of servers")
        subparser.add_argument("--seed", type=int, default=0)
        subparser.add_argument(
            "--backend",
            choices=["auto", "pure", "numpy"],
            default="pure",
            help="execution engine: pure-Python reference or vectorized "
            "numpy (auto picks numpy when available)",
        )
        subparser.add_argument(
            "--profile",
            action="store_true",
            help="print a per-round route/ship/deliver/local-eval "
            "wall-clock breakdown after the run",
        )
        subparser.add_argument(
            "--workers",
            type=int,
            default=1,
            help="executor processes for the parallel route phase "
            "(numpy backend only; 1 = fully in-process)",
        )
        subparser.add_argument(
            "--chunk-rows",
            type=int,
            default=None,
            help="streaming block size: route/ship in blocks of this "
            "many rows with lazy delivery pools (numpy backend only; "
            "default: the REPRO_CHUNK_ROWS env knob, unset = "
            "monolithic)",
        )

    run = commands.add_parser("run", help="run HyperCube on a random matching DB")
    run.add_argument("query")
    add_execution_options(run)
    run.set_defaults(handler=cmd_run)

    plan = commands.add_parser("plan", help="build a multi-round plan")
    plan.add_argument("query")
    plan.add_argument("--eps", type=_parse_eps, default=Fraction(0),
                      help="space exponent, e.g. 1/2")
    plan.set_defaults(handler=cmd_plan)

    run_plan = commands.add_parser(
        "run-plan",
        help="build a multi-round plan and execute it on the simulator",
    )
    run_plan.add_argument("query")
    run_plan.add_argument("--eps", type=_parse_eps, default=Fraction(0),
                          help="space exponent, e.g. 1/2")
    add_execution_options(run_plan)
    run_plan.set_defaults(handler=cmd_run_plan)

    def add_planner_options(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument("query")
        subparser.add_argument(
            "--eps",
            type=_parse_eps,
            default=None,
            help="pin the space exponent (default: planner-automatic)",
        )
        subparser.add_argument(
            "--algorithm",
            choices=["hypercube", "skewaware", "multiround", "partial"],
            default=None,
            help="pin the algorithm instead of letting the planner pick",
        )
        subparser.add_argument(
            "--allow-partial",
            action="store_true",
            help="let the inexact below-threshold algorithm win when "
            "--eps is pinned under the query's space exponent",
        )
        subparser.add_argument(
            "--skewed",
            action="store_true",
            help="generate a skewed database instead of a matching one",
        )
        subparser.add_argument(
            "--heavy-fraction",
            type=float,
            default=0.5,
            help="skew strength for --skewed",
        )
        subparser.add_argument("--n", type=int, default=200,
                               help="domain size")
        subparser.add_argument("--p", type=int, default=16,
                               help="number of servers")
        subparser.add_argument("--seed", type=int, default=0)
        subparser.add_argument(
            "--backend",
            choices=["auto", "pure", "numpy"],
            default="pure",
            help="execution engine",
        )
        subparser.add_argument(
            "--chunk-rows",
            type=int,
            default=None,
            help="streaming block size for execution (numpy backend "
            "only; default: the REPRO_CHUNK_ROWS env knob)",
        )

    query_cmd = commands.add_parser(
        "query",
        help="execute a query through the planner-backed Session API",
    )
    add_planner_options(query_cmd)
    query_cmd.set_defaults(handler=cmd_query)

    explain_cmd = commands.add_parser(
        "explain",
        help="print the planner's routing report without executing",
    )
    add_planner_options(explain_cmd)
    explain_cmd.set_defaults(handler=cmd_explain)

    skew = commands.add_parser(
        "skew",
        help="race plain vs skew-aware HC on a skewed database",
    )
    skew.add_argument("query")
    skew.add_argument(
        "--heavy-fraction",
        type=float,
        default=0.5,
        help="share of each relation funnelled into one heavy value",
    )
    add_execution_options(skew)
    skew.set_defaults(handler=cmd_skew)

    serve = commands.add_parser(
        "serve",
        help="long-lived query service over a generated matching DB "
        "(REPL on stdin, or --script FILE)",
    )
    serve.add_argument(
        "--vocab",
        default="S1(x,y), S2(y,z), S3(z,x)",
        help="query whose atoms define the served relations",
    )
    serve.add_argument(
        "--algorithm",
        choices=["hypercube", "skewaware", "multiround"],
        default=None,
        help="pin the compiler serving requests (REPL default: "
        "hypercube; --tcp default: the cost-based planner)",
    )
    serve.add_argument(
        "--eps",
        type=_parse_eps,
        default=None,
        help="space exponent (default: per-query; multiround uses 0)",
    )
    serve.add_argument(
        "--script",
        help="file with one command per line instead of stdin",
    )
    serve.add_argument(
        "--tcp",
        type=int,
        default=None,
        metavar="PORT",
        help="serve the asyncio JSON-lines RPC protocol on PORT "
        "(planner-routed; 0 picks a free port) instead of the REPL",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address for --tcp",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="with --tcp, expose Prometheus text metrics over HTTP on "
        "PORT (0 picks a free port; default: no metrics listener)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=0,
        help="with --tcp, admit at most N queries at once and queue "
        "the rest (0, the default, disables admission control)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=16,
        help="with --tcp, queue depth behind --max-inflight; excess "
        "requests are shed with a ServerOverloaded error",
    )
    serve.add_argument(
        "--quota-rps",
        type=float,
        default=None,
        help="with --tcp, per-client token-bucket rate limit in "
        "requests/second (default: no quota)",
    )
    serve.add_argument(
        "--quota-burst",
        type=float,
        default=None,
        help="with --tcp, token-bucket burst size "
        "(default: max(2 * quota-rps, 1))",
    )
    serve.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --tcp, drop connections idle for more than SECONDS "
        "(default: keep idle connections open)",
    )
    serve.add_argument(
        "--plan-cache-size", type=int, default=128,
        help="plan-cache entry budget (0 disables)",
    )
    serve.add_argument(
        "--routing-cache-size", type=int, default=512,
        help="routing-cache entry budget (0 disables)",
    )
    serve.add_argument(
        "--result-cache-size", type=int, default=512,
        help="result-cache entry budget (0 disables)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="executor processes: with --tcp, statements fan out "
        "across N worker processes (and N dispatch threads); in the "
        "REPL, the route phase of large rounds runs on N processes. "
        "1 (default) keeps everything in-process",
    )
    serve.add_argument(
        "--chunk-rows",
        type=int,
        default=None,
        help="streaming block size for every served execution (numpy "
        "backend only; default: the REPRO_CHUNK_ROWS env knob)",
    )
    serve.add_argument("--n", type=int, default=200, help="domain size")
    serve.add_argument("--p", type=int, default=16, help="number of servers")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--backend",
        choices=["auto", "pure", "numpy"],
        default="pure",
        help="execution engine for every served request",
    )
    serve.set_defaults(handler=cmd_serve)

    shares = commands.add_parser("shares", help="integer share allocation")
    shares.add_argument("query")
    shares.add_argument("--p", type=int, default=16)
    shares.set_defaults(handler=cmd_shares)

    tables = commands.add_parser("tables", help="regenerate Tables 1 and 2")
    tables.add_argument("--n", type=int, default=60)
    tables.add_argument("--trials", type=int, default=3)
    tables.set_defaults(handler=cmd_tables)

    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.backend import BackendError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (BackendError, QueryError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
