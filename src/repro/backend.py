"""Compute-backend selection for the columnar execution engine.

The engine has two interchangeable backends:

* ``pure`` -- the reference implementation: plain Python loops over
  row tuples, exactly the code paths the paper's pseudo-code maps to.
* ``numpy`` -- vectorized column kernels (batched hashing, batched
  grid ranking, hash joins over int64 arrays), bit-identical to
  ``pure`` but 1-2 orders of magnitude faster at realistic sizes.

Everything in :mod:`repro` that wants numpy must go through
:func:`numpy_or_none` so a single switch controls availability: the
environment variable ``REPRO_DISABLE_NUMPY`` (any non-empty value)
makes the package behave as if numpy were not installed, which is how
CI exercises the pure fallback on machines that do have numpy.
"""

from __future__ import annotations

import os
from typing import Any

PURE = "pure"
NUMPY = "numpy"
AUTO = "auto"

_BACKENDS = (PURE, NUMPY)


class BackendError(Exception):
    """Raised when a requested compute backend is unavailable."""


def numpy_or_none() -> Any:
    """The ``numpy`` module, or None when absent or disabled."""
    if os.environ.get("REPRO_DISABLE_NUMPY"):
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - depends on environment
        return None
    return numpy


def numpy_available() -> bool:
    """True when the ``numpy`` backend can be used."""
    return numpy_or_none() is not None


def available_backends() -> tuple[str, ...]:
    """The backends usable in this environment (``pure`` always is)."""
    if numpy_available():
        return _BACKENDS
    return (PURE,)


def resolve_backend(name: str | None) -> str:
    """Normalise a backend request to a usable backend name.

    Args:
        name: ``"pure"``, ``"numpy"``, ``"auto"`` (numpy when
            available, else pure), or None (defaults to ``pure``, the
            reference implementation).

    Raises:
        BackendError: when ``numpy`` is requested but unavailable.
    """
    if name is None:
        return PURE
    if name == AUTO:
        return NUMPY if numpy_available() else PURE
    if name not in _BACKENDS:
        raise BackendError(
            f"unknown backend {name!r}; choose from {_BACKENDS + (AUTO,)}"
        )
    if name == NUMPY and not numpy_available():
        raise BackendError(
            "numpy backend requested but numpy is not available "
            "(install the [numpy] extra or unset REPRO_DISABLE_NUMPY)"
        )
    return name


def require_numpy() -> Any:
    """The numpy module; raises :class:`BackendError` when missing."""
    numpy = numpy_or_none()
    if numpy is None:
        raise BackendError("this code path requires the numpy backend")
    return numpy
