"""Deterministic fault injection for the serving path.

The degradation paths added with multi-process fan-out and streamed
rounds (dead workers, broken pools, clients vanishing mid-stream) are
hard to exercise reliably with ``kill -9`` probes and real timeouts.
This module turns each of them into an environment knob so tests and
CI legs trigger them deterministically:

``REPRO_FAULT_ROUND_DELAY_MS``
    Sleep this many milliseconds before every engine round (read once
    per plan execution).  Makes a fast query reliably slow, so
    deadline checks *between rounds* fire on demand.
``REPRO_FAULT_BLOCK_DELAY_MS``
    Sleep this many milliseconds after routing each streamed block.
    Makes the deadline expire *mid-round* (inside an open round's
    block loop) -- the dangerous half of cancellation, proving pooled
    simulators survive a partial round.
``REPRO_FAULT_WORKER_DEATH``
    A fan-out worker process exits hard (``os._exit``) immediately
    before answering its N-th query, simulating an OOM kill at the
    worst moment; the parent must mark the pool broken and degrade to
    in-process execution.
``REPRO_FAULT_DISCONNECT_BATCHES``
    The RPC server aborts a streamed response's connection after
    writing N batch lines, simulating a client that vanished
    mid-stream; the server must survive and count the aborted stream.

All knobs are off (no-ops) when unset; malformed values raise at the
first read rather than silently disabling the fault.  The module
imports nothing from the engine or serving layers, so the engine's
lazy calls into it can never cycle.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

ROUND_DELAY_ENV = "REPRO_FAULT_ROUND_DELAY_MS"
BLOCK_DELAY_ENV = "REPRO_FAULT_BLOCK_DELAY_MS"
WORKER_DEATH_ENV = "REPRO_FAULT_WORKER_DEATH"
DISCONNECT_ENV = "REPRO_FAULT_DISCONNECT_BATCHES"

#: Every knob, for introspection (metrics, README, CI matrix).
FAULT_ENVS = (
    ROUND_DELAY_ENV,
    BLOCK_DELAY_ENV,
    WORKER_DEATH_ENV,
    DISCONNECT_ENV,
)


def _float_env(name: str) -> float:
    """A non-negative float knob; 0.0 when unset."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return 0.0
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {raw!r}")
    return value


def _int_env(name: str) -> int | None:
    """A positive integer knob; None when unset."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be an integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {raw!r}")
    return value


def round_delay_seconds() -> float:
    """Injected per-round delay in seconds (0.0 = off)."""
    return _float_env(ROUND_DELAY_ENV) / 1000.0


def block_delay_seconds() -> float:
    """Injected per-streamed-block delay in seconds (0.0 = off)."""
    return _float_env(BLOCK_DELAY_ENV) / 1000.0


def worker_death_after() -> int | None:
    """Query count at which a fan-out worker dies (None = off)."""
    return _int_env(WORKER_DEATH_ENV)


def disconnect_after_batches() -> int | None:
    """Streamed batch count after which the RPC connection is cut."""
    return _int_env(DISCONNECT_ENV)


def inject_round_delay(delay_seconds: float) -> None:
    """Sleep one pre-resolved round delay (hot-loop call site)."""
    if delay_seconds > 0:
        time.sleep(delay_seconds)


@dataclass(frozen=True)
class FaultConfig:
    """A snapshot of every active fault knob."""

    round_delay_ms: float = 0.0
    block_delay_ms: float = 0.0
    worker_death_after: int | None = None
    disconnect_after_batches: int | None = None

    @property
    def any_active(self) -> bool:
        return (
            self.round_delay_ms > 0
            or self.block_delay_ms > 0
            or self.worker_death_after is not None
            or self.disconnect_after_batches is not None
        )


def active_faults() -> FaultConfig:
    """The current environment's fault configuration."""
    return FaultConfig(
        round_delay_ms=_float_env(ROUND_DELAY_ENV),
        block_delay_ms=_float_env(BLOCK_DELAY_ENV),
        worker_death_after=worker_death_after(),
        disconnect_after_batches=disconnect_after_batches(),
    )
