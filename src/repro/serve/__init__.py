"""The serving layer: compile once, execute per request.

The engine boundary (steps in, stats + mailboxes out) is the seam the
whole package builds on: a :class:`~repro.serve.service.QueryService`
is a long-lived process that accepts repeated ``execute(query)`` and
``update(delta)`` calls over a mutating
:class:`~repro.data.versioned.VersionedDatabase`, amortizing planning
across requests:

* a :class:`~repro.serve.cache.PlanCache` keyed by canonicalized
  ``(query, eps, p, backend)`` -- isomorphic queries share one
  compiled plan (:mod:`repro.core.isomorphism` supplies the witness
  that rebinds relations and permutes answer columns);
* a routing cache holding each plan step's pre-routed columns per
  database version, so repeat executions skip the route phase
  entirely and replay ship/deliver/local (loads and capacity checks
  are recomputed, keeping cached and fresh runs bit-identical);
* a result cache memoizing whole executions per (plan, rebind,
  version) -- the repeated-query fast path, including cached
  :class:`~repro.mpc.simulator.CapacityExceeded` failures;
* simulator reuse: one :class:`~repro.mpc.simulator.MPCSimulator` per
  configuration, reset between requests instead of reallocating ``p``
  mailboxes;
* per-request :class:`~repro.engine.profile.RoundProfiler` stats
  aggregated into service-level counters.
"""

from repro.serve.admission import (
    AdmissionQueue,
    ServerOverloaded,
    TokenBucket,
)
from repro.serve.cache import CacheRebind, LRUCache, PlanCache
from repro.serve.faults import FAULT_ENVS, FaultConfig, active_faults
from repro.serve.metrics import Histogram, MetricsServer, render_metrics
from repro.serve.rpc import RpcServer, RpcStats, serve_tcp
from repro.serve.service import (
    QueryService,
    ServiceResult,
    ServiceStats,
)

__all__ = [
    "AdmissionQueue",
    "CacheRebind",
    "FAULT_ENVS",
    "FaultConfig",
    "Histogram",
    "LRUCache",
    "MetricsServer",
    "PlanCache",
    "QueryService",
    "RpcServer",
    "RpcStats",
    "ServerOverloaded",
    "ServiceResult",
    "ServiceStats",
    "TokenBucket",
    "active_faults",
    "render_metrics",
    "serve_tcp",
]
