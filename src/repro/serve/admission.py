"""Admission control for the RPC front end: shed load, don't queue it.

The source paper bounds what one *round* may deliver to a worker; a
production front end must additionally bound what one *server* may
hold in flight.  Without a bound, an open-loop overload (clients
sending faster than the service drains) grows the asyncio task set
and its pending result payloads without limit -- latency of every
admitted request climbs, then memory goes.  The fix is the classic
one: a small bounded queue in front of the executor, everything
beyond it rejected *immediately* with a structured
:class:`ServerOverloaded` the client can back off on.

Two mechanisms, composed by :class:`~repro.serve.rpc.RpcServer`:

* :class:`AdmissionQueue` -- at most ``max_inflight`` requests
  executing plus ``max_queue`` waiting; the next one is shed.
  Waiters are granted slots FIFO, and a waiter whose client
  disconnects leaves the queue without consuming one.
* :class:`TokenBucket` -- per-client request quotas (sustained
  rate + burst), keyed by connection or by the optional wire-level
  ``client_id``, so one chatty client cannot starve the rest of the
  admission queue.

Both are plain asyncio-single-threaded state: every touch happens on
the server's event loop, so no locks are needed.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable


class ServerOverloaded(Exception):
    """The server shed this request instead of queueing it.

    Attributes:
        reason: ``"queue_full"`` (admission queue at capacity) or
            ``"quota"`` (the client's token bucket is empty).
        retry_after_ms: a client backoff hint -- how long until a
            retry has a chance (best effort; 0 means "immediately
            after an inflight request finishes").
    """

    def __init__(self, reason: str, retry_after_ms: float = 0.0) -> None:
        super().__init__(
            f"server overloaded ({reason}); retry after "
            f"{retry_after_ms:.0f} ms"
        )
        self.reason = reason
        self.retry_after_ms = retry_after_ms

    def __reduce__(self):
        return (ServerOverloaded, (self.reason, self.retry_after_ms))


@dataclass
class AdmissionStats:
    """Lifetime counters of one admission queue."""

    admitted: int = 0
    shed: int = 0
    peak_inflight: int = 0
    peak_queued: int = 0


class AdmissionQueue:
    """A bounded FIFO admission gate for one event loop.

    Args:
        max_inflight: requests allowed to execute concurrently.
        max_queue: requests allowed to wait for a slot; the
            ``max_queue + 1``-th waiter is shed with
            :class:`ServerOverloaded` instead of queued.
    """

    def __init__(self, max_inflight: int, max_queue: int = 0) -> None:
        if max_inflight < 1:
            raise ValueError(
                f"need max_inflight >= 1, got {max_inflight}"
            )
        if max_queue < 0:
            raise ValueError(f"need max_queue >= 0, got {max_queue}")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.stats = AdmissionStats()
        self._inflight = 0
        self._waiters: deque[asyncio.Future] = deque()

    @property
    def inflight(self) -> int:
        """Requests currently holding an execution slot."""
        return self._inflight

    @property
    def queued(self) -> int:
        """Requests currently waiting for a slot."""
        return len(self._waiters)

    async def acquire(self) -> None:
        """Take an execution slot, waiting in the bounded queue.

        Raises:
            ServerOverloaded: the queue is full; nothing was consumed.
        """
        if self._inflight < self.max_inflight:
            self._inflight += 1
            self.stats.admitted += 1
            self.stats.peak_inflight = max(
                self.stats.peak_inflight, self._inflight
            )
            return
        if len(self._waiters) >= self.max_queue:
            self.stats.shed += 1
            raise ServerOverloaded("queue_full")
        future: asyncio.Future = (
            asyncio.get_running_loop().create_future()
        )
        self._waiters.append(future)
        self.stats.peak_queued = max(
            self.stats.peak_queued, len(self._waiters)
        )
        try:
            await future
        except asyncio.CancelledError:
            if future.done() and not future.cancelled():
                # The slot was granted concurrently with the
                # cancellation (client vanished as its turn came up):
                # hand it straight to the next waiter.
                self.release()
            else:
                try:
                    self._waiters.remove(future)
                except ValueError:
                    pass
            raise
        # A granted waiter inherits the releaser's slot: inflight was
        # never decremented on that hand-off.
        self.stats.admitted += 1

    def release(self) -> None:
        """Return a slot; the oldest live waiter (if any) inherits it."""
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
                return
        self._inflight -= 1


class TokenBucket:
    """A per-client request-rate quota (sustained rate plus burst).

    Args:
        rate: tokens replenished per second (the sustained
            requests/second allowance).
        burst: bucket capacity (back-to-back requests allowed after
            idling).
        clock: monotonic seconds source (tests inject a fake).
    """

    __slots__ = ("rate", "burst", "_clock", "_tokens", "_updated")

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"need rate > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"need burst >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._updated) * self.rate
        )
        self._updated = now

    def try_acquire(self, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens if available; False means shed."""
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            return True
        return False

    def retry_after_ms(self, cost: float = 1.0) -> float:
        """Milliseconds until ``cost`` tokens will be available."""
        self._refill()
        missing = cost - self._tokens
        if missing <= 0:
            return 0.0
        return missing / self.rate * 1000.0
