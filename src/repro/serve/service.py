"""A long-lived query service over a mutating columnar database.

:class:`QueryService` is the repeated-query serving loop the ROADMAP's
heavy-traffic item asks for: construct it once over a database, then
call :meth:`QueryService.execute` per request and
:meth:`QueryService.update` when the data changes.  Three cache layers
amortize work across requests, each guarded by the database version:

1. **Plans** (:class:`~repro.serve.cache.PlanCache`): compilation --
   covers, shares, grids, step lists -- runs once per isomorphism
   class of (query, eps, p, backend).
2. **Routing** : each plan step's routing decision
   (:class:`~repro.engine.executor.RoutedStep`, the pre-hashed
   destination columns) is cached per database version; replays skip
   the route phase but re-run ship/deliver/local, so loads and
   capacity behaviour are recomputed bit-identically.
3. **Results**: whole executions are memoized per (plan, rebind,
   version) -- the database is immutable between versions, so a
   repeated query is answered without touching the simulator.  A
   cached :class:`~repro.mpc.simulator.CapacityExceeded` is re-raised
   the same way a fresh execution would raise it.

Simulators are pooled per configuration and reset between requests
(allocating ``p`` mailboxes per request is measurable at serving
rates), and each execution's
:class:`~repro.engine.profile.RoundProfiler` phases are aggregated
into the service-level :class:`ServiceStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Iterable, Mapping, Sequence

from repro.algorithms.registry import algorithm_names, compile_with, get_algorithm
from repro.backend import resolve_backend
from repro.core.query import ConjunctiveQuery, QueryError, parse_query
from repro.data.columnar import ColumnarDatabase, ColumnarRelation
from repro.data.database import Database
from repro.data.versioned import DatabaseDelta, VersionedDatabase
from repro.engine import Plan, RoundProfiler, execute_plan, plan_config
from repro.engine.deadline import Deadline, DeadlineExceeded
from repro.engine.profile import PHASES
from repro.serve.metrics import Histogram
from repro.mpc.simulator import CapacityExceeded, MPCSimulator
from repro.mpc.stats import SimulationReport
from repro.serve.cache import (
    CacheRebind,
    LRUCache,
    PlanCache,
    PlanCacheStats,
    identity_rebind,
)
from repro.serve.ivm import (
    IvmManager,
    IvmPolicy,
    MergeCapacity,
    MergeSuccess,
)

#: Sentinel distinguishing "use the service default" from an explicit
#: per-request ``eps=None`` (which means "the query's own exponent").
_UNSET = object()

#: Backwards-compatible alias; the store itself lives in
#: :mod:`repro.serve.cache` now.
_LRU = LRUCache


class _ScopedRoutingCache:
    """The ``(round, step) -> RoutedStep`` view one execution sees.

    Scopes the service-wide routing store to one (plan variant,
    database version) and counts hits/misses into the service stats.
    """

    def __init__(self, store: _LRU, scope: tuple, stats: "ServiceStats") -> None:
        self._store = store
        self._scope = scope
        self._stats = stats

    def get(self, key: tuple) -> Any | None:
        value = self._store.get((self._scope, key))
        if value is None:
            self._stats.routing_misses += 1
        else:
            self._stats.routing_hits += 1
        return value

    def __setitem__(self, key: tuple, value: Any) -> None:
        self._store.put((self._scope, key), value)


@dataclass
class ServiceStats:
    """Service-level counters, aggregated across every request.

    ``phase_seconds`` folds each execution's per-round
    route/ship/deliver/local profile into running totals -- the
    serving-time answer to "where does a request's time go".
    """

    requests: int = 0
    executions: int = 0
    result_hits: int = 0
    routing_hits: int = 0
    routing_misses: int = 0
    routing_evictions: int = 0
    result_evictions: int = 0
    updates: int = 0
    answers_served: int = 0
    capacity_failures: int = 0
    #: Executions cancelled cooperatively by their request deadline.
    deadline_exceeded: int = 0
    #: Post-delta requests served by merging a routed delta into
    #: retained state instead of re-executing the plan (includes
    #: merges that reproduced a capacity failure).
    ivm_hits: int = 0
    #: Post-delta requests where the incremental path declined and a
    #: full re-execution ran; per-reason detail lives on the service's
    #: :class:`~repro.serve.ivm.IvmManager`.
    ivm_fallbacks: int = 0
    #: Rounds whose route phase fanned out across the process pool /
    #: rounds that routed fresh but in-process (parallel serving only;
    #: both stay 0 when the service runs single-process).
    parallel_rounds: int = 0
    fallback_rounds: int = 0
    phase_seconds: dict[str, float] = field(
        default_factory=lambda: {phase: 0.0 for phase in PHASES}
    )
    #: Per-phase distribution of each *execution's* phase total --
    #: what the /metrics endpoint exports as latency histograms.
    phase_histograms: dict[str, Histogram] = field(
        default_factory=lambda: {phase: Histogram() for phase in PHASES}
    )
    plans: PlanCacheStats = field(default_factory=PlanCacheStats)

    def add_profile(self, profiler: RoundProfiler) -> None:
        """Fold one execution's phase timings into the totals."""
        for phase in PHASES:
            seconds = profiler.phase_total(phase)
            self.phase_seconds[phase] += seconds
            self.phase_histograms[phase].observe(seconds)


@dataclass
class ServiceResult:
    """One request's outcome.

    Attributes:
        answers: sorted answer tuples in the *request* query's head
            order.
        per_server: per-worker answer counts of the canonical plan
            execution (padded to ``p``).
        report: the execution's communication statistics (shared with
            other requests that hit the same cached result).
        plan: the (possibly shared) compiled plan that served this.
        version: the database version answered against.
        plan_hit: the plan came from the cache.
        result_hit: the whole execution was memoized.
        heavy_hitters: heavy values bound during execution (skew-aware
            plans only).
        view_sizes: materialised intermediate-view sizes (multi-round
            plans only; empty otherwise).
        ivm: how incremental maintenance participated -- ``"merged"``
            when the request was served by routing only the delta, a
            fallback reason string when the incremental path was
            consulted but declined, None when it was not consulted
            (version 0, result-cache hit, or IVM disabled).
    """

    answers: tuple[tuple[int, ...], ...]
    per_server: tuple[int, ...]
    report: SimulationReport
    plan: Plan
    version: int
    plan_hit: bool
    result_hit: bool
    heavy_hitters: dict[str, frozenset[int]] | None = None
    view_sizes: dict[str, int] = field(default_factory=dict)
    ivm: str | None = None

    @property
    def algorithm(self) -> str:
        """The compiler that produced the served plan."""
        return self.plan.signature.algorithm


@dataclass
class _Outcome:
    """A memoized execution (answers in plan head order)."""

    answers: tuple[tuple[int, ...], ...]
    per_server: tuple[int, ...]
    report: SimulationReport
    heavy_hitters: dict[str, frozenset[int]] | None
    error: CapacityExceeded | None = None
    view_sizes: dict[str, int] = field(default_factory=dict)


class QueryService:
    """Serve repeated conjunctive queries over one mutating database.

    Args:
        database: initial contents; wrapped in (or used as) a
            :class:`~repro.data.versioned.VersionedDatabase`.
        p: number of workers every request runs on.
        algorithm: which compiler serves requests -- ``"hypercube"``
            (default), ``"skewaware"`` or ``"multiround"``.
        eps: space exponent; None lets each query use its own default
            (HC's space exponent; multiround requires a value and
            falls back to 0).
        backend: compute backend, resolved once for every request.
        seed: hash-family seed shared by all plans.
        capacity_c: capacity constant; None picks the algorithm's
            ``run_*`` default.
        enforce_capacity: raise :class:`CapacityExceeded` on overload
            (cached failures re-raise identically).
        plan_cache_size / routing_cache_size / result_cache_size:
            entry budgets of the three cache layers; a size of 0
            disables that layer.
        reuse_simulators: reset-and-reuse one simulator per MPC
            configuration instead of allocating per request.
        profile: collect per-request phase timings into
            :attr:`stats` (a tiny overhead; disable for raw speed).
        workers: executor process count for the in-engine parallel
            route phase.  1 (the default) keeps execution fully
            in-process; >= 2 builds a
            :class:`~repro.engine.parallel.engine.ParallelContext`
            lazily on first execution (numpy backend only -- the pure
            backend routes row-at-a-time and always stays serial).
            Answers, loads and capacity behaviour are bit-identical
            either way.
        parallel_min_rows: sources below this row count route
            in-process even when ``workers >= 2``.
        chunk_rows: streaming block size for every execution (numpy
            backend only).  When set, shardable routing steps stream
            in ``chunk_rows``-row blocks with lazy delivery pools, so
            peak memory per request is bounded by the block and shard
            budgets instead of the full delivery volume -- answers,
            loads and capacity behaviour stay bit-identical.  None
            (the default) defers to the ``REPRO_CHUNK_ROWS``
            environment knob; streaming executions bypass the routing
            cache.
        ivm: serve post-delta requests by routing only the delta and
            merging with retained state when eligible (see
            :mod:`repro.serve.ivm`); answers, loads and capacity
            behaviour stay bit-identical to full re-execution.
        ivm_max_bytes: byte budget for retained IVM state (the RSS
            ceiling; least-recently-used states are evicted beyond
            it and their variants fall back to full re-execution).
        ivm_max_delta_fraction: largest composed-delta size, as a
            fraction of the plan's base rows, the incremental path
            will merge rather than fall back.
    """

    def __init__(
        self,
        database: Database
        | ColumnarDatabase
        | VersionedDatabase
        | Mapping[str, ColumnarRelation],
        p: int,
        *,
        algorithm: str = "hypercube",
        eps: Fraction | float | None = None,
        backend: str | None = None,
        seed: int = 0,
        capacity_c: float | None = None,
        enforce_capacity: bool = False,
        plan_cache_size: int = 128,
        routing_cache_size: int = 512,
        result_cache_size: int = 512,
        reuse_simulators: bool = True,
        profile: bool = True,
        workers: int = 1,
        parallel_min_rows: int | None = None,
        chunk_rows: int | None = None,
        ivm: bool = True,
        ivm_max_bytes: int = 64 << 20,
        ivm_max_delta_fraction: float = 0.25,
    ) -> None:
        if algorithm not in algorithm_names():
            raise ValueError(
                f"unknown serving algorithm {algorithm!r}; expected one "
                f"of {list(algorithm_names())}"
            )
        self.backend = resolve_backend(backend)
        if isinstance(database, VersionedDatabase):
            self._database = database
        else:
            self._database = VersionedDatabase(database, backend=self.backend)
        self.p = p
        self.algorithm = algorithm
        self.eps = None if eps is None else Fraction(eps)
        self.seed = seed
        # None = each algorithm's run_* default (resolved per request,
        # so per-request algorithm overrides stay bit-identical to
        # their direct entry points).
        self._capacity_override = capacity_c
        self.capacity_c = (
            get_algorithm(algorithm).default_capacity_c
            if capacity_c is None
            else capacity_c
        )
        self.enforce_capacity = enforce_capacity
        self.profile = profile
        self.reuse_simulators = reuse_simulators

        self.stats = ServiceStats()
        self._plans = (
            PlanCache(maxsize=plan_cache_size)
            if plan_cache_size > 0
            else None
        )
        if self._plans is not None:
            self.stats.plans = self._plans.stats
        self._routing = (
            _LRU(routing_cache_size, self._count_routing_eviction)
            if routing_cache_size > 0
            else None
        )
        self._results = (
            _LRU(result_cache_size, self._count_result_eviction)
            if result_cache_size > 0
            else None
        )
        self._ivm = (
            IvmManager(
                IvmPolicy(
                    max_delta_fraction=ivm_max_delta_fraction,
                    max_bytes=ivm_max_bytes,
                )
            )
            if ivm
            else None
        )
        self._simulators: dict[tuple, MPCSimulator] = {}
        self.workers = workers
        self._parallel_min_rows = parallel_min_rows
        self.chunk_rows = chunk_rows
        self._parallel: Any = None
        self._parallel_failed = False

    def _parallel_context(self) -> Any:
        """The lazily-built in-engine parallel context, or None.

        Built on first use so single-process services (and pure
        backend ones) never pay spawn costs; a context whose pool
        breaks stays usable=False and execution degrades to the serial
        engine for the rest of the service's life.
        """
        from repro.backend import NUMPY

        if (
            self.workers < 2
            or self.backend != NUMPY
            or self._parallel_failed
        ):
            return None
        if self._parallel is None:
            from repro.engine.parallel.engine import (
                DEFAULT_MIN_ROWS,
                ParallelContext,
            )

            try:
                self._parallel = ParallelContext(
                    self.workers,
                    min_rows=(
                        DEFAULT_MIN_ROWS
                        if self._parallel_min_rows is None
                        else self._parallel_min_rows
                    ),
                )
            except Exception:  # noqa: BLE001 - parallel is optional
                self._parallel_failed = True
                return None
        return self._parallel

    def close(self) -> None:
        """Release parallel resources (pool processes, shared segments).

        The service stays usable -- later executions run (or rebuild
        the context) as configured.  Idempotent.
        """
        if self._parallel is not None:
            self._parallel.close()
            self._parallel = None

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _count_routing_eviction(self) -> None:
        self.stats.routing_evictions += 1

    def _count_result_eviction(self) -> None:
        self.stats.result_evictions += 1

    def _request_params(
        self,
        algorithm: str,
        eps: Fraction | None,
        capacity_c: float | None,
    ) -> tuple:
        """The compile-parameter tuple of one request."""
        if capacity_c is None:
            capacity_c = (
                get_algorithm(algorithm).default_capacity_c
                if self._capacity_override is None
                else self._capacity_override
            )
        return (
            algorithm,
            eps,
            self.p,
            self.backend,
            self.seed,
            capacity_c,
            self.enforce_capacity,
        )

    # -- read side ----------------------------------------------------------

    @property
    def database(self) -> VersionedDatabase:
        """The service's versioned database."""
        return self._database

    @property
    def version(self) -> int:
        """Current database version."""
        return self._database.version

    def validate(self, query: ConjunctiveQuery) -> None:
        """Check the query is answerable against the current schema.

        Raises:
            QueryError: for an atom over a relation the database does
                not hold, or whose arity disagrees with the stored
                relation -- the structured error the REPL and RPC
                front ends surface instead of a downstream traceback.
        """
        snapshot = self._database.snapshot
        for atom in query.atoms:
            if atom.name not in snapshot:
                raise QueryError(
                    f"unknown relation {atom.name!r}; database holds "
                    f"{sorted(snapshot.relations)}"
                )
            stored = snapshot[atom.name].arity
            if stored != atom.arity:
                raise QueryError(
                    f"arity mismatch for {atom.name}: query uses "
                    f"{atom.arity}, database stores {stored}"
                )

    def compile(
        self,
        query: str | ConjunctiveQuery,
        *,
        algorithm: str | None = None,
        eps: Any = _UNSET,
        capacity_c: float | None = None,
    ) -> Plan:
        """The plan a request with these parameters would execute.

        Shares the plan cache with :meth:`execute` (an explain never
        compiles what a later execute would recompile, and vice
        versa).  Overrides behave exactly like :meth:`execute`'s.
        """
        if isinstance(query, str):
            query = parse_query(query)
        self.validate(query)
        algorithm = self.algorithm if algorithm is None else algorithm
        get_algorithm(algorithm)
        request_eps = (
            self.eps if eps is _UNSET
            else None if eps is None
            else Fraction(eps)
        )
        params = self._request_params(algorithm, request_eps, capacity_c)
        if self._plans is None:
            return self._compile(query, params)
        plan, _, _ = self._plans.get_or_compile(
            query, params, lambda canonical: self._compile(canonical, params)
        )
        return plan

    def execute(
        self,
        query: str | ConjunctiveQuery,
        profiler: RoundProfiler | None = None,
        *,
        algorithm: str | None = None,
        eps: Any = _UNSET,
        capacity_c: float | None = None,
        deadline: Deadline | None = None,
    ) -> ServiceResult:
        """Answer one query against the current database version.

        Args:
            query: query text (parsed here) or an already-built
                :class:`~repro.core.query.ConjunctiveQuery`.
            profiler: optional external profiler; phases are recorded
                only when the request actually executes (a memoized
                result has no phases to measure).
            algorithm: per-request compiler override (a registry name;
                the Session planner's hook).  Defaults to the
                service-wide algorithm.
            eps: per-request space exponent override; ``None`` means
                "the query's own default".  Defaults to the
                service-wide setting.
            capacity_c: per-request capacity constant override;
                defaults to the service-wide setting (itself the
                algorithm's ``run_*`` default when never set).
            deadline: optional per-request latency budget.  Checked on
                entry -- *before* the result cache, so an
                already-expired budget deterministically beats any
                memoized outcome, including a cached capacity failure
                -- and cooperatively inside the execution.  A
                deadline-cancelled execution is never cached, and the
                pooled simulator it abandoned is reset by the next
                request exactly like after a capacity failure.

        Returns:
            A :class:`ServiceResult` with answers in the request's
            head order.

        Raises:
            QueryError: malformed query text, unknown relation or
                arity mismatch (see :meth:`validate`), or an unknown
                ``algorithm``.
            CapacityExceeded: when enforcement is on and the execution
                (fresh or memoized) overflowed a worker.
            DeadlineExceeded: the budget ran out before or during the
                execution.
        """
        if isinstance(query, str):
            query = parse_query(query)
        self.validate(query)
        algorithm = self.algorithm if algorithm is None else algorithm
        get_algorithm(algorithm)  # raises QueryError on unknown names
        request_eps = (
            self.eps if eps is _UNSET
            else None if eps is None
            else Fraction(eps)
        )
        params = self._request_params(algorithm, request_eps, capacity_c)
        self.stats.requests += 1
        if deadline is not None and deadline.expired:
            self.stats.deadline_exceeded += 1
            deadline.check("at service entry")

        def compiler(canonical: ConjunctiveQuery) -> Plan:
            return self._compile(canonical, params)

        if self._plans is not None:
            plan, rebind, plan_hit = self._plans.get_or_compile(
                query, params, compiler
            )
        else:
            plan = compiler(query)
            rebind = identity_rebind(query)
            plan_hit = False
            self.stats.plans.misses += 1
        variant = (plan.signature.cache_key, rebind.relation_map)
        version = self._database.version
        outcome: _Outcome | None = None
        ivm_status: str | None = None
        if self._results is not None:
            outcome = self._results.get((variant, version))
        result_hit = outcome is not None
        if outcome is None and self._ivm is not None and version > 0:
            outcome, ivm_status = self._try_ivm(
                plan, variant, version, deadline
            )
        if outcome is None:
            outcome = self._execute(
                plan, rebind, variant, version, profiler, deadline
            )
        if not result_hit and self._results is not None:
            self._results.put((variant, version), outcome)
        if result_hit:
            self.stats.result_hits += 1
        if outcome.error is not None:
            self.stats.capacity_failures += 1
            raise outcome.error
        answers = rebind.remap_answers(outcome.answers)
        self.stats.answers_served += len(answers)
        return ServiceResult(
            answers=answers,
            per_server=outcome.per_server,
            report=outcome.report,
            plan=plan,
            version=version,
            plan_hit=plan_hit,
            result_hit=result_hit,
            heavy_hitters=outcome.heavy_hitters,
            view_sizes=outcome.view_sizes,
            ivm=ivm_status,
        )

    # -- write side ---------------------------------------------------------

    def update(
        self,
        inserts: Mapping[str, Iterable[Sequence[int]]] | None = None,
        deletes: Mapping[str, Iterable[Sequence[int]]] | None = None,
    ) -> int:
        """Mutate the database; returns the new version.

        Plans survive (they are data-independent); routing decisions
        and memoized results of older versions are purged eagerly so
        the caches never serve stale data even if version comparison
        were skipped.
        """
        return self.apply_delta(DatabaseDelta.of(inserts, deletes))

    def apply_delta(self, delta: DatabaseDelta) -> int:
        """Apply a prepared delta; see :meth:`update`.

        A delta that changes nothing *effectively* (empty, deleting
        absent rows, re-inserting present rows) still bumps the
        version -- but the caches *chain*: version-stamped entries are
        re-keyed to the new version instead of purged, so a repeated
        query after a no-op update still hits its memoized result.
        """
        old_version = self._database.version
        version = self._database.apply_delta(delta)
        self.stats.updates += 1
        record = self._database.last_record
        if record is not None and record.is_noop:
            if self._routing is not None:
                self._routing.remap(
                    lambda key: ((key[0][0], version), key[1])
                    if key[0][1] == old_version
                    else None
                )
            if self._results is not None:
                self._results.remap(
                    lambda key: (key[0], version)
                    if key[1] == old_version
                    else None
                )
            if self._ivm is not None:
                self._ivm.fast_forward(old_version, version)
        if self._routing is not None:
            self._routing.purge(lambda key: key[0][1] != version)
        if self._results is not None:
            self._results.purge(lambda key: key[1] != version)
        return version

    # -- internals ----------------------------------------------------------

    @property
    def ivm(self) -> IvmManager | None:
        """The incremental-maintenance manager (None when disabled)."""
        return self._ivm

    @property
    def ivm_retained_bytes(self) -> int:
        """Bytes currently held by retained IVM state."""
        return 0 if self._ivm is None else self._ivm.retained_bytes

    @property
    def ivm_retained_states(self) -> int:
        """Number of plan variants with retained IVM state."""
        return 0 if self._ivm is None else self._ivm.retained_states

    def _try_ivm(
        self,
        plan: Plan,
        variant: tuple,
        version: int,
        deadline: Deadline | None,
    ) -> tuple[_Outcome | None, str | None]:
        """Attempt the incremental path for a post-delta miss.

        Returns ``(outcome, "merged")`` when the delta merge served
        the request (possibly reproducing a capacity failure), or
        ``(None, reason)`` when the full path must run.
        """
        assert self._ivm is not None
        try:
            served = self._ivm.serve(
                variant, plan, version, self._database, deadline
            )
        except DeadlineExceeded:
            # Mirrors a full execution cancelled mid-flight: counted,
            # never cached, retained state left intact for the next
            # request (merges commit only on success).
            self.stats.executions += 1
            self.stats.deadline_exceeded += 1
            raise
        if isinstance(served, MergeSuccess):
            self.stats.executions += 1
            self.stats.ivm_hits += 1
            return (
                _Outcome(
                    answers=served.answers,
                    per_server=served.per_server,
                    report=served.report,
                    heavy_hitters=None,
                    view_sizes=served.view_sizes,
                ),
                "merged",
            )
        if isinstance(served, MergeCapacity):
            self.stats.executions += 1
            self.stats.ivm_hits += 1
            return (
                _Outcome(
                    answers=(),
                    per_server=(),
                    report=SimulationReport(
                        input_bits=served.input_bits
                    ),
                    heavy_hitters=None,
                    error=served.error,
                ),
                "merged",
            )
        self.stats.ivm_fallbacks += 1
        return None, served

    def _compile(self, query: ConjunctiveQuery, params: tuple) -> Plan:
        """Compile through the algorithm registry, one call per miss."""
        algorithm, eps, p, backend, seed, capacity_c, enforce = params
        return compile_with(
            algorithm,
            query,
            p,
            eps=eps,
            seed=seed,
            capacity_c=capacity_c,
            enforce_capacity=enforce,
            backend=backend,
        )

    def _simulator_for(self, plan: Plan) -> MPCSimulator | None:
        if not self.reuse_simulators:
            return None
        config = plan_config(plan)
        key = (config.p, config.eps, config.c, config.backend)
        simulator = self._simulators.get(key)
        if simulator is None:
            simulator = MPCSimulator(
                config,
                input_bits=self._database.total_bits,
                enforce_capacity=plan.signature.enforce_capacity,
            )
            self._simulators[key] = simulator
        return simulator

    def _execute(
        self,
        plan: Plan,
        rebind: CacheRebind,
        variant: tuple,
        version: int,
        profiler: RoundProfiler | None,
        deadline: Deadline | None = None,
    ) -> _Outcome:
        if profiler is None and self.profile:
            profiler = RoundProfiler()
        routed_cache = (
            _ScopedRoutingCache(self._routing, (variant, version), self.stats)
            if self._routing is not None
            else None
        )
        relation_map = (
            None if rebind.is_identity else dict(rebind.relation_map)
        )
        error: CapacityExceeded | None = None
        parallel = self._parallel_context()
        try:
            execution = execute_plan(
                plan,
                self._database.snapshot,
                profiler=profiler,
                simulator=self._simulator_for(plan),
                routed_cache=routed_cache,
                relation_map=relation_map,
                parallel=parallel,
                chunk_rows=self.chunk_rows,
                deadline=deadline,
            )
        except CapacityExceeded as exc:
            error = exc
            execution = None
        except DeadlineExceeded:
            # Not memoizable: a later identical request with a fresh
            # budget must execute for real.  The abandoned simulator is
            # reset by its next user, like after a capacity failure.
            self.stats.executions += 1
            self.stats.deadline_exceeded += 1
            raise
        finally:
            if parallel is not None:
                self.stats.parallel_rounds = parallel.parallel_rounds
                self.stats.fallback_rounds = parallel.fallback_rounds
        self.stats.executions += 1
        if profiler is not None:
            self.stats.add_profile(profiler)
        if error is not None:
            # The report lives on the pooled simulator that raised;
            # keep the failure itself, which carries worker/round/bits.
            return _Outcome(
                answers=(),
                per_server=(),
                report=SimulationReport(
                    input_bits=self._database.total_bits
                ),
                heavy_hitters=None,
                error=error,
            )
        if self._ivm is not None:
            # Post-hoc capture: the pooled simulator still holds this
            # run's deliveries (reset happens at the start of the next
            # run), so retaining routed state needs no engine hooks.
            self._ivm.capture(
                variant,
                plan,
                execution,
                relation_map,
                version,
                self._database,
            )
        return _Outcome(
            answers=execution.answers,
            per_server=execution.per_server,
            report=execution.report,
            heavy_hitters=execution.heavy_hitters,
            view_sizes=execution.view_sizes or {},
        )
