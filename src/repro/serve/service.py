"""A long-lived query service over a mutating columnar database.

:class:`QueryService` is the repeated-query serving loop the ROADMAP's
heavy-traffic item asks for: construct it once over a database, then
call :meth:`QueryService.execute` per request and
:meth:`QueryService.update` when the data changes.  Three cache layers
amortize work across requests, each guarded by the database version:

1. **Plans** (:class:`~repro.serve.cache.PlanCache`): compilation --
   covers, shares, grids, step lists -- runs once per isomorphism
   class of (query, eps, p, backend).
2. **Routing** : each plan step's routing decision
   (:class:`~repro.engine.executor.RoutedStep`, the pre-hashed
   destination columns) is cached per database version; replays skip
   the route phase but re-run ship/deliver/local, so loads and
   capacity behaviour are recomputed bit-identically.
3. **Results**: whole executions are memoized per (plan, rebind,
   version) -- the database is immutable between versions, so a
   repeated query is answered without touching the simulator.  A
   cached :class:`~repro.mpc.simulator.CapacityExceeded` is re-raised
   the same way a fresh execution would raise it.

Simulators are pooled per configuration and reset between requests
(allocating ``p`` mailboxes per request is measurable at serving
rates), and each execution's
:class:`~repro.engine.profile.RoundProfiler` phases are aggregated
into the service-level :class:`ServiceStats`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.backend import resolve_backend
from repro.core.plans import build_plan
from repro.core.query import ConjunctiveQuery, parse_query
from repro.data.columnar import ColumnarDatabase, ColumnarRelation
from repro.data.database import Database
from repro.data.versioned import DatabaseDelta, VersionedDatabase
from repro.engine import Plan, RoundProfiler, execute_plan, plan_config
from repro.engine.profile import PHASES
from repro.mpc.simulator import CapacityExceeded, MPCSimulator
from repro.mpc.stats import SimulationReport
from repro.serve.cache import (
    CacheRebind,
    PlanCache,
    PlanCacheStats,
    identity_rebind,
)

#: Per-algorithm default capacity constants (match the ``run_*``
#: entry points so service executions are bit-identical to them).
_DEFAULT_CAPACITY_C = {
    "hypercube": 4.0,
    "skewaware": 4.0,
    "multiround": 8.0,
}


class _LRU:
    """A minimal LRU store with predicate purging."""

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self._entries: OrderedDict[Any, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Any) -> Any | None:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: Any, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def purge(self, stale: Callable[[Any], bool]) -> int:
        """Drop entries whose *key* satisfies ``stale``."""
        victims = [key for key in self._entries if stale(key)]
        for key in victims:
            del self._entries[key]
        return len(victims)


class _ScopedRoutingCache:
    """The ``(round, step) -> RoutedStep`` view one execution sees.

    Scopes the service-wide routing store to one (plan variant,
    database version) and counts hits/misses into the service stats.
    """

    def __init__(self, store: _LRU, scope: tuple, stats: "ServiceStats") -> None:
        self._store = store
        self._scope = scope
        self._stats = stats

    def get(self, key: tuple) -> Any | None:
        value = self._store.get((self._scope, key))
        if value is None:
            self._stats.routing_misses += 1
        else:
            self._stats.routing_hits += 1
        return value

    def __setitem__(self, key: tuple, value: Any) -> None:
        self._store.put((self._scope, key), value)


@dataclass
class ServiceStats:
    """Service-level counters, aggregated across every request.

    ``phase_seconds`` folds each execution's per-round
    route/ship/deliver/local profile into running totals -- the
    serving-time answer to "where does a request's time go".
    """

    requests: int = 0
    executions: int = 0
    result_hits: int = 0
    routing_hits: int = 0
    routing_misses: int = 0
    updates: int = 0
    answers_served: int = 0
    capacity_failures: int = 0
    phase_seconds: dict[str, float] = field(
        default_factory=lambda: {phase: 0.0 for phase in PHASES}
    )
    plans: PlanCacheStats = field(default_factory=PlanCacheStats)

    def add_profile(self, profiler: RoundProfiler) -> None:
        """Fold one execution's phase timings into the totals."""
        for phase in PHASES:
            self.phase_seconds[phase] += profiler.phase_total(phase)


@dataclass
class ServiceResult:
    """One request's outcome.

    Attributes:
        answers: sorted answer tuples in the *request* query's head
            order.
        per_server: per-worker answer counts of the canonical plan
            execution (padded to ``p``).
        report: the execution's communication statistics (shared with
            other requests that hit the same cached result).
        plan: the (possibly shared) compiled plan that served this.
        version: the database version answered against.
        plan_hit: the plan came from the cache.
        result_hit: the whole execution was memoized.
        heavy_hitters: heavy values bound during execution (skew-aware
            plans only).
    """

    answers: tuple[tuple[int, ...], ...]
    per_server: tuple[int, ...]
    report: SimulationReport
    plan: Plan
    version: int
    plan_hit: bool
    result_hit: bool
    heavy_hitters: dict[str, frozenset[int]] | None = None


@dataclass
class _Outcome:
    """A memoized execution (answers in plan head order)."""

    answers: tuple[tuple[int, ...], ...]
    per_server: tuple[int, ...]
    report: SimulationReport
    heavy_hitters: dict[str, frozenset[int]] | None
    error: CapacityExceeded | None = None


class QueryService:
    """Serve repeated conjunctive queries over one mutating database.

    Args:
        database: initial contents; wrapped in (or used as) a
            :class:`~repro.data.versioned.VersionedDatabase`.
        p: number of workers every request runs on.
        algorithm: which compiler serves requests -- ``"hypercube"``
            (default), ``"skewaware"`` or ``"multiround"``.
        eps: space exponent; None lets each query use its own default
            (HC's space exponent; multiround requires a value and
            falls back to 0).
        backend: compute backend, resolved once for every request.
        seed: hash-family seed shared by all plans.
        capacity_c: capacity constant; None picks the algorithm's
            ``run_*`` default.
        enforce_capacity: raise :class:`CapacityExceeded` on overload
            (cached failures re-raise identically).
        plan_cache_size / routing_cache_size / result_cache_size:
            entry budgets of the three cache layers; a size of 0
            disables that layer.
        reuse_simulators: reset-and-reuse one simulator per MPC
            configuration instead of allocating per request.
        profile: collect per-request phase timings into
            :attr:`stats` (a tiny overhead; disable for raw speed).
    """

    def __init__(
        self,
        database: Database
        | ColumnarDatabase
        | VersionedDatabase
        | Mapping[str, ColumnarRelation],
        p: int,
        *,
        algorithm: str = "hypercube",
        eps: Fraction | float | None = None,
        backend: str | None = None,
        seed: int = 0,
        capacity_c: float | None = None,
        enforce_capacity: bool = False,
        plan_cache_size: int = 128,
        routing_cache_size: int = 512,
        result_cache_size: int = 512,
        reuse_simulators: bool = True,
        profile: bool = True,
    ) -> None:
        if algorithm not in _DEFAULT_CAPACITY_C:
            raise ValueError(
                f"unknown serving algorithm {algorithm!r}; expected one "
                f"of {sorted(_DEFAULT_CAPACITY_C)}"
            )
        self.backend = resolve_backend(backend)
        if isinstance(database, VersionedDatabase):
            self._database = database
        else:
            self._database = VersionedDatabase(database, backend=self.backend)
        self.p = p
        self.algorithm = algorithm
        self.eps = None if eps is None else Fraction(eps)
        self.seed = seed
        self.capacity_c = (
            _DEFAULT_CAPACITY_C[algorithm]
            if capacity_c is None
            else capacity_c
        )
        self.enforce_capacity = enforce_capacity
        self.profile = profile
        self.reuse_simulators = reuse_simulators

        self.stats = ServiceStats()
        self._plans = (
            PlanCache(maxsize=plan_cache_size)
            if plan_cache_size > 0
            else None
        )
        if self._plans is not None:
            self.stats.plans = self._plans.stats
        self._routing = (
            _LRU(routing_cache_size) if routing_cache_size > 0 else None
        )
        self._results = (
            _LRU(result_cache_size) if result_cache_size > 0 else None
        )
        self._simulators: dict[tuple, MPCSimulator] = {}
        self._params = (
            algorithm,
            self.eps,
            p,
            self.backend,
            seed,
            self.capacity_c,
            enforce_capacity,
        )

    # -- read side ----------------------------------------------------------

    @property
    def database(self) -> VersionedDatabase:
        """The service's versioned database."""
        return self._database

    @property
    def version(self) -> int:
        """Current database version."""
        return self._database.version

    def execute(
        self,
        query: str | ConjunctiveQuery,
        profiler: RoundProfiler | None = None,
    ) -> ServiceResult:
        """Answer one query against the current database version.

        Args:
            query: query text (parsed here) or an already-built
                :class:`~repro.core.query.ConjunctiveQuery`.
            profiler: optional external profiler; phases are recorded
                only when the request actually executes (a memoized
                result has no phases to measure).

        Returns:
            A :class:`ServiceResult` with answers in the request's
            head order.

        Raises:
            CapacityExceeded: when enforcement is on and the execution
                (fresh or memoized) overflowed a worker.
        """
        if isinstance(query, str):
            query = parse_query(query)
        self.stats.requests += 1
        if self._plans is not None:
            plan, rebind, plan_hit = self._plans.get_or_compile(
                query, self._params, self._compile
            )
        else:
            plan = self._compile(query)
            rebind = identity_rebind(query)
            plan_hit = False
            self.stats.plans.misses += 1
        variant = (plan.signature.cache_key, rebind.relation_map)
        version = self._database.version
        outcome: _Outcome | None = None
        if self._results is not None:
            outcome = self._results.get((variant, version))
        result_hit = outcome is not None
        if outcome is None:
            outcome = self._execute(plan, rebind, variant, version, profiler)
            if self._results is not None:
                self._results.put((variant, version), outcome)
        else:
            self.stats.result_hits += 1
        if outcome.error is not None:
            self.stats.capacity_failures += 1
            raise outcome.error
        answers = rebind.remap_answers(outcome.answers)
        self.stats.answers_served += len(answers)
        return ServiceResult(
            answers=answers,
            per_server=outcome.per_server,
            report=outcome.report,
            plan=plan,
            version=version,
            plan_hit=plan_hit,
            result_hit=result_hit,
            heavy_hitters=outcome.heavy_hitters,
        )

    # -- write side ---------------------------------------------------------

    def update(
        self,
        inserts: Mapping[str, Iterable[Sequence[int]]] | None = None,
        deletes: Mapping[str, Iterable[Sequence[int]]] | None = None,
    ) -> int:
        """Mutate the database; returns the new version.

        Plans survive (they are data-independent); routing decisions
        and memoized results of older versions are purged eagerly so
        the caches never serve stale data even if version comparison
        were skipped.
        """
        return self.apply_delta(DatabaseDelta.of(inserts, deletes))

    def apply_delta(self, delta: DatabaseDelta) -> int:
        """Apply a prepared delta; see :meth:`update`."""
        version = self._database.apply_delta(delta)
        self.stats.updates += 1
        if self._routing is not None:
            self._routing.purge(lambda key: key[0][1] != version)
        if self._results is not None:
            self._results.purge(lambda key: key[1] != version)
        return version

    # -- internals ----------------------------------------------------------

    def _compile(self, query: ConjunctiveQuery) -> Plan:
        if self.algorithm == "hypercube":
            from repro.algorithms.hypercube import compile_hypercube

            return compile_hypercube(
                query,
                self.p,
                eps=self.eps,
                seed=self.seed,
                capacity_c=self.capacity_c,
                enforce_capacity=self.enforce_capacity,
                backend=self.backend,
            )
        if self.algorithm == "skewaware":
            from repro.algorithms.skewaware import compile_skew_aware

            return compile_skew_aware(
                query,
                self.p,
                eps=self.eps,
                seed=self.seed,
                capacity_c=self.capacity_c,
                enforce_capacity=self.enforce_capacity,
                backend=self.backend,
            )
        from repro.algorithms.multiround import compile_multiround

        logical = build_plan(
            query, Fraction(0) if self.eps is None else self.eps
        )
        return compile_multiround(
            logical,
            self.p,
            seed=self.seed,
            capacity_c=self.capacity_c,
            enforce_capacity=self.enforce_capacity,
            backend=self.backend,
        )

    def _simulator_for(self, plan: Plan) -> MPCSimulator | None:
        if not self.reuse_simulators:
            return None
        config = plan_config(plan)
        key = (config.p, config.eps, config.c, config.backend)
        simulator = self._simulators.get(key)
        if simulator is None:
            simulator = MPCSimulator(
                config,
                input_bits=self._database.total_bits,
                enforce_capacity=plan.signature.enforce_capacity,
            )
            self._simulators[key] = simulator
        return simulator

    def _execute(
        self,
        plan: Plan,
        rebind: CacheRebind,
        variant: tuple,
        version: int,
        profiler: RoundProfiler | None,
    ) -> _Outcome:
        if profiler is None and self.profile:
            profiler = RoundProfiler()
        routed_cache = (
            _ScopedRoutingCache(self._routing, (variant, version), self.stats)
            if self._routing is not None
            else None
        )
        relation_map = (
            None if rebind.is_identity else dict(rebind.relation_map)
        )
        error: CapacityExceeded | None = None
        try:
            execution = execute_plan(
                plan,
                self._database.snapshot,
                profiler=profiler,
                simulator=self._simulator_for(plan),
                routed_cache=routed_cache,
                relation_map=relation_map,
            )
        except CapacityExceeded as exc:
            error = exc
            execution = None
        self.stats.executions += 1
        if profiler is not None:
            self.stats.add_profile(profiler)
        if error is not None:
            # The report lives on the pooled simulator that raised;
            # keep the failure itself, which carries worker/round/bits.
            return _Outcome(
                answers=(),
                per_server=(),
                report=SimulationReport(
                    input_bits=self._database.total_bits
                ),
                heavy_hitters=None,
                error=error,
            )
        return _Outcome(
            answers=execution.answers,
            per_server=execution.per_server,
            report=execution.report,
            heavy_hitters=execution.heavy_hitters,
        )
