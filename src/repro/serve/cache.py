"""The plan cache: canonicalized query -> compiled plan.

Plans are data-independent (see :mod:`repro.engine.plan`), so the only
cache key that matters is *what was compiled*: the query and the MPC
parameters ``(eps, p, backend, seed, ...)``.  Queries are matched up
to isomorphism -- ``q(x,y,z) = S1(x,y), S2(y,z)`` and
``q(a,b,c) = S2(u,v), S1(v,w)`` route differently but answer the same
question, so they share one plan: the cache stores the first-seen
query as the canonical representative and uses
:func:`repro.core.isomorphism.find_query_isomorphism` to build a
:class:`CacheRebind` for every isomorphic variant (which relations
feed which steps, and how answer columns permute back into the
request's head order).

Lookup cost: an exact hit is one dict probe.  An isomorphic probe is
restricted to a bucket of structurally-compatible candidates (same
atom count, variable count, arity multiset and variable-degree
multiset), and each successful probe installs an alias entry so the
variant hits exactly from then on.  Entries are LRU-evicted beyond
``maxsize``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.isomorphism import find_query_isomorphism
from repro.core.query import ConjunctiveQuery
from repro.engine.plan import Plan


class LRUCache:
    """A minimal LRU store with predicate purging.

    The bounded store behind the service's routing/result caches and
    the session's planner-decision/profile caches.  ``on_evict`` (when
    given) is called once per size-cap eviction -- the hook
    :class:`~repro.serve.service.ServiceStats` counts cache pressure
    through.  Predicate purges (version invalidation) are not
    evictions.
    """

    def __init__(
        self, maxsize: int, on_evict: Callable[[], None] | None = None
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"need maxsize >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict[Any, Any] = OrderedDict()
        self._on_evict = on_evict

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Any) -> Any | None:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: Any, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            if self._on_evict is not None:
                self._on_evict()

    def purge(self, stale: Callable[[Any], bool]) -> int:
        """Drop entries whose *key* satisfies ``stale``."""
        victims = [key for key in self._entries if stale(key)]
        for key in victims:
            del self._entries[key]
        return len(victims)

    def remap(self, rekey: Callable[[Any], Any | None]) -> int:
        """Rewrite entry keys in place, preserving recency order.

        ``rekey`` maps each key to its replacement, or ``None`` to
        keep the key unchanged.  Used to chain version-stamped caches
        across a no-op version bump: the values stay valid, only the
        version embedded in the key moves.  When a rewritten key
        collides with an existing one, the rewritten entry wins.

        Returns:
            The number of keys rewritten.
        """
        moved = 0
        entries = OrderedDict()
        for key, value in self._entries.items():
            new_key = rekey(key)
            if new_key is not None and new_key != key:
                moved += 1
                key = new_key
            entries[key] = value
        self._entries = entries
        return moved


@dataclass(frozen=True)
class CacheRebind:
    """How to execute a cached plan for an isomorphic request.

    Attributes:
        relation_map: plan relation name -> request (database)
            relation name; feeds
            :func:`repro.engine.executor.execute_plan`'s
            ``relation_map``.
        head_permutation: request answer column ``i`` is plan answer
            column ``head_permutation[i]``.
    """

    relation_map: tuple[tuple[str, str], ...]
    head_permutation: tuple[int, ...]

    @property
    def is_identity(self) -> bool:
        """True when the request is the canonical query itself."""
        return all(
            plan_name == request_name
            for plan_name, request_name in self.relation_map
        ) and self.head_permutation == tuple(
            range(len(self.head_permutation))
        )

    def remap_answers(
        self, answers: tuple[tuple[int, ...], ...]
    ) -> tuple[tuple[int, ...], ...]:
        """Permute answer columns into the request's head order.

        The plan's answers come back sorted in the *plan* head order;
        a non-trivial permutation breaks sortedness, so re-sort.
        """
        permutation = self.head_permutation
        if permutation == tuple(range(len(permutation))):
            return answers
        return tuple(
            sorted(
                tuple(row[i] for i in permutation) for row in answers
            )
        )


def identity_rebind(query: ConjunctiveQuery) -> CacheRebind:
    """The no-op rebind of a query served by its own plan."""
    return CacheRebind(
        relation_map=tuple(
            (atom.name, atom.name) for atom in query.atoms
        ),
        head_permutation=tuple(range(len(query.head))),
    )


def _rebind_from_isomorphism(
    request: ConjunctiveQuery, canonical: ConjunctiveQuery
) -> CacheRebind | None:
    witness = find_query_isomorphism(request, canonical)
    if witness is None:
        return None
    # witness.atoms: request atom -> canonical atom.  The executor
    # wants the other direction: which request relation feeds each
    # plan (canonical) relation.
    relation_map = tuple(
        sorted(
            (canonical_name, request_name)
            for request_name, canonical_name in witness.atoms.items()
        )
    )
    head_permutation = tuple(
        canonical.head.index(witness.variables[variable])
        for variable in request.head
    )
    return CacheRebind(
        relation_map=relation_map, head_permutation=head_permutation
    )


def _structure_fingerprint(query: ConjunctiveQuery) -> tuple:
    """A cheap isomorphism invariant bucketing candidate queries."""
    degrees = sorted(
        sum(atom.variables.count(variable) for atom in query.atoms)
        for variable in query.variables
    )
    return (
        query.num_atoms,
        query.num_variables,
        tuple(sorted(atom.arity for atom in query.atoms)),
        tuple(degrees),
    )


@dataclass
class _Entry:
    plan: Plan
    canonical: ConjunctiveQuery
    rebind: CacheRebind
    # The bucket this entry is probeable from (None for alias entries
    # of isomorphic variants); kept so eviction can clean the bucket
    # index without scanning every bucket.
    bucket_key: tuple | None = None


@dataclass
class PlanCacheStats:
    """Counters a long-lived service exposes for observability."""

    hits: int = 0
    isomorphic_hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups answered."""
        return self.hits + self.isomorphic_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that avoided compilation."""
        lookups = self.lookups
        return (
            (self.hits + self.isomorphic_hits) / lookups if lookups else 0.0
        )


class PlanCache:
    """An LRU cache of compiled plans, matched up to isomorphism.

    Args:
        maxsize: entry budget (alias entries for isomorphic variants
            count too); least-recently-used entries are evicted.
    """

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ValueError(f"need maxsize >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.stats = PlanCacheStats()
        # exact key -> entry; exact key embeds query text + head +
        # the compile parameters.
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        # bucket (structure fingerprint + parameters) -> exact keys of
        # canonical entries (not aliases) to probe for isomorphism.
        self._buckets: dict[tuple, list[tuple]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _exact_key(query: ConjunctiveQuery, params: tuple) -> tuple:
        return (str(query), query.head, params)

    def get_or_compile(
        self,
        query: ConjunctiveQuery,
        params: tuple,
        compiler: Callable[[ConjunctiveQuery], Plan],
    ) -> tuple[Plan, CacheRebind, bool]:
        """The cached plan for ``query`` under ``params``.

        Args:
            query: the request query.
            params: every compile parameter that affects the plan
                (``eps``, ``p``, ``backend``, seed, capacity...); two
                requests share a plan only when their params match
                exactly.
            compiler: called with ``query`` on a miss; its plan is
                stored as the canonical entry for the whole
                isomorphism class.

        Returns:
            ``(plan, rebind, hit)`` -- ``hit`` is False only when the
            compiler ran.
        """
        exact = self._exact_key(query, params)
        entry = self._entries.get(exact)
        if entry is not None:
            self._entries.move_to_end(exact)
            self.stats.hits += 1
            return entry.plan, entry.rebind, True

        bucket_key = (_structure_fingerprint(query), params)
        for candidate_key in self._buckets.get(bucket_key, []):
            candidate = self._entries.get(candidate_key)
            if candidate is None:
                continue
            rebind = _rebind_from_isomorphism(query, candidate.canonical)
            if rebind is None:
                continue
            self._entries.move_to_end(candidate_key)
            self.stats.isomorphic_hits += 1
            # Alias entry: the variant hits exactly from now on.
            self._store(
                exact,
                _Entry(
                    plan=candidate.plan,
                    canonical=candidate.canonical,
                    rebind=rebind,
                ),
            )
            return candidate.plan, rebind, True

        plan = compiler(query)
        self.stats.misses += 1
        self._store(
            exact,
            _Entry(
                plan=plan,
                canonical=query,
                rebind=identity_rebind(query),
                bucket_key=bucket_key,
            ),
        )
        return plan, identity_rebind(query), False

    def _store(self, exact: tuple, entry: _Entry) -> None:
        self._entries[exact] = entry
        if entry.bucket_key is not None:
            self._buckets.setdefault(entry.bucket_key, []).append(exact)
        while len(self._entries) > self.maxsize:
            evicted_key, evicted = self._entries.popitem(last=False)
            self.stats.evictions += 1
            if evicted.bucket_key is None:
                continue
            keys = self._buckets.get(evicted.bucket_key)
            if keys is None:
                continue
            if evicted_key in keys:
                keys.remove(evicted_key)
            if not keys:
                del self._buckets[evicted.bucket_key]

    def clear(self) -> None:
        """Drop every entry (stats are kept)."""
        self._entries.clear()
        self._buckets.clear()
