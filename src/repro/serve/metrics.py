"""A Prometheus text-format ``/metrics`` endpoint for the RPC server.

Operating "millions of users" starts with seeing the server: this
module renders every serving-layer counter -- RPC protocol stats,
admission/shed/quota/deadline counters, service cache hits, fan-out
worker liveness, per-phase execution-latency histograms -- in the
Prometheus text exposition format (version 0.0.4), served by a tiny
asyncio HTTP/1.x listener (:class:`MetricsServer`) that shares the
RPC server's event loop.  No third-party client library: the format
is lines of ``name{labels} value`` with ``# HELP`` / ``# TYPE``
comments, and writing it directly keeps the serving path free of new
dependencies.

The module deliberately imports nothing from the rest of the serving
layer at module scope -- :class:`Histogram` is used *by*
:class:`~repro.serve.service.ServiceStats`, so the dependency arrow
points here.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Iterable

#: Prometheus text exposition format version served as Content-Type.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default latency buckets (seconds): sub-millisecond service hits up
#: to multi-second heavy plans, roughly x2.5 per step.
DEFAULT_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class Histogram:
    """A fixed-bucket cumulative histogram (Prometheus semantics).

    ``observe`` is O(buckets); rendering emits the cumulative
    ``_bucket`` series (each ``le`` bound counts observations at or
    below it), plus ``_sum`` and ``_count``.  Picklable (fan-out
    workers ship their ServiceStats, histograms included, over the
    pipe).
    """

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(
        self, bounds: Iterable[float] = DEFAULT_BUCKETS
    ) -> None:
        self.bounds = tuple(sorted(float(bound) for bound in bounds))
        if not self.bounds:
            raise ValueError("need at least one bucket bound")
        #: per-bound non-cumulative counts plus the +Inf overflow slot.
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation (seconds, bytes -- any unit)."""
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram with identical bounds into this one."""
        if other.bounds != self.bounds:
            raise ValueError("histogram bucket bounds differ")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.count += other.count

    def quantile(self, q: float) -> float:
        """A bucket-resolution quantile estimate (upper bound)."""
        if not 0 <= q <= 1:
            raise ValueError(f"need 0 <= q <= 1, got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for index, bound in enumerate(self.bounds):
            seen += self.counts[index]
            if seen >= target:
                return bound
        return float("inf")

    def __reduce__(self):
        return (
            _rebuild_histogram,
            (self.bounds, tuple(self.counts), self.total, self.count),
        )


def _rebuild_histogram(bounds, counts, total, count) -> Histogram:
    histogram = Histogram(bounds)
    histogram.counts = list(counts)
    histogram.total = total
    histogram.count = count
    return histogram


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        if value == float("inf"):
            return "+Inf"
        return repr(value)
    return str(value)


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _labels(labels: dict[str, Any] | None) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


class MetricsRegistry:
    """Accumulates one scrape's lines, then renders the page."""

    def __init__(self, prefix: str = "repro") -> None:
        self.prefix = prefix
        self._lines: list[str] = []

    def sample(
        self,
        name: str,
        kind: str,
        help_text: str,
        value: Any = None,
        series: Iterable[tuple[dict[str, Any] | None, Any]] | None = None,
    ) -> None:
        """One metric family: HELP + TYPE + its sample lines."""
        full = f"{self.prefix}_{name}"
        self._lines.append(f"# HELP {full} {help_text}")
        self._lines.append(f"# TYPE {full} {kind}")
        if series is None:
            series = [(None, value)]
        for labels, sample_value in series:
            self._lines.append(
                f"{full}{_labels(labels)} {_format_value(sample_value)}"
            )

    def histogram(
        self,
        name: str,
        help_text: str,
        histograms: Iterable[tuple[dict[str, Any] | None, Histogram]],
    ) -> None:
        """One histogram family (cumulative buckets, _sum, _count)."""
        full = f"{self.prefix}_{name}"
        self._lines.append(f"# HELP {full} {help_text}")
        self._lines.append(f"# TYPE {full} histogram")
        for labels, histogram in histograms:
            base = dict(labels or {})
            cumulative = 0
            for bound, count in zip(
                histogram.bounds, histogram.counts
            ):
                cumulative += count
                bucket_labels = dict(base)
                bucket_labels["le"] = _format_value(float(bound))
                self._lines.append(
                    f"{full}_bucket{_labels(bucket_labels)} {cumulative}"
                )
            bucket_labels = dict(base)
            bucket_labels["le"] = "+Inf"
            self._lines.append(
                f"{full}_bucket{_labels(bucket_labels)} "
                f"{histogram.count}"
            )
            self._lines.append(
                f"{full}_sum{_labels(base or None)} "
                f"{_format_value(histogram.total)}"
            )
            self._lines.append(
                f"{full}_count{_labels(base or None)} {histogram.count}"
            )

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


def render_metrics(server: Any) -> str:
    """The full ``/metrics`` page for one RPC server.

    ``server`` is an :class:`~repro.serve.rpc.RpcServer`; duck-typed
    so tests can feed a stub.  Counter names follow the Prometheus
    conventions: ``_total`` suffix on counters, base units (seconds),
    one family per concern.
    """
    registry = MetricsRegistry()
    rpc = server.stats
    session = server.session
    service = session.stats

    registry.sample(
        "rpc_connections_total", "counter",
        "Client connections accepted.", rpc.connections,
    )
    registry.sample(
        "rpc_requests_total", "counter",
        "Requests received, by operation.",
        series=[
            ({"op": op}, count)
            for op, count in sorted(rpc.by_op.items())
        ] or [(None, 0)],
    )
    registry.sample(
        "rpc_errors_total", "counter",
        "Requests answered with ok=false.", rpc.errors,
    )
    registry.sample(
        "rpc_coalesced_total", "counter",
        "Queries served by an identical in-flight execution.",
        rpc.coalesced,
    )
    registry.sample(
        "rpc_streamed_batches_total", "counter",
        "Batch lines written for streamed queries.",
        rpc.streamed_batches,
    )
    registry.sample(
        "rpc_idle_timeouts_total", "counter",
        "Connections closed by the idle read timeout.",
        rpc.idle_timeouts,
    )
    registry.sample(
        "rpc_aborted_streams_total", "counter",
        "Streamed responses cut short by client disconnects.",
        rpc.aborted_streams,
    )
    registry.sample(
        "rpc_deadline_exceeded_total", "counter",
        "Requests that ran out of their deadline_ms budget.",
        rpc.deadline_exceeded,
    )
    registry.sample(
        "rpc_shed_total", "counter",
        "Requests shed with ServerOverloaded, by reason.",
        series=[
            ({"reason": "queue_full"}, rpc.shed_overload),
            ({"reason": "quota"}, rpc.shed_quota),
        ],
    )

    admission = server.admission
    registry.sample(
        "admission_inflight", "gauge",
        "Queries currently holding an execution slot.",
        admission.inflight if admission is not None else 0,
    )
    registry.sample(
        "admission_queued", "gauge",
        "Queries currently waiting for an execution slot.",
        admission.queued if admission is not None else 0,
    )
    registry.sample(
        "admission_admitted_total", "counter",
        "Queries granted an execution slot.",
        admission.stats.admitted if admission is not None else 0,
    )
    registry.sample(
        "admission_limit_inflight", "gauge",
        "Configured max_inflight (0 = admission control off).",
        admission.max_inflight if admission is not None else 0,
    )
    registry.sample(
        "admission_limit_queue", "gauge",
        "Configured max_queue.",
        admission.max_queue if admission is not None else 0,
    )

    registry.sample(
        "service_requests_total", "counter",
        "Statements the query service accepted.", service.requests,
    )
    registry.sample(
        "service_executions_total", "counter",
        "Statements that executed (result-cache misses).",
        service.executions,
    )
    registry.sample(
        "service_result_hits_total", "counter",
        "Whole-execution result-cache hits.", service.result_hits,
    )
    registry.sample(
        "service_routing_total", "counter",
        "Routing-cache lookups, by outcome.",
        series=[
            ({"outcome": "hit"}, service.routing_hits),
            ({"outcome": "miss"}, service.routing_misses),
        ],
    )
    registry.sample(
        "service_cache_evictions_total", "counter",
        "Size-cap evictions, by cache layer.",
        series=[
            ({"cache": "plan"}, service.plans.evictions),
            ({"cache": "routing"}, service.routing_evictions),
            ({"cache": "result"}, service.result_evictions),
        ],
    )
    registry.sample(
        "service_plan_compiles_total", "counter",
        "Plan-cache misses (fresh compilations).",
        service.plans.misses,
    )
    registry.sample(
        "service_updates_total", "counter",
        "Database mutations applied.", service.updates,
    )
    registry.sample(
        "service_answers_served_total", "counter",
        "Answer tuples returned across all requests.",
        service.answers_served,
    )
    registry.sample(
        "service_capacity_failures_total", "counter",
        "Executions that raised CapacityExceeded.",
        service.capacity_failures,
    )
    registry.sample(
        "service_deadline_exceeded_total", "counter",
        "Executions cancelled by their deadline.",
        service.deadline_exceeded,
    )
    registry.sample(
        "ivm_requests_total", "counter",
        "Post-delta executions the IVM layer was consulted for, "
        "by outcome.",
        series=[
            ({"outcome": "hit"}, service.ivm_hits),
            ({"outcome": "fallback"}, service.ivm_fallbacks),
        ],
    )
    ivm = getattr(getattr(session, "service", None), "ivm", None)
    registry.sample(
        "ivm_fallbacks_total", "counter",
        "IVM fallbacks to full re-execution, by reason.",
        series=[
            ({"reason": reason}, count)
            for reason, count in sorted(
                ivm.fallback_reasons.items()
            )
        ] if ivm is not None and ivm.fallback_reasons else [(None, 0)],
    )
    registry.sample(
        "ivm_retained_bytes", "gauge",
        "Bytes of routed state retained for incremental maintenance.",
        ivm.retained_bytes if ivm is not None else 0,
    )
    registry.sample(
        "ivm_retained_states", "gauge",
        "Retained (plan variant) states in the IVM store.",
        ivm.retained_states if ivm is not None else 0,
    )
    registry.sample(
        "engine_rounds_total", "counter",
        "Engine rounds, by execution mode.",
        series=[
            ({"mode": "parallel"}, service.parallel_rounds),
            ({"mode": "fallback"}, service.fallback_rounds),
        ],
    )
    registry.sample(
        "phase_seconds_total", "counter",
        "Cumulative execution seconds, by engine phase.",
        series=[
            ({"phase": phase}, seconds)
            for phase, seconds in sorted(
                service.phase_seconds.items()
            )
        ],
    )
    registry.histogram(
        "phase_seconds", "Per-execution seconds, by engine phase.",
        [
            ({"phase": phase}, histogram)
            for phase, histogram in sorted(
                service.phase_histograms.items()
            )
        ],
    )
    registry.histogram(
        "request_seconds",
        "RPC query latency (admission wait + execution).",
        [(None, rpc.request_latency)],
    )

    fanout = getattr(session, "fanout", None)
    registry.sample(
        "fanout_workers", "gauge",
        "Configured fan-out worker processes.",
        fanout.workers if fanout is not None else 0,
    )
    registry.sample(
        "fanout_usable", "gauge",
        "Whether the fan-out pool can still dispatch (1 = yes).",
        bool(fanout is not None and fanout.usable),
    )
    registry.sample(
        "fanout_alive_workers", "gauge",
        "Fan-out worker processes currently alive.",
        fanout.alive_workers if fanout is not None else 0,
    )
    registry.sample(
        "fanout_queries_total", "counter",
        "Statements dispatched to fan-out workers.",
        fanout.queries if fanout is not None else 0,
    )
    registry.sample(
        "fanout_killed_stragglers_total", "counter",
        "Workers that had to be killed at shutdown.",
        fanout.killed_stragglers if fanout is not None else 0,
    )

    registry.sample(
        "database_version", "gauge",
        "Current database version.", session.version,
    )
    from repro.serve.faults import active_faults

    registry.sample(
        "faults_active", "gauge",
        "Whether any REPRO_FAULT_* injection knob is set.",
        active_faults().any_active,
    )
    return registry.render()


class MetricsServer:
    """A minimal HTTP/1.x listener serving ``GET /metrics``.

    Shares the RPC server's event loop (no threads): one
    ``asyncio.start_server`` whose handler answers ``/metrics`` with
    the rendered page, ``/healthz`` with a liveness line, and
    anything else with 404.  Keep-alive is not offered
    (``Connection: close``) -- scrapers reconnect per scrape.
    """

    def __init__(
        self,
        rpc_server: Any,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.rpc_server = rpc_server
        self.host = host
        self.port = port
        self.scrapes = 0
        self._server: asyncio.AbstractServer | None = None

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None:
            raise RuntimeError("metrics server not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._client, self.host, self.port
        )
        return self.address

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "MetricsServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    async def _client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=10.0
            )
            parts = request_line.decode("latin-1").split()
            # Drain headers up to the blank line (ignored).
            while True:
                header = await asyncio.wait_for(
                    reader.readline(), timeout=10.0
                )
                if header in (b"\r\n", b"\n", b""):
                    break
            if len(parts) < 2 or parts[0] != "GET":
                await self._respond(
                    writer, 405, "text/plain", "method not allowed\n"
                )
                return
            path = parts[1].split("?", 1)[0]
            if path == "/metrics":
                self.scrapes += 1
                await self._respond(
                    writer,
                    200,
                    CONTENT_TYPE,
                    render_metrics(self.rpc_server),
                )
            elif path == "/healthz":
                payload = json.dumps(
                    {"ok": True, "version": self.rpc_server.session.version}
                )
                await self._respond(
                    writer, 200, "application/json", payload + "\n"
                )
            else:
                await self._respond(
                    writer, 404, "text/plain", "not found\n"
                )
        except (
            asyncio.TimeoutError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        body: str,
    ) -> None:
        reason = {200: "OK", 404: "Not Found", 405: "Method Not Allowed"}
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reason.get(status, 'Error')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()
