"""An asyncio JSON-lines RPC front end over a :class:`Session`.

The ROADMAP's network front end: ``repro serve --tcp PORT`` (or
:class:`RpcServer` embedded) exposes the Session/Statement API over a
newline-delimited JSON protocol.  One request per line, one (or, for
streamed queries, several) response lines back, every response tagged
with the request's ``id``:

    -> {"id": 1, "op": "query", "q": "S1(x,y), S2(y,z)"}
    <- {"id": 1, "ok": true, "count": 40, "answers": [[1,2,3], ...],
        "algorithm": "hypercube", "version": 0, ...}

Operations:

``query``
    Execute a statement.  Fields: ``q`` (query text), optional
    ``eps`` (fraction string like ``"1/2"`` or a number),
    ``algorithm`` (registry name), ``allow_partial`` (bool),
    ``stream`` (bool: send ``{"id", "batch"}`` lines of at most
    ``batch`` rows each, then a final ``done`` summary without the
    answers inlined).
``explain``
    The planner's report for a statement, without executing it.
``update`` / ``delete``
    Mutate one relation: ``relation`` plus ``rows`` (list of rows).
``stats``
    Service + planner + RPC counters.
``ping``
    Liveness probe.

Malformed JSON, unknown operations, bad queries and execution errors
all come back as structured ``{"ok": false, "error": ...}`` lines --
the connection (and the server) always survives a bad request.

**Concurrency and coalescing.**  The session object is not
thread-safe: its planner/profile caches, plan cache and pooled
simulators are all unsynchronized, and the coalescing key pairs each
statement with the version current at submit -- which must still be
the version at execute.  Control operations (explain, update, stats)
therefore always run on a single worker thread.  Query dispatch is
governed by ``workers``:

* ``workers=1`` (the safe default): queries share the same single
  thread, keeping the session strictly serialized while the event
  loop keeps accepting, parsing and responding -- many closed-loop
  clients pipeline instead of queueing on the network.
* ``workers=N >= 2`` (requires a session built with fan-out, i.e.
  ``connect(db, workers=N)``): queries run on ``N`` dispatcher
  threads.  This is safe *only* because a fan-out session's query
  path never touches the shared session state -- each statement is
  shipped whole to an idle worker process holding its own session
  over the shared-memory snapshot.  Updates still serialize on the
  control thread and broadcast behind an all-workers barrier whose
  *last* step publishes the parent version, so a query keyed at the
  new version can never execute against a stale worker (a query
  keyed just before the bump may execute one version fresh -- the
  two were concurrent, so that serialization is equally legal).  If
  the fan-out pool breaks at runtime (worker OOM-killed), query
  dispatch drops back to the single control thread: the session's
  own execution lock already serializes the in-process fallback, but
  single-threading it also restores the strict query/update ordering
  of ``workers=1``.

Identical canonicalized statements arriving while one is already in
flight *coalesce* in both modes: they await the same execution future
and each gets the shared result (counted in ``RpcStats.coalesced``).
This is the cross-request batching the ROADMAP asks for -- the dual
of the result cache, which only helps *after* an execution finishes.

**Hardening.**  Production knobs, all off by default:

* ``deadline_ms`` on a ``query`` request bounds its latency; overruns
  come back as ``{"ok": false, "error_type": "DeadlineExceeded"}``.
* ``max_inflight`` / ``max_queue`` bound concurrent query execution;
  excess load is shed immediately with ``"ServerOverloaded"`` (reason
  ``queue_full``) instead of queueing without limit.
* ``quota_rps`` / ``quota_burst`` rate-limit each client (keyed by
  the optional wire-level ``client_id``, else per connection);
  over-quota requests shed with reason ``quota``.
* ``idle_timeout`` closes connections that send nothing for that many
  seconds (counted in :class:`RpcStats`).
* Streamed ``batch`` lines are written incrementally -- peak memory
  per streamed query is one batch, and ``writer.drain()`` pushes
  client backpressure into the stream.
* A :class:`~repro.serve.metrics.MetricsServer` (``repro serve --tcp
  --metrics-port N``) exports everything in Prometheus text format.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any

from typing import TYPE_CHECKING

from repro.core.query import QueryError
from repro.data.database import DataError
from repro.engine.deadline import DeadlineExceeded
from repro.mpc.simulator import CapacityExceeded
from repro.serve.admission import (
    AdmissionQueue,
    ServerOverloaded,
    TokenBucket,
)
from repro.serve.metrics import Histogram

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle)
    from repro.api.session import Session, Statement

#: Maximum request-line length (updates ship rows inline).
MAX_LINE_BYTES = 4 * 1024 * 1024

#: Default rows per ``batch`` line of a streamed query.
DEFAULT_BATCH_ROWS = 1024

#: Most token buckets kept at once; beyond this the oldest client's
#: bucket is dropped (it re-fills to a full burst on reappearance --
#: a bounded-memory tradeoff, not a correctness one).
MAX_QUOTA_BUCKETS = 4096

#: Ops a client quota applies to.  ``ping`` and ``stats`` stay exempt
#: so health checks and scrapes keep working under overload.
QUOTA_OPS = frozenset({"query", "explain", "update", "delete"})


@dataclass
class RpcStats:
    """Counters of one server's lifetime."""

    connections: int = 0
    requests: int = 0
    errors: int = 0
    coalesced: int = 0
    streamed_batches: int = 0
    #: Queries shed by the admission queue / by a client quota.
    shed_overload: int = 0
    shed_quota: int = 0
    #: Requests that ran out of their ``deadline_ms`` budget.
    deadline_exceeded: int = 0
    #: Connections closed by the idle read timeout.
    idle_timeouts: int = 0
    #: Streamed responses cut short by a client disconnect.
    aborted_streams: int = 0
    by_op: dict[str, int] = field(default_factory=dict)
    #: Query latency (admission wait + execution + first write),
    #: seconds -- the /metrics request histogram.
    request_latency: Histogram = field(default_factory=Histogram)

    def count(self, op: str) -> None:
        self.requests += 1
        self.by_op[op] = self.by_op.get(op, 0) + 1


def _parse_eps(value: Any) -> Fraction | None:
    """``eps`` from the wire: None, a number, or a fraction string."""
    if value is None:
        return None
    try:
        return Fraction(str(value))
    except (ValueError, ZeroDivisionError) as error:
        raise QueryError(f"invalid eps {value!r}: {error}") from None


def _parse_rows(value: Any) -> list[tuple[int, ...]]:
    if not isinstance(value, list) or not value:
        raise QueryError("'rows' must be a non-empty list of rows")
    try:
        return [tuple(int(v) for v in row) for row in value]
    except (TypeError, ValueError) as error:
        raise QueryError(f"bad row in 'rows': {error}") from None


class RpcServer:
    """The JSON-lines server; one instance wraps one session.

    Args:
        session: the planner-backed session every request executes
            against.
        host / port: bind address (port 0 picks a free port; read the
            bound one from :attr:`address` after :meth:`start`).
        coalesce: share in-flight executions between identical
            concurrent statements (on by default).
        workers: query-dispatch thread count.  Defaults to the
            session's fan-out width (its ``workers`` option) so
            ``connect(db, workers=N)`` + ``RpcServer(session)`` just
            works; pass explicitly to override.  Clamped to 1 when
            the session has no usable fan-out pool at construction,
            and queries re-route to the single control thread at
            dispatch time if the pool breaks later -- the in-process
            execution path never runs from several threads (see the
            module docstring for the contract).
        max_inflight: queries allowed to execute concurrently; 0 (the
            default) disables admission control entirely.
        max_queue: queries allowed to wait for an execution slot when
            ``max_inflight`` is set; the next one is shed with
            ``ServerOverloaded``.
        quota_rps: per-client sustained requests/second; None (the
            default) disables quotas.
        quota_burst: per-client burst allowance; defaults to
            ``max(2 * quota_rps, 1)`` when quotas are on.
        idle_timeout: seconds of read inactivity after which a
            connection is closed (one ``IdleTimeout`` notice is sent
            best-effort first); None (the default) keeps connections
            forever -- REPL clients idle legitimately.
    """

    def __init__(
        self,
        session: "Session",
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        coalesce: bool = True,
        workers: int | None = None,
        max_inflight: int = 0,
        max_queue: int = 16,
        quota_rps: float | None = None,
        quota_burst: float | None = None,
        idle_timeout: float | None = None,
    ) -> None:
        self.session = session
        self.host = host
        self.port = port
        self.coalesce = coalesce
        self.stats = RpcStats()
        if max_inflight < 0:
            raise ValueError(
                f"need max_inflight >= 0, got {max_inflight}"
            )
        self.admission = (
            AdmissionQueue(max_inflight, max_queue)
            if max_inflight > 0
            else None
        )
        if quota_rps is not None and quota_rps <= 0:
            raise ValueError(f"need quota_rps > 0, got {quota_rps}")
        self.quota_rps = quota_rps
        self.quota_burst = (
            None
            if quota_rps is None
            else (
                max(2.0 * quota_rps, 1.0)
                if quota_burst is None
                else float(quota_burst)
            )
        )
        #: client key -> its token bucket, insertion-ordered (bounded).
        self._quotas: dict[str, TokenBucket] = {}
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError(
                f"need idle_timeout > 0, got {idle_timeout}"
            )
        self.idle_timeout = idle_timeout
        self._server: asyncio.AbstractServer | None = None
        # One control worker, always: explain/update/stats touch the
        # session's unsynchronized caches, and a strict execution
        # order keeps version-at-submit equal to version-at-execute
        # for the coalescing key.
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-rpc"
        )
        if workers is None:
            workers = getattr(session, "workers", 1)
        fanout = getattr(session, "fanout", None)
        if fanout is None or not fanout.usable:
            workers = 1  # no fan-out pool: single-threaded is the
            # only safe dispatch (the hardcoded pre-parallel default).
        self.workers = workers
        # Query dispatch: the fan-out query path never touches shared
        # session state, so with a fan-out session N threads may each
        # drive one executor process concurrently.
        self._query_pool = (
            ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-rpc-q"
            )
            if workers > 1
            else self._pool
        )
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._clients: set[asyncio.Task] = set()

    @property
    def address(self) -> tuple[str, int]:
        """The actually-bound (host, port)."""
        if self._server is None:
            raise RuntimeError("server not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound address."""
        self._server = await asyncio.start_server(
            self._client, self.host, self.port, limit=MAX_LINE_BYTES
        )
        return self.address

    async def serve_forever(self) -> None:
        """Run until cancelled (:meth:`start` first)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting, drain client handlers, release the worker."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._clients):
            task.cancel()
        if self._clients:
            await asyncio.gather(*self._clients, return_exceptions=True)
        self._clients.clear()
        if self._query_pool is not self._pool:
            self._query_pool.shutdown(wait=True)
        self._pool.shutdown(wait=True)

    async def __aenter__(self) -> "RpcServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # -- connection handling ------------------------------------------------

    async def _client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._clients.add(task)
            task.add_done_callback(self._clients.discard)
        self.stats.connections += 1
        # The default quota identity: this connection.  A request that
        # carries ``client_id`` is billed to that instead, so one
        # logical client reconnecting (or fanning out connections)
        # still shares one bucket.
        connection_key = f"conn-{self.stats.connections}"
        try:
            while True:
                try:
                    if self.idle_timeout is None:
                        line = await reader.readline()
                    else:
                        line = await asyncio.wait_for(
                            reader.readline(), timeout=self.idle_timeout
                        )
                except asyncio.TimeoutError:
                    self.stats.idle_timeouts += 1
                    try:
                        await self._send(
                            writer,
                            {
                                "ok": False,
                                "error": (
                                    "connection idle for more than "
                                    f"{self.idle_timeout:g} s"
                                ),
                                "error_type": "IdleTimeout",
                            },
                        )
                    except (ConnectionResetError, BrokenPipeError):
                        pass
                    break
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                ):  # over-long line: unrecoverable framing, drop client
                    await self._send(
                        writer,
                        {"ok": False, "error": "request line too long"},
                    )
                    break
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                await self._serve_line(text, writer, connection_key)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_line(
        self,
        text: str,
        writer: asyncio.StreamWriter,
        connection_key: str,
    ) -> None:
        request_id: Any = None
        try:
            request = json.loads(text)
            if not isinstance(request, dict):
                raise QueryError("request must be a JSON object")
            request_id = request.get("id")
            op = request.get("op")
            if not isinstance(op, str):
                raise QueryError("missing 'op'")
            self.stats.count(op)
            if op in QUOTA_OPS:
                self._check_quota(request, connection_key)
            for response in await self._dispatch(
                op, request, writer, request_id
            ):
                if request_id is not None:
                    response.setdefault("id", request_id)
                await self._send(writer, response)
        except (ConnectionResetError, BrokenPipeError):
            # The client is gone; there is nobody to answer.  The
            # _client loop closes the connection.
            raise
        except json.JSONDecodeError as error:
            self.stats.errors += 1
            await self._send(
                writer,
                {"ok": False, "error": f"invalid json: {error}"},
            )
        except ServerOverloaded as error:
            self.stats.errors += 1
            if error.reason == "quota":
                self.stats.shed_quota += 1
            else:
                self.stats.shed_overload += 1
            await self._send(writer, self._error(request_id, error))
        except DeadlineExceeded as error:
            self.stats.errors += 1
            self.stats.deadline_exceeded += 1
            await self._send(writer, self._error(request_id, error))
        except (QueryError, DataError, ValueError, KeyError) as error:
            self.stats.errors += 1
            await self._send(writer, self._error(request_id, error))
        except CapacityExceeded as error:
            self.stats.errors += 1
            await self._send(writer, self._error(request_id, error))
        except Exception as error:  # noqa: BLE001 -- the loop must live
            self.stats.errors += 1
            await self._send(writer, self._error(request_id, error))

    def _check_quota(self, request: dict, connection_key: str) -> None:
        """Bill one request against its client's token bucket."""
        if self.quota_rps is None:
            return
        client_id = request.get("client_id")
        key = (
            str(client_id)
            if isinstance(client_id, (str, int))
            else connection_key
        )
        bucket = self._quotas.pop(key, None)
        if bucket is None:
            bucket = TokenBucket(self.quota_rps, self.quota_burst)
        # Re-insert (LRU by recency of use), then bound the store.
        self._quotas[key] = bucket
        while len(self._quotas) > MAX_QUOTA_BUCKETS:
            self._quotas.pop(next(iter(self._quotas)))
        if not bucket.try_acquire():
            raise ServerOverloaded("quota", bucket.retry_after_ms())

    @staticmethod
    def _error(request_id: Any, error: Exception) -> dict:
        message = str(error) or error.__class__.__name__
        response = {
            "ok": False,
            "error": message,
            "error_type": error.__class__.__name__,
        }
        if isinstance(error, ServerOverloaded):
            response["reason"] = error.reason
            response["retry_after_ms"] = round(error.retry_after_ms, 3)
        if isinstance(error, DeadlineExceeded):
            response["where"] = error.where
            response["elapsed_ms"] = round(error.elapsed_ms, 3)
            response["budget_ms"] = error.budget_ms
        if request_id is not None:
            response["id"] = request_id
        return response

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write(json.dumps(payload, separators=(",", ":")).encode())
        writer.write(b"\n")
        await writer.drain()

    # -- operations ---------------------------------------------------------

    async def _dispatch(
        self,
        op: str,
        request: dict,
        writer: asyncio.StreamWriter,
        request_id: Any,
    ) -> list[dict]:
        if op == "ping":
            return [{"ok": True, "pong": True}]
        if op == "query":
            return await self._op_query(request, writer, request_id)
        if op == "explain":
            return [await self._op_explain(request)]
        if op in ("update", "delete"):
            return [await self._op_update(op, request)]
        if op == "stats":
            return [self._op_stats()]
        raise QueryError(
            f"unknown op {op!r} "
            "(query / explain / update / delete / stats / ping)"
        )

    def _statement(self, request: dict) -> "Statement":
        q = request.get("q")
        if not isinstance(q, str) or not q.strip():
            raise QueryError("missing query text 'q'")
        algorithm = request.get("algorithm")
        if algorithm is not None and not isinstance(algorithm, str):
            raise QueryError("'algorithm' must be a string")
        deadline_ms = request.get("deadline_ms")
        if deadline_ms is not None:
            if (
                isinstance(deadline_ms, bool)
                or not isinstance(deadline_ms, (int, float))
                or deadline_ms <= 0
            ):
                raise QueryError(
                    f"'deadline_ms' must be a positive number, "
                    f"got {deadline_ms!r}"
                )
        return self.session.query(
            q,
            eps=_parse_eps(request.get("eps")),
            algorithm=algorithm,
            allow_partial=bool(request.get("allow_partial", False)),
            deadline_ms=deadline_ms,
        )

    async def _op_query(
        self,
        request: dict,
        writer: asyncio.StreamWriter,
        request_id: Any,
    ) -> list[dict]:
        statement = self._statement(request)
        stream = bool(request.get("stream"))
        batch_rows = int(request.get("batch", DEFAULT_BATCH_ROWS))
        if stream and batch_rows < 1:
            raise QueryError(f"need batch >= 1, got {batch_rows}")
        start = time.perf_counter()
        if self.admission is not None:
            await self.admission.acquire()
        try:
            result, coalesced = await self._execute(statement)
        finally:
            if self.admission is not None:
                self.admission.release()
        elapsed = time.perf_counter() - start
        self.stats.request_latency.observe(elapsed)
        summary = {
            "ok": True,
            "count": len(result.answers),
            "version": result.version,
            "algorithm": result.algorithm,
            "plan_hit": result.raw.plan_hit,
            "result_hit": result.raw.result_hit,
            "coalesced": coalesced,
            "elapsed_ms": round(elapsed * 1000, 3),
        }
        if not stream:
            summary["answers"] = [list(row) for row in result.answers]
            return [summary]
        # Batches are written incrementally: one batch is encoded and
        # on the wire (with drain() applying the client's backpressure)
        # before the next is built, so peak memory per streamed query
        # is one batch rather than the whole result.
        from repro.serve.faults import disconnect_after_batches

        fault_after = disconnect_after_batches()
        batches = 0
        try:
            for index in range(0, len(result.answers), batch_rows):
                if fault_after is not None and batches >= fault_after:
                    # Injected fault: the client vanished mid-stream.
                    writer.transport.abort()
                    raise ConnectionResetError(
                        "injected mid-stream disconnect"
                    )
                line: dict[str, Any] = {
                    "batch": [
                        list(row)
                        for row in result.answers[index:index + batch_rows]
                    ]
                }
                if request_id is not None:
                    line["id"] = request_id
                await self._send(writer, line)
                batches += 1
                self.stats.streamed_batches += 1
        except (ConnectionResetError, BrokenPipeError):
            self.stats.aborted_streams += 1
            raise
        summary["done"] = True
        summary["batches"] = batches
        return [summary]

    async def _op_explain(self, request: dict) -> dict:
        statement = self._statement(request)
        loop = asyncio.get_running_loop()
        explain = await loop.run_in_executor(self._pool, statement.explain)
        response = {"ok": True, "explain": explain.to_dict()}
        if request.get("plan"):
            response["plan"] = await loop.run_in_executor(
                self._pool, statement.describe_plan
            )
        return response

    async def _op_update(self, op: str, request: dict) -> dict:
        relation = request.get("relation")
        if not isinstance(relation, str) or not relation:
            raise QueryError(f"{op} needs a 'relation'")
        rows = _parse_rows(request.get("rows"))
        delta = {relation: rows}
        loop = asyncio.get_running_loop()
        version = await loop.run_in_executor(
            self._pool,
            lambda: self.session.update(
                inserts=delta if op == "update" else None,
                deletes=delta if op == "delete" else None,
            ),
        )
        return {
            "ok": True,
            "version": version,
            "rows": len(rows),
            "relation": relation,
        }

    def _op_stats(self) -> dict:
        service = self.session.stats
        planner = self.session.planner_stats
        return {
            "ok": True,
            "rpc": {
                "connections": self.stats.connections,
                "requests": self.stats.requests,
                "errors": self.stats.errors,
                "coalesced": self.stats.coalesced,
                "streamed_batches": self.stats.streamed_batches,
                "shed_overload": self.stats.shed_overload,
                "shed_quota": self.stats.shed_quota,
                "deadline_exceeded": self.stats.deadline_exceeded,
                "idle_timeouts": self.stats.idle_timeouts,
                "aborted_streams": self.stats.aborted_streams,
                "by_op": dict(self.stats.by_op),
            },
            "admission": {
                "enabled": self.admission is not None,
                "max_inflight": (
                    self.admission.max_inflight
                    if self.admission is not None
                    else 0
                ),
                "max_queue": (
                    self.admission.max_queue
                    if self.admission is not None
                    else 0
                ),
                "inflight": (
                    self.admission.inflight
                    if self.admission is not None
                    else 0
                ),
                "queued": (
                    self.admission.queued
                    if self.admission is not None
                    else 0
                ),
                "admitted": (
                    self.admission.stats.admitted
                    if self.admission is not None
                    else 0
                ),
                "shed": (
                    self.admission.stats.shed
                    if self.admission is not None
                    else 0
                ),
                "peak_inflight": (
                    self.admission.stats.peak_inflight
                    if self.admission is not None
                    else 0
                ),
                "peak_queued": (
                    self.admission.stats.peak_queued
                    if self.admission is not None
                    else 0
                ),
                "quota_rps": self.quota_rps,
                "quota_clients": len(self._quotas),
                "idle_timeout": self.idle_timeout,
            },
            "service": {
                "requests": service.requests,
                "executions": service.executions,
                "result_hits": service.result_hits,
                "routing_hits": service.routing_hits,
                "routing_misses": service.routing_misses,
                "routing_evictions": service.routing_evictions,
                "result_evictions": service.result_evictions,
                "plan_hits": service.plans.hits,
                "plan_isomorphic_hits": service.plans.isomorphic_hits,
                "plan_misses": service.plans.misses,
                "plan_evictions": service.plans.evictions,
                "updates": service.updates,
                "answers_served": service.answers_served,
                "capacity_failures": service.capacity_failures,
                "deadline_exceeded": service.deadline_exceeded,
                "ivm_hits": service.ivm_hits,
                "ivm_fallbacks": service.ivm_fallbacks,
                "ivm_retained_bytes": (
                    self.session.service.ivm_retained_bytes
                ),
                "ivm_retained_states": (
                    self.session.service.ivm_retained_states
                ),
            },
            "parallel": self._parallel_stats(),
            "planner": {
                "decisions": planner.decisions,
                "pinned": planner.pinned,
                "decision_cache_hits": planner.decision_cache_hits,
                "by_algorithm": dict(planner.by_algorithm or {}),
            },
            "version": self.session.version,
        }

    def _parallel_stats(self) -> dict:
        """Where parallel dispatch actually engaged (or didn't)."""
        service = self.session.stats
        fanout = getattr(self.session, "fanout", None)
        return {
            "dispatch_threads": self.workers,
            "fanout_workers": (
                fanout.workers if fanout is not None else 0
            ),
            "fanout_usable": bool(fanout is not None and fanout.usable),
            "fanout_queries": (
                fanout.queries if fanout is not None else 0
            ),
            "fanout_alive_workers": (
                fanout.alive_workers if fanout is not None else 0
            ),
            "fanout_killed_stragglers": (
                fanout.killed_stragglers if fanout is not None else 0
            ),
            "parallel_rounds": service.parallel_rounds,
            "fallback_rounds": service.fallback_rounds,
        }

    # -- execution with cross-request coalescing ----------------------------

    def _dispatch_pool(self) -> ThreadPoolExecutor:
        """The executor queries run on *right now*.

        Multi-threaded dispatch is only legal while the session's
        fan-out pool is alive.  If workers died since the server was
        built, ``statement.execute`` would run its in-process fallback
        -- so queries drop back to the single control thread, which
        both serializes them with updates again and avoids contending
        on the session's execution lock from N threads.
        """
        if self._query_pool is self._pool:
            return self._pool
        fanout = getattr(self.session, "fanout", None)
        if fanout is None or not fanout.usable:
            return self._pool
        return self._query_pool

    async def _execute(self, statement: "Statement"):
        loop = asyncio.get_running_loop()
        pool = self._dispatch_pool()
        if not self.coalesce:
            return (
                await loop.run_in_executor(pool, statement.execute),
                False,
            )
        key = (statement.canonical_key(), self.session.version)
        future = self._inflight.get(key)
        if future is not None:
            self.stats.coalesced += 1
            return await asyncio.shield(future), True
        future = loop.run_in_executor(pool, statement.execute)
        self._inflight[key] = future
        try:
            return await asyncio.shield(future), False
        finally:
            if self._inflight.get(key) is future:
                del self._inflight[key]


async def serve_tcp(
    session: "Session",
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    coalesce: bool = True,
    workers: int | None = None,
    max_inflight: int = 0,
    max_queue: int = 16,
    quota_rps: float | None = None,
    quota_burst: float | None = None,
    idle_timeout: float | None = None,
    metrics_port: int | None = None,
    ready: "asyncio.Event | None" = None,
    announce=print,
) -> None:
    """Run an :class:`RpcServer` until cancelled (the CLI entry).

    Args:
        session: the session to serve.
        host / port: bind address.
        coalesce: share in-flight identical statements.
        workers: query-dispatch thread count (see :class:`RpcServer`;
            None follows the session's fan-out width).
        max_inflight / max_queue / quota_rps / quota_burst /
            idle_timeout: hardening knobs (see :class:`RpcServer`).
        metrics_port: also serve ``GET /metrics`` (Prometheus text
            format) on this port, same host; None disables.
        ready: optional event set once the socket is bound (tests).
        announce: called with a human-readable "listening" line.
    """
    from repro.serve.metrics import MetricsServer

    server = RpcServer(
        session,
        host,
        port,
        coalesce=coalesce,
        workers=workers,
        max_inflight=max_inflight,
        max_queue=max_queue,
        quota_rps=quota_rps,
        quota_burst=quota_burst,
        idle_timeout=idle_timeout,
    )
    bound_host, bound_port = await server.start()
    metrics: MetricsServer | None = None
    if metrics_port is not None:
        metrics = MetricsServer(server, host=host, port=metrics_port)
        metrics_host, metrics_bound = await metrics.start()
        if announce is not None:
            announce(
                f"repro metrics: http://{metrics_host}:{metrics_bound}"
                "/metrics"
            )
    if announce is not None:
        announce(
            f"repro rpc: listening on {bound_host}:{bound_port} "
            f"({server.workers} dispatch thread"
            f"{'s' if server.workers != 1 else ''}; JSON lines; ops: "
            "query / explain / update / delete / stats / ping)"
        )
    if ready is not None:
        ready.set()
    try:
        await server.serve_forever()
    finally:
        if metrics is not None:
            await metrics.close()
        await server.close()
