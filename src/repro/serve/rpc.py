"""An asyncio JSON-lines RPC front end over a :class:`Session`.

The ROADMAP's network front end: ``repro serve --tcp PORT`` (or
:class:`RpcServer` embedded) exposes the Session/Statement API over a
newline-delimited JSON protocol.  One request per line, one (or, for
streamed queries, several) response lines back, every response tagged
with the request's ``id``:

    -> {"id": 1, "op": "query", "q": "S1(x,y), S2(y,z)"}
    <- {"id": 1, "ok": true, "count": 40, "answers": [[1,2,3], ...],
        "algorithm": "hypercube", "version": 0, ...}

Operations:

``query``
    Execute a statement.  Fields: ``q`` (query text), optional
    ``eps`` (fraction string like ``"1/2"`` or a number),
    ``algorithm`` (registry name), ``allow_partial`` (bool),
    ``stream`` (bool: send ``{"id", "batch"}`` lines of at most
    ``batch`` rows each, then a final ``done`` summary without the
    answers inlined).
``explain``
    The planner's report for a statement, without executing it.
``update`` / ``delete``
    Mutate one relation: ``relation`` plus ``rows`` (list of rows).
``stats``
    Service + planner + RPC counters.
``ping``
    Liveness probe.

Malformed JSON, unknown operations, bad queries and execution errors
all come back as structured ``{"ok": false, "error": ...}`` lines --
the connection (and the server) always survives a bad request.

**Concurrency and coalescing.**  The session object is not
thread-safe: its planner/profile caches, plan cache and pooled
simulators are all unsynchronized, and the coalescing key pairs each
statement with the version current at submit -- which must still be
the version at execute.  Control operations (explain, update, stats)
therefore always run on a single worker thread.  Query dispatch is
governed by ``workers``:

* ``workers=1`` (the safe default): queries share the same single
  thread, keeping the session strictly serialized while the event
  loop keeps accepting, parsing and responding -- many closed-loop
  clients pipeline instead of queueing on the network.
* ``workers=N >= 2`` (requires a session built with fan-out, i.e.
  ``connect(db, workers=N)``): queries run on ``N`` dispatcher
  threads.  This is safe *only* because a fan-out session's query
  path never touches the shared session state -- each statement is
  shipped whole to an idle worker process holding its own session
  over the shared-memory snapshot.  Updates still serialize on the
  control thread and broadcast behind an all-workers barrier whose
  *last* step publishes the parent version, so a query keyed at the
  new version can never execute against a stale worker (a query
  keyed just before the bump may execute one version fresh -- the
  two were concurrent, so that serialization is equally legal).  If
  the fan-out pool breaks at runtime (worker OOM-killed), query
  dispatch drops back to the single control thread: the session's
  own execution lock already serializes the in-process fallback, but
  single-threading it also restores the strict query/update ordering
  of ``workers=1``.

Identical canonicalized statements arriving while one is already in
flight *coalesce* in both modes: they await the same execution future
and each gets the shared result (counted in ``RpcStats.coalesced``).
This is the cross-request batching the ROADMAP asks for -- the dual
of the result cache, which only helps *after* an execution finishes.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any

from typing import TYPE_CHECKING

from repro.core.query import QueryError
from repro.data.database import DataError
from repro.mpc.simulator import CapacityExceeded

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle)
    from repro.api.session import Session, Statement

#: Maximum request-line length (updates ship rows inline).
MAX_LINE_BYTES = 4 * 1024 * 1024

#: Default rows per ``batch`` line of a streamed query.
DEFAULT_BATCH_ROWS = 1024


@dataclass
class RpcStats:
    """Counters of one server's lifetime."""

    connections: int = 0
    requests: int = 0
    errors: int = 0
    coalesced: int = 0
    streamed_batches: int = 0
    by_op: dict[str, int] = field(default_factory=dict)

    def count(self, op: str) -> None:
        self.requests += 1
        self.by_op[op] = self.by_op.get(op, 0) + 1


def _parse_eps(value: Any) -> Fraction | None:
    """``eps`` from the wire: None, a number, or a fraction string."""
    if value is None:
        return None
    try:
        return Fraction(str(value))
    except (ValueError, ZeroDivisionError) as error:
        raise QueryError(f"invalid eps {value!r}: {error}") from None


def _parse_rows(value: Any) -> list[tuple[int, ...]]:
    if not isinstance(value, list) or not value:
        raise QueryError("'rows' must be a non-empty list of rows")
    try:
        return [tuple(int(v) for v in row) for row in value]
    except (TypeError, ValueError) as error:
        raise QueryError(f"bad row in 'rows': {error}") from None


class RpcServer:
    """The JSON-lines server; one instance wraps one session.

    Args:
        session: the planner-backed session every request executes
            against.
        host / port: bind address (port 0 picks a free port; read the
            bound one from :attr:`address` after :meth:`start`).
        coalesce: share in-flight executions between identical
            concurrent statements (on by default).
        workers: query-dispatch thread count.  Defaults to the
            session's fan-out width (its ``workers`` option) so
            ``connect(db, workers=N)`` + ``RpcServer(session)`` just
            works; pass explicitly to override.  Clamped to 1 when
            the session has no usable fan-out pool at construction,
            and queries re-route to the single control thread at
            dispatch time if the pool breaks later -- the in-process
            execution path never runs from several threads (see the
            module docstring for the contract).
    """

    def __init__(
        self,
        session: "Session",
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        coalesce: bool = True,
        workers: int | None = None,
    ) -> None:
        self.session = session
        self.host = host
        self.port = port
        self.coalesce = coalesce
        self.stats = RpcStats()
        self._server: asyncio.AbstractServer | None = None
        # One control worker, always: explain/update/stats touch the
        # session's unsynchronized caches, and a strict execution
        # order keeps version-at-submit equal to version-at-execute
        # for the coalescing key.
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-rpc"
        )
        if workers is None:
            workers = getattr(session, "workers", 1)
        fanout = getattr(session, "fanout", None)
        if fanout is None or not fanout.usable:
            workers = 1  # no fan-out pool: single-threaded is the
            # only safe dispatch (the hardcoded pre-parallel default).
        self.workers = workers
        # Query dispatch: the fan-out query path never touches shared
        # session state, so with a fan-out session N threads may each
        # drive one executor process concurrently.
        self._query_pool = (
            ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-rpc-q"
            )
            if workers > 1
            else self._pool
        )
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._clients: set[asyncio.Task] = set()

    @property
    def address(self) -> tuple[str, int]:
        """The actually-bound (host, port)."""
        if self._server is None:
            raise RuntimeError("server not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound address."""
        self._server = await asyncio.start_server(
            self._client, self.host, self.port, limit=MAX_LINE_BYTES
        )
        return self.address

    async def serve_forever(self) -> None:
        """Run until cancelled (:meth:`start` first)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting, drain client handlers, release the worker."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._clients):
            task.cancel()
        if self._clients:
            await asyncio.gather(*self._clients, return_exceptions=True)
        self._clients.clear()
        if self._query_pool is not self._pool:
            self._query_pool.shutdown(wait=True)
        self._pool.shutdown(wait=True)

    async def __aenter__(self) -> "RpcServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # -- connection handling ------------------------------------------------

    async def _client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._clients.add(task)
            task.add_done_callback(self._clients.discard)
        self.stats.connections += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                ):  # over-long line: unrecoverable framing, drop client
                    await self._send(
                        writer,
                        {"ok": False, "error": "request line too long"},
                    )
                    break
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                await self._serve_line(text, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_line(
        self, text: str, writer: asyncio.StreamWriter
    ) -> None:
        request_id: Any = None
        try:
            request = json.loads(text)
            if not isinstance(request, dict):
                raise QueryError("request must be a JSON object")
            request_id = request.get("id")
            op = request.get("op")
            if not isinstance(op, str):
                raise QueryError("missing 'op'")
            self.stats.count(op)
            for response in await self._dispatch(op, request):
                if request_id is not None:
                    response.setdefault("id", request_id)
                await self._send(writer, response)
        except json.JSONDecodeError as error:
            self.stats.errors += 1
            await self._send(
                writer,
                {"ok": False, "error": f"invalid json: {error}"},
            )
        except (QueryError, DataError, ValueError, KeyError) as error:
            self.stats.errors += 1
            await self._send(writer, self._error(request_id, error))
        except CapacityExceeded as error:
            self.stats.errors += 1
            await self._send(writer, self._error(request_id, error))
        except Exception as error:  # noqa: BLE001 -- the loop must live
            self.stats.errors += 1
            await self._send(writer, self._error(request_id, error))

    @staticmethod
    def _error(request_id: Any, error: Exception) -> dict:
        message = str(error) or error.__class__.__name__
        response = {
            "ok": False,
            "error": message,
            "error_type": error.__class__.__name__,
        }
        if request_id is not None:
            response["id"] = request_id
        return response

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write(json.dumps(payload, separators=(",", ":")).encode())
        writer.write(b"\n")
        await writer.drain()

    # -- operations ---------------------------------------------------------

    async def _dispatch(self, op: str, request: dict) -> list[dict]:
        if op == "ping":
            return [{"ok": True, "pong": True}]
        if op == "query":
            return await self._op_query(request)
        if op == "explain":
            return [await self._op_explain(request)]
        if op in ("update", "delete"):
            return [await self._op_update(op, request)]
        if op == "stats":
            return [self._op_stats()]
        raise QueryError(
            f"unknown op {op!r} "
            "(query / explain / update / delete / stats / ping)"
        )

    def _statement(self, request: dict) -> "Statement":
        q = request.get("q")
        if not isinstance(q, str) or not q.strip():
            raise QueryError("missing query text 'q'")
        algorithm = request.get("algorithm")
        if algorithm is not None and not isinstance(algorithm, str):
            raise QueryError("'algorithm' must be a string")
        return self.session.query(
            q,
            eps=_parse_eps(request.get("eps")),
            algorithm=algorithm,
            allow_partial=bool(request.get("allow_partial", False)),
        )

    async def _op_query(self, request: dict) -> list[dict]:
        statement = self._statement(request)
        start = time.perf_counter()
        result, coalesced = await self._execute(statement)
        elapsed_ms = (time.perf_counter() - start) * 1000
        summary = {
            "ok": True,
            "count": len(result.answers),
            "version": result.version,
            "algorithm": result.algorithm,
            "plan_hit": result.raw.plan_hit,
            "result_hit": result.raw.result_hit,
            "coalesced": coalesced,
            "elapsed_ms": round(elapsed_ms, 3),
        }
        if not request.get("stream"):
            summary["answers"] = [list(row) for row in result.answers]
            return [summary]
        batch_rows = int(request.get("batch", DEFAULT_BATCH_ROWS))
        if batch_rows < 1:
            raise QueryError(f"need batch >= 1, got {batch_rows}")
        lines: list[dict] = []
        for index in range(0, len(result.answers), batch_rows):
            lines.append(
                {
                    "batch": [
                        list(row)
                        for row in result.answers[index:index + batch_rows]
                    ]
                }
            )
        self.stats.streamed_batches += len(lines)
        summary["done"] = True
        summary["batches"] = len(lines)
        lines.append(summary)
        return lines

    async def _op_explain(self, request: dict) -> dict:
        statement = self._statement(request)
        loop = asyncio.get_running_loop()
        explain = await loop.run_in_executor(self._pool, statement.explain)
        response = {"ok": True, "explain": explain.to_dict()}
        if request.get("plan"):
            response["plan"] = await loop.run_in_executor(
                self._pool, statement.describe_plan
            )
        return response

    async def _op_update(self, op: str, request: dict) -> dict:
        relation = request.get("relation")
        if not isinstance(relation, str) or not relation:
            raise QueryError(f"{op} needs a 'relation'")
        rows = _parse_rows(request.get("rows"))
        delta = {relation: rows}
        loop = asyncio.get_running_loop()
        version = await loop.run_in_executor(
            self._pool,
            lambda: self.session.update(
                inserts=delta if op == "update" else None,
                deletes=delta if op == "delete" else None,
            ),
        )
        return {
            "ok": True,
            "version": version,
            "rows": len(rows),
            "relation": relation,
        }

    def _op_stats(self) -> dict:
        service = self.session.stats
        planner = self.session.planner_stats
        return {
            "ok": True,
            "rpc": {
                "connections": self.stats.connections,
                "requests": self.stats.requests,
                "errors": self.stats.errors,
                "coalesced": self.stats.coalesced,
                "streamed_batches": self.stats.streamed_batches,
                "by_op": dict(self.stats.by_op),
            },
            "service": {
                "requests": service.requests,
                "executions": service.executions,
                "result_hits": service.result_hits,
                "routing_hits": service.routing_hits,
                "routing_misses": service.routing_misses,
                "routing_evictions": service.routing_evictions,
                "result_evictions": service.result_evictions,
                "plan_hits": service.plans.hits,
                "plan_isomorphic_hits": service.plans.isomorphic_hits,
                "plan_misses": service.plans.misses,
                "plan_evictions": service.plans.evictions,
                "updates": service.updates,
                "answers_served": service.answers_served,
                "capacity_failures": service.capacity_failures,
            },
            "parallel": self._parallel_stats(),
            "planner": {
                "decisions": planner.decisions,
                "pinned": planner.pinned,
                "decision_cache_hits": planner.decision_cache_hits,
                "by_algorithm": dict(planner.by_algorithm or {}),
            },
            "version": self.session.version,
        }

    def _parallel_stats(self) -> dict:
        """Where parallel dispatch actually engaged (or didn't)."""
        service = self.session.stats
        fanout = getattr(self.session, "fanout", None)
        return {
            "dispatch_threads": self.workers,
            "fanout_workers": (
                fanout.workers if fanout is not None else 0
            ),
            "fanout_usable": bool(fanout is not None and fanout.usable),
            "fanout_queries": (
                fanout.queries if fanout is not None else 0
            ),
            "parallel_rounds": service.parallel_rounds,
            "fallback_rounds": service.fallback_rounds,
        }

    # -- execution with cross-request coalescing ----------------------------

    def _dispatch_pool(self) -> ThreadPoolExecutor:
        """The executor queries run on *right now*.

        Multi-threaded dispatch is only legal while the session's
        fan-out pool is alive.  If workers died since the server was
        built, ``statement.execute`` would run its in-process fallback
        -- so queries drop back to the single control thread, which
        both serializes them with updates again and avoids contending
        on the session's execution lock from N threads.
        """
        if self._query_pool is self._pool:
            return self._pool
        fanout = getattr(self.session, "fanout", None)
        if fanout is None or not fanout.usable:
            return self._pool
        return self._query_pool

    async def _execute(self, statement: "Statement"):
        loop = asyncio.get_running_loop()
        pool = self._dispatch_pool()
        if not self.coalesce:
            return (
                await loop.run_in_executor(pool, statement.execute),
                False,
            )
        key = (statement.canonical_key(), self.session.version)
        future = self._inflight.get(key)
        if future is not None:
            self.stats.coalesced += 1
            return await asyncio.shield(future), True
        future = loop.run_in_executor(pool, statement.execute)
        self._inflight[key] = future
        try:
            return await asyncio.shield(future), False
        finally:
            if self._inflight.get(key) is future:
                del self._inflight[key]


async def serve_tcp(
    session: "Session",
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    coalesce: bool = True,
    workers: int | None = None,
    ready: "asyncio.Event | None" = None,
    announce=print,
) -> None:
    """Run an :class:`RpcServer` until cancelled (the CLI entry).

    Args:
        session: the session to serve.
        host / port: bind address.
        coalesce: share in-flight identical statements.
        workers: query-dispatch thread count (see :class:`RpcServer`;
            None follows the session's fan-out width).
        ready: optional event set once the socket is bound (tests).
        announce: called with a human-readable "listening" line.
    """
    server = RpcServer(session, host, port, coalesce=coalesce, workers=workers)
    bound_host, bound_port = await server.start()
    if announce is not None:
        announce(
            f"repro rpc: listening on {bound_host}:{bound_port} "
            f"({server.workers} dispatch thread"
            f"{'s' if server.workers != 1 else ''}; JSON lines; ops: "
            "query / explain / update / delete / stats / ping)"
        )
    if ready is not None:
        ready.set()
    try:
        await server.serve_forever()
    finally:
        await server.close()
