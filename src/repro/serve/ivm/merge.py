"""Semi-naive delta merging against retained routed state.

The merge replays a plan's rounds over *only the changed rows*:

1. Each round's steps route the delta of their source -- base-relation
   deltas from the database's provenance records, view deltas computed
   by the previous rounds of this same merge (the semi-naive cascade
   ``delta(R join S) = dR join S + R join dS + dR join dS``, realised
   here as "patch the fragments, re-join only the affected workers").
2. Round loads are patched arithmetically: a worker's received bits
   move by exactly ``(inserted - deleted) * bits_per_tuple`` per step,
   so the synthesised :class:`~repro.mpc.stats.RoundStats` are
   bit-identical to what a full re-execution would report, and the
   capacity check (against the *new* input size) raises the identical
   :class:`~repro.mpc.simulator.CapacityExceeded` a full run would.
3. Workers whose fragments changed re-join locally; their answer
   tables are spliced into the retained per-worker tables and merged
   canonically -- the same duplicate-free union full execution
   performs, so answers are bit-identical by construction.

All patches accumulate in temporaries and commit only on success: a
deadline expiring mid-merge (or a synthesised capacity error) leaves
the retained state exactly as it was, reusable by the next request --
the same invariant the serving layer's pooled simulators keep.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass

from repro.data.columnar import ColumnarDatabase
from repro.data.versioned import ComposedDelta
from repro.engine.deadline import Deadline
from repro.engine.executor import plan_config
from repro.engine.plan import CollectAnswers, FinalizeView
from repro.mpc.simulator import CapacityExceeded
from repro.mpc.stats import RoundStats, SimulationReport

from .state import (
    NUMPY,
    RetainedState,
    SiteState,
    _merge_tables,
    evaluate_worker,
    table_rows,
)

Rows = tuple[tuple[int, ...], ...]


@dataclass(frozen=True)
class MergeSuccess:
    """A committed merge: the full-recompute-identical outcome."""

    answers: Rows
    per_server: tuple[int, ...]
    report: SimulationReport
    view_sizes: dict[str, int]


@dataclass(frozen=True)
class MergeCapacity:
    """The post-delta load exceeds capacity; nothing was committed.

    ``error`` is bit-identical (message and fields) to the
    :class:`CapacityExceeded` a full re-execution would raise.
    """

    error: CapacityExceeded
    input_bits: int


def _route_delta(step, rows: Rows, p: int) -> dict[int, list]:
    """Route delta rows through a step's own destination function.

    Shardable steps route by tuple content alone (the eligibility
    gate), so routing the delta in isolation lands every copy on
    exactly the workers the full input's routing would.
    """
    by_worker: dict[int, list] = {}
    for index, row in enumerate(rows):
        for worker in step.destinations(row, index, p):
            by_worker.setdefault(worker, []).append(row)
    return by_worker


def _patch_fragment(
    fragment,
    removed: list,
    added: list,
    backend: str,
):
    """``(fragment - removed) + added`` in the backend's storage.

    Routed images of effective deltas make both sides exact: every
    removed row is present, no added row is (content routing is a
    function, and the relation-level delta is effective).
    """
    if backend == NUMPY:
        from repro.backend import require_numpy

        numpy = require_numpy()
        columns = fragment
        if removed and len(columns[0]):
            mask = numpy.zeros(len(columns[0]), dtype=bool)
            for row in removed:
                hit = columns[0] == row[0]
                for column, value in zip(columns[1:], row[1:]):
                    hit = hit & (column == value)
                mask |= hit
            keep = ~mask
            columns = tuple(column[keep] for column in columns)
        if added:
            extra = [
                numpy.asarray(
                    [row[i] for row in added], dtype=numpy.int64
                )
                for i in range(len(columns))
            ]
            columns = tuple(
                numpy.concatenate([column, extension])
                for column, extension in zip(columns, extra)
            )
        return columns
    removed_set = set(map(tuple, removed))
    rows = [row for row in fragment if tuple(row) not in removed_set]
    rows.extend(tuple(row) for row in added)
    return rows


def _insert_new_rows(merged, tables, arity):
    """Splice every row of ``tables`` absent from ``merged`` into it.

    ``merged`` is an ``np.unique(..., axis=0)`` output: unique rows in
    the structured (field-lexicographic, numeric) order ``unique``
    itself sorts by.  Membership and placement both run as
    ``searchsorted`` against that order, so the result is the
    bit-identical table a full re-unique would produce -- at an O(n)
    splice instead of an O(n log n) re-sort of every worker's table.

    Returns ``(table, fresh, positions)``: the new merged table, the
    genuinely new rows as tuples in canonical order, and their
    insertion positions into the *old* table (ascending) -- or
    ``(merged, (), None)`` when nothing was new.
    """
    from repro.backend import require_numpy

    numpy = require_numpy()
    fields = numpy.dtype(
        [(f"f{i}", numpy.int64) for i in range(arity)]
    )

    def view_of(table):
        return (
            numpy.ascontiguousarray(table)
            .view(fields)
            .reshape(len(table))
        )

    merged_c = numpy.ascontiguousarray(merged)
    merged_v = view_of(merged_c)
    candidates = []
    for table in tables:
        if not len(table):
            continue
        fresh = numpy.ascontiguousarray(table)
        if len(merged_v):
            table_v = view_of(fresh)
            found = numpy.searchsorted(merged_v, table_v)
            clipped = numpy.minimum(found, len(merged_v) - 1)
            present = (merged_v[clipped] == table_v) & (
                found < len(merged_v)
            )
            fresh = fresh[~present]
        if len(fresh):
            candidates.append(fresh)
    if not candidates:
        return merged_c, (), None
    cand = numpy.unique(numpy.concatenate(candidates), axis=0)
    positions = numpy.searchsorted(merged_v, view_of(cand))
    table = numpy.insert(merged_c, positions, cand, axis=0)
    return table, tuple(map(tuple, cand.tolist())), positions


def _splice_rows(rows: Rows, fresh: Rows, positions) -> Rows:
    """``rows`` with ``fresh[i]`` inserted before old index
    ``positions[i]`` -- the tuple-space image of ``numpy.insert``."""
    out: list = []
    previous = 0
    for position, row in zip(positions.tolist(), fresh):
        out.extend(rows[previous:position])
        out.append(row)
        previous = position
    out.extend(rows[previous:])
    return tuple(out)


def merge_state(
    state: RetainedState,
    composed: ComposedDelta,
    snapshot: ColumnarDatabase,
    deadline: Deadline | None = None,
) -> MergeSuccess | MergeCapacity:
    """Merge a composed delta into retained state.

    On success the state is committed forward to
    ``composed.new_version`` and the outcome returned; on a capacity
    overflow nothing is committed and the synthesised error returned.
    A :class:`~repro.engine.deadline.DeadlineExceeded` propagates with
    the state untouched.

    Eligibility (plan shape, history coverage, unchanged bit widths,
    delta size) must have been established by
    :class:`~repro.serve.ivm.policy.IvmPolicy` beforehand.
    """
    plan = state.plan
    backend = state.backend
    p = plan.signature.p
    config = plan_config(plan)
    new_input_bits = snapshot.total_bits
    capacity = config.capacity_bits(new_input_bits)

    # Source deltas in plan-name space; view deltas join as rounds
    # complete (the semi-naive cascade).
    pending: dict[str, tuple[Rows, Rows]] = {}
    for name in plan.relations():
        db_name = state.relation_map.get(name, name)
        added = tuple(sorted(composed.added.get(db_name, ())))
        removed = tuple(sorted(composed.removed.get(db_name, ())))
        if added or removed:
            pending[name] = (added, removed)

    # Temporaries; committed only on success.
    patched_fragments: dict[tuple[str, int], object] = {}
    patched_tables: dict[tuple[str | None, int], object] = {}
    patched_merged: dict[str | None, object] = {}
    affected: dict[str, set[int]] = {}
    #: Mailbox keys whose fragments lost rows this merge: sites fed by
    #: them may shrink, which disables the growth-only fast path.
    shrunk: set[str] = set()
    #: Sites whose merged table was updated by sorted insertion:
    #: ``(fresh rows, insert positions | None)``.
    spliced: dict[str | None, tuple[Rows, object]] = {}
    new_rounds: list[RoundStats] = []

    def fragment_of(key: str, worker: int):
        fragment = patched_fragments.get((key, worker))
        if fragment is None:
            fragment = state.pools[key].fragments[worker]
        return fragment

    def table_of(site: SiteState, worker: int):
        table = patched_tables.get((site.name, worker))
        if table is None:
            table = site.tables[worker]
        return table

    def refresh_site(site: SiteState) -> tuple[Rows, Rows] | None:
        """Re-join the site's affected workers.

        Returns the ``(added, removed)`` delta of the site's merged
        table, or None when no worker was affected.  When every
        fragment patch feeding the site was insert-only, monotonicity
        of conjunctive queries guarantees the per-worker tables only
        grow, so on the numpy backend the canonical merged table is
        updated by sorted insertion (delta-proportional) instead of
        re-uniquing every worker's table; any routed removal falls
        back to the full recompute, which is always exact.
        """
        arity = len(site.query.head)
        touched = set()
        for key in site.keys.values():
            touched |= affected.get(key, set())
        touched = {w for w in touched if w < site.workers}
        if not touched:
            return None
        for worker in sorted(touched):
            fragments = {
                atom_name: fragment_of(key, worker)
                for atom_name, key in site.keys.items()
            }
            patched_tables[(site.name, worker)] = evaluate_worker(
                site.query, fragments, backend
            )
        if (
            backend == NUMPY
            and arity > 0
            and not any(key in shrunk for key in site.keys.values())
        ):
            new_tables = [
                patched_tables[(site.name, worker)]
                for worker in sorted(touched)
            ]
            table, fresh, positions = _insert_new_rows(
                site.merged, new_tables, arity
            )
            patched_merged[site.name] = table
            spliced[site.name] = (fresh, positions)
            return fresh, ()
        tables = [
            table_of(site, worker) for worker in range(site.workers)
        ]
        patched_merged[site.name] = _merge_tables(
            tables, arity, backend
        )
        old_merged = set(table_rows(site.merged, backend))
        new_merged = set(
            table_rows(patched_merged[site.name], backend)
        )
        return (
            tuple(sorted(new_merged - old_merged)),
            tuple(sorted(old_merged - new_merged)),
        )

    for round_index, plan_round in enumerate(plan.rounds):
        if deadline is not None:
            deadline.check("ivm merge")
        old_stats = state.report_rounds[round_index]
        bits_delta = [0] * p
        tuples_delta = [0] * p
        for step_index, step in enumerate(plan_round.steps):
            added, removed = pending.get(step.relation, ((), ()))
            if not added and not removed:
                continue
            per_tuple = state.step_bits[(round_index, step_index)]
            key = step.mailbox_key
            routed_added = _route_delta(step, added, p)
            routed_removed = _route_delta(step, removed, p)
            for worker, rows in routed_added.items():
                bits_delta[worker] += len(rows) * per_tuple
                tuples_delta[worker] += len(rows)
            for worker, rows in routed_removed.items():
                bits_delta[worker] -= len(rows) * per_tuple
                tuples_delta[worker] -= len(rows)
            if key in state.pools:
                workers = set(routed_added) | set(routed_removed)
                if routed_removed:
                    shrunk.add(key)
                affected.setdefault(key, set()).update(workers)
                for worker in sorted(workers):
                    patched_fragments[(key, worker)] = _patch_fragment(
                        fragment_of(key, worker),
                        routed_removed.get(worker, []),
                        routed_added.get(worker, []),
                        backend,
                    )
        new_bits = tuple(
            old + delta
            for old, delta in zip(old_stats.received_bits, bits_delta)
        )
        new_tuples = tuple(
            old + delta
            for old, delta in zip(
                old_stats.received_tuples, tuples_delta
            )
        )
        if plan.signature.enforce_capacity:
            # Identical scan order to MPCSimulator.end_round: workers
            # ascending, first overflow wins, round stats not closed.
            for worker, bits in enumerate(new_bits):
                if bits > capacity:
                    return MergeCapacity(
                        error=CapacityExceeded(
                            worker, bits, capacity, round_index + 1
                        ),
                        input_bits=new_input_bits,
                    )
        new_rounds.append(
            RoundStats(
                round_index=round_index + 1,
                received_bits=new_bits,
                received_tuples=new_tuples,
                capacity_bits=capacity,
            )
        )
        for view_name in state.view_rounds[round_index]:
            site = state.views[view_name]
            moved = refresh_site(site)
            if moved is None:
                pending.pop(view_name, None)
                continue
            added_v, removed_v = moved
            if added_v or removed_v:
                pending[view_name] = (added_v, removed_v)
            else:
                pending.pop(view_name, None)

    if deadline is not None:
        deadline.check("ivm finalize")

    finalize = plan.finalize
    if isinstance(finalize, CollectAnswers):
        site = state.collect
        assert site is not None
        refresh_site(site)
        merged = patched_merged.get(site.name, site.merged)
        cached = site.answer_rows
        if cached is not None and site.name not in patched_merged:
            answers = cached
        elif cached is not None and site.name in spliced:
            fresh, insert_at = spliced[site.name]
            answers = (
                cached
                if insert_at is None
                else _splice_rows(cached, fresh, insert_at)
            )
        else:
            answers = table_rows(merged, backend)
        per_server = tuple(
            [len(table_of(site, w)) for w in range(site.workers)]
            + [0] * (p - site.workers)
        )
    else:
        assert isinstance(finalize, FinalizeView)
        site = state.views[finalize.view]
        merged = patched_merged.get(site.name, site.merged)
        head_positions = state.finalize_positions
        assert head_positions is not None
        cached = site.answer_rows
        if cached is not None and site.name not in patched_merged:
            answers = cached
        elif cached is not None and site.name in spliced:
            fresh, insert_at = spliced[site.name]
            if insert_at is None:
                answers = cached
            else:
                projected = list(cached)
                for row in fresh:
                    insort(
                        projected,
                        tuple(row[i] for i in head_positions),
                    )
                answers = tuple(projected)
        else:
            answers = tuple(
                sorted(
                    tuple(row[i] for i in head_positions)
                    for row in table_rows(merged, backend)
                )
            )
        per_server = ()

    view_sizes = {
        name: len(patched_merged.get(name, view.merged))
        for name, view in state.views.items()
    }

    # Commit: the merge succeeded end to end.
    for (key, worker), fragment in patched_fragments.items():
        state.pools[key].fragments[worker] = fragment
    for (name, worker), table in patched_tables.items():
        target = state.collect if name is None else state.views[name]
        target.tables[worker] = table
    for name, merged_table in patched_merged.items():
        target = state.collect if name is None else state.views[name]
        target.merged = merged_table
    site.answer_rows = answers
    state.report_rounds = tuple(new_rounds)
    state.input_bits = new_input_bits
    state.version = composed.new_version
    state.recount_bytes()

    return MergeSuccess(
        answers=answers,
        per_server=per_server,
        report=SimulationReport(
            input_bits=new_input_bits, rounds=list(new_rounds)
        ),
        view_sizes=view_sizes,
    )
