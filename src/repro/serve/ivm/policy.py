"""The IVM cost gate: when to merge a delta, when to fall back.

Incremental maintenance is only correct for plans whose routing is a
pure function of tuple content (the property the source paper's model
guarantees for HyperCube-style hash routing) and only *profitable*
when the delta is small relative to the base.  ``IvmPolicy`` encodes
both as named fallback reasons, surfaced verbatim through
``ServiceStats``, ``explain()`` and ``/metrics`` so an operator can
see why a workload is not incrementalising.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.columnar import ColumnarDatabase
from repro.data.versioned import ComposedDelta
from repro.engine.plan import CollectAnswers, FinalizeView, Plan
from repro.serve.faults import worker_death_after

from .state import RetainedState, step_writers

# Plan-shape reasons (decided once per plan).
FALLBACK_FIXPOINT = "fixpoint-plan"
FALLBACK_NO_FINALIZE = "no-finalize"
FALLBACK_HEAVY_BINDING = "heavy-binding"
FALLBACK_NON_SHARDABLE = "non-shardable-step"
FALLBACK_MULTI_WRITER = "multi-writer-mailbox"

# Per-merge reasons (decided per delta).
FALLBACK_NO_STATE = "no-retained-state"
FALLBACK_HISTORY_GAP = "history-gap"
FALLBACK_BITS_CHANGED = "bits-changed"
FALLBACK_DELTA_TOO_LARGE = "delta-too-large"
FALLBACK_FAULTS_ACTIVE = "faults-active"


@dataclass(frozen=True)
class IvmPolicy:
    """Tunable gates of the incremental path.

    Attributes:
        max_delta_fraction: merge only when the composed delta's
            changed-row count is at most this fraction of the plan's
            base rows; beyond it, routing the delta approaches the
            cost of routing the base and full re-execution wins.
        max_bytes: byte budget for all retained state (the RSS
            ceiling enforced by :class:`~repro.serve.ivm.state.
            IvmStore`).
    """

    max_delta_fraction: float = 0.25
    max_bytes: int = 64 << 20

    def plan_fallback_reason(self, plan: Plan) -> str | None:
        """Why this plan can never be incrementally maintained
        (None when it can)."""
        if plan.fixpoint is not None:
            return FALLBACK_FIXPOINT
        if not isinstance(plan.finalize, (CollectAnswers, FinalizeView)):
            return FALLBACK_NO_FINALIZE
        for plan_round in plan.rounds:
            if plan_round.bind_heavy is not None:
                # Heavy-hitter binding makes routing depend on data
                # statistics, not just tuple content.
                return FALLBACK_HEAVY_BINDING
            for step in plan_round.steps:
                if not step.shardable:
                    return FALLBACK_NON_SHARDABLE
        for key, writers in step_writers(plan).items():
            if len(writers) > 1:
                # A fragment fed by several steps cannot be patched
                # per step without multiplicity tracking.
                return FALLBACK_MULTI_WRITER
        return None

    def merge_fallback_reason(
        self,
        state: RetainedState,
        composed: ComposedDelta | None,
        snapshot: ColumnarDatabase,
    ) -> str | None:
        """Why this particular delta should not be merged
        (None when the merge may proceed)."""
        if worker_death_after() is not None:
            # Under the worker-death fault drill the serving layer is
            # already degrading; take the well-trodden full path.
            return FALLBACK_FAULTS_ACTIVE
        if composed is None:
            return FALLBACK_HISTORY_GAP
        if composed.bits_changed:
            # Per-tuple bit accounting moved; every retained round
            # statistic would need re-derivation from scratch.
            return FALLBACK_BITS_CHANGED
        base_names = {
            state.relation_map.get(name, name)
            for name in state.plan.relations()
        }
        changed = sum(
            len(composed.added.get(name, ())) +
            len(composed.removed.get(name, ()))
            for name in base_names
        )
        base_rows = sum(
            len(snapshot[name]) for name in base_names if name in snapshot
        )
        if changed > self.max_delta_fraction * max(base_rows, 1):
            return FALLBACK_DELTA_TOO_LARGE
        return None
