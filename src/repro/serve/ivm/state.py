"""Retained routed state: what a full execution leaves behind for IVM.

The MPC model routes by tuple *content* (a ``HashRoute`` destination
depends only on the row's values), so the per-worker fragments a full
execution delivered stay valid under a delta except for exactly the
routed images of the changed rows.  This module captures that state
once per full execution -- per-mailbox-key worker fragments, per-site
per-worker answer tables, and the run's round statistics -- so
:mod:`repro.serve.ivm.merge` can later patch it with a routed delta
instead of re-executing the plan.

Capture is *post hoc*: it reads the pooled deliveries still sitting in
the execution's simulator (the serving layer resets simulators lazily,
at the start of the next run), so the engine itself needs no hooks.
Captured numpy fragments are zero-copy views into the simulator's
pools; captured pure-backend rows are copied because ``reset`` clears
mailboxes in place.

Every capture re-derives the answers from the captured fragments and
compares them against what the execution actually produced; any
mismatch silently drops the state, so a capture bug degrades to full
re-execution, never to a wrong answer.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.query import ConjunctiveQuery
from repro.data.columnar import ColumnarDatabase, bits_per_value
from repro.engine.executor import PlanExecution
from repro.engine.plan import (
    CollectAnswers,
    FinalizeView,
    Plan,
    key_map_of,
)
from repro.mpc.stats import RoundStats

NUMPY = "numpy"

#: Rough per-row cost of retained pure-backend fragments (tuple header
#: plus small-int pointers); only used for the byte budget, so it must
#: be stable, not exact.
_PURE_ROW_BYTES = 60
_PURE_VALUE_BYTES = 28


@dataclass
class FragmentStore:
    """One mailbox key's per-worker fragments.

    ``fragments[w]`` is worker ``w``'s full fragment of the key:
    a tuple of int64 column arrays (numpy backend) or a list of row
    tuples (pure backend).
    """

    arity: int
    fragments: list[Any]


@dataclass
class SiteState:
    """One evaluation site: a materialised view or answer collection.

    Attributes:
        name: view name, or None for the ``CollectAnswers`` site.
        query: the site's full conjunctive query.
        keys: atom name -> mailbox key the atom reads.
        workers: number of workers evaluating the site.
        tables: per-worker answer tables (int64 arrays or row tuples).
        merged: the canonical merged table -- lex-sorted unique rows.
        answer_rows: for the site that produces the request's answers,
            a cache of those answers as row tuples in canonical order
            (kept current by every merge, so a delta-proportional
            merge never re-materialises the full table); None for
            every other site.
    """

    name: str | None
    query: ConjunctiveQuery
    keys: dict[str, str]
    workers: int
    tables: list[Any]
    merged: Any
    answer_rows: tuple | None = None


@dataclass
class RetainedState:
    """Everything IVM retains from one full plan execution."""

    version: int
    plan: Plan
    relation_map: dict[str, str]
    backend: str
    pools: dict[str, FragmentStore]
    views: dict[str, SiteState]
    view_rounds: list[list[str]]
    collect: SiteState | None
    finalize_positions: list[int] | None
    report_rounds: tuple[RoundStats, ...]
    input_bits: int
    step_bits: dict[tuple[int, int], int]
    nbytes: int = 0

    def recount_bytes(self) -> int:
        """Recompute (and store) the retained-byte estimate."""
        total = 0
        for store in self.pools.values():
            for fragment in store.fragments:
                total += _fragment_bytes(fragment, self.backend)
        for site in list(self.views.values()) + (
            [self.collect] if self.collect is not None else []
        ):
            for table in site.tables:
                total += _table_bytes(table, self.backend)
            total += _table_bytes(site.merged, self.backend)
            if site.answer_rows is not None:
                total += _table_bytes(site.answer_rows, "pure")
        self.nbytes = total
        return total


def _fragment_bytes(fragment: Any, backend: str) -> int:
    if backend == NUMPY:
        return sum(int(column.nbytes) for column in fragment)
    if not fragment:
        return 0
    width = len(fragment[0])
    return len(fragment) * (_PURE_ROW_BYTES + width * _PURE_VALUE_BYTES)


def _table_bytes(table: Any, backend: str) -> int:
    if backend == NUMPY:
        return int(table.nbytes)
    if not table:
        return 0
    width = len(table[0])
    return len(table) * (_PURE_ROW_BYTES + width * _PURE_VALUE_BYTES)


def plan_sites(plan: Plan) -> list[tuple[str | None, ConjunctiveQuery, Any]]:
    """Every evaluation site of a plan: ``(view name | None, query,
    key_map)`` -- views in round order, then the collect site."""
    sites: list[tuple[str | None, ConjunctiveQuery, Any]] = []
    for plan_round in plan.rounds:
        for view in plan_round.views:
            sites.append((view.name, view.query, view.key_map))
    finalize = plan.finalize
    if isinstance(finalize, CollectAnswers):
        sites.append((None, finalize.query, finalize.key_map))
    return sites


def step_writers(plan: Plan) -> dict[str, list[tuple[int, int]]]:
    """mailbox key -> every ``(round, step)`` that delivers into it."""
    writers: dict[str, list[tuple[int, int]]] = {}
    for round_index, plan_round in enumerate(plan.rounds):
        for step_index, step in enumerate(plan_round.steps):
            writers.setdefault(step.mailbox_key, []).append(
                (round_index, step_index)
            )
    return writers


def _view_arities(plan: Plan) -> dict[str, int]:
    return {
        view.name: len(view.query.head)
        for plan_round in plan.rounds
        for view in plan_round.views
    }


def compute_step_bits(
    plan: Plan,
    snapshot: ColumnarDatabase,
    relation_map: Mapping[str, str],
) -> dict[tuple[int, int], int]:
    """Per ``(round, step)``: the bits-per-tuple the step's shipping
    is charged at, reconstructed exactly as ``execute_plan`` charges
    it (including the ``uniform_domain_bits`` replacement and views
    being created at the database-wide domain)."""
    view_arity = _view_arities(plan)
    domain_bits = bits_per_value(snapshot.domain_size)
    bits: dict[tuple[int, int], int] = {}
    for round_index, plan_round in enumerate(plan.rounds):
        for step_index, step in enumerate(plan_round.steps):
            source = step.relation
            if source in view_arity:
                per_tuple = view_arity[source] * domain_bits
            else:
                relation = snapshot[relation_map.get(source, source)]
                if plan.uniform_domain_bits:
                    per_tuple = relation.arity * domain_bits
                else:
                    per_tuple = relation.tuple_bits
            bits[(round_index, step_index)] = per_tuple
    return bits


def _merge_tables(tables: list[Any], arity: int, backend: str) -> Any:
    """The canonical duplicate-free union of per-worker tables --
    exactly the merge full execution performs."""
    if backend == NUMPY:
        from repro.backend import require_numpy

        numpy = require_numpy()
        nonempty = [table for table in tables if len(table)]
        if not nonempty:
            return numpy.zeros((0, arity), dtype=numpy.int64)
        return numpy.unique(numpy.concatenate(nonempty), axis=0)
    merged: set[tuple[int, ...]] = set()
    for table in tables:
        merged.update(table)
    return tuple(sorted(merged))


def table_rows(table: Any, backend: str) -> tuple[tuple[int, ...], ...]:
    """A table's rows as plain tuples (canonical order preserved)."""
    if backend == NUMPY:
        return tuple(map(tuple, table.tolist()))
    return tuple(table)


def evaluate_worker(
    query: ConjunctiveQuery,
    fragments: Mapping[str, Any],
    backend: str,
) -> Any:
    """One worker's duplicate-free answers over its fragments.

    numpy: an int64 table via the columnar evaluator with the
    duplicate-free fast path (fragments are sets by construction --
    content routing never delivers a row twice to one worker).
    pure: sorted answer row tuples from the reference evaluator.
    """
    if backend == NUMPY:
        from repro.algorithms.localjoin import evaluate_query_table

        return evaluate_query_table(query, fragments, assume_unique=True)
    from repro.algorithms.localjoin import evaluate_query

    return evaluate_query(
        query, {name: list(rows) for name, rows in fragments.items()}
    )


def capture_state(
    plan: Plan,
    execution: PlanExecution,
    relation_map: Mapping[str, str] | None,
    version: int,
    snapshot: ColumnarDatabase,
) -> RetainedState | None:
    """Capture a just-finished full execution's routed state.

    Returns None (retain nothing) when the simulator no longer holds
    complete pooled deliveries for every needed key, or when the
    re-derived answers fail to match the execution's -- either way the
    next delta simply falls back to full re-execution.
    """
    backend = plan.signature.backend
    simulator = execution.simulator
    p = plan.signature.p
    relation_map = dict(relation_map or {})
    if len(execution.report.rounds) != len(plan.rounds):
        return None

    sites = plan_sites(plan)
    needed_keys: set[str] = set()
    for _, query, key_map in sites:
        key_of = key_map_of(key_map)
        needed_keys.update(key_of(atom.name) for atom in query.atoms)

    pools: dict[str, FragmentStore] = {}
    for key in sorted(needed_keys):
        if backend == NUMPY:
            if simulator.has_lazy_deliveries(key):
                # Streamed recipes: materialising the pool here would
                # recreate the memory cliff streaming exists to avoid.
                return None
            pool = simulator.relation_pool(key)
            if pool is None or pool.num_workers != p:
                return None
            fragments = [pool.worker_slice(w) for w in range(p)]
            arity = len(pool.columns)
        else:
            fragments = [
                list(simulator.worker_rows(w, key)) for w in range(p)
            ]
            arity = next(
                (
                    len(rows[0])
                    for rows in fragments
                    if rows
                ),
                0,
            )
        pools[key] = FragmentStore(arity=arity, fragments=fragments)

    views: dict[str, SiteState] = {}
    view_rounds: list[list[str]] = []
    collect: SiteState | None = None
    finalize_positions: list[int] | None = None

    for plan_round in plan.rounds:
        view_rounds.append([view.name for view in plan_round.views])
    for name, query, key_map in sites:
        key_of = key_map_of(key_map)
        keys = {atom.name: key_of(atom.name) for atom in query.atoms}
        workers = (
            plan.finalize.workers
            if name is None and isinstance(plan.finalize, CollectAnswers)
            else p
        )
        tables = []
        for w in range(workers):
            fragments = {
                atom_name: pools[key].fragments[w]
                for atom_name, key in keys.items()
            }
            tables.append(evaluate_worker(query, fragments, backend))
        merged = _merge_tables(tables, len(query.head), backend)
        site = SiteState(
            name=name,
            query=query,
            keys=keys,
            workers=workers,
            tables=tables,
            merged=merged,
        )
        if name is None:
            collect = site
        else:
            views[name] = site

    # Canary: the re-derived state must reproduce the execution's
    # observable outputs exactly, or we retain nothing.
    view_sizes = execution.view_sizes or {}
    per_server_views = execution.per_server_views or {}
    for name, site in views.items():
        if len(site.merged) != view_sizes.get(name):
            return None
        counts = per_server_views.get(name)
        if counts is not None and tuple(
            len(table) for table in site.tables
        ) != tuple(counts):
            return None
    finalize = plan.finalize
    if isinstance(finalize, CollectAnswers):
        assert collect is not None
        per_server = tuple(
            [len(table) for table in collect.tables]
            + [0] * (p - collect.workers)
        )
        if per_server != tuple(execution.per_server):
            return None
        answer_rows = table_rows(collect.merged, backend)
        if answer_rows != tuple(execution.answers):
            return None
        collect.answer_rows = answer_rows
    elif isinstance(finalize, FinalizeView):
        site = views.get(finalize.view)
        if site is None:
            return None
        schema = site.query.head
        finalize_positions = [
            schema.index(variable) for variable in finalize.head
        ]
        answers = tuple(
            sorted(
                tuple(row[i] for i in finalize_positions)
                for row in table_rows(site.merged, backend)
            )
        )
        if answers != tuple(execution.answers):
            return None
        site.answer_rows = answers
    else:
        return None

    state = RetainedState(
        version=version,
        plan=plan,
        relation_map=relation_map,
        backend=backend,
        pools=pools,
        views=views,
        view_rounds=view_rounds,
        collect=collect,
        finalize_positions=finalize_positions,
        report_rounds=tuple(execution.report.rounds),
        input_bits=execution.report.input_bits,
        step_bits=compute_step_bits(plan, snapshot, relation_map),
    )
    state.recount_bytes()
    return state


class IvmStore:
    """LRU store of retained states under a byte budget.

    The budget is the subsystem's RSS ceiling: adding or growing a
    state evicts least-recently-used states until the total fits, and
    a state that alone exceeds the budget is not retained at all.
    """

    def __init__(self, max_bytes: int) -> None:
        if max_bytes < 0:
            raise ValueError(f"need max_bytes >= 0, got {max_bytes}")
        self.max_bytes = max_bytes
        self._states: OrderedDict[Any, RetainedState] = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._states)

    @property
    def total_bytes(self) -> int:
        """Current retained bytes across every state."""
        return sum(state.nbytes for state in self._states.values())

    def get(self, variant: Any) -> RetainedState | None:
        state = self._states.get(variant)
        if state is not None:
            self._states.move_to_end(variant)
        return state

    def put(self, variant: Any, state: RetainedState) -> bool:
        """Retain a state; False when the budget rejected it."""
        self._states.pop(variant, None)
        if state.nbytes > self.max_bytes:
            self._shrink()
            return False
        self._states[variant] = state
        self._shrink()
        return variant in self._states

    def discard(self, variant: Any) -> None:
        self._states.pop(variant, None)

    def clear(self) -> None:
        self._states.clear()

    def resized(self, variant: Any) -> bool:
        """Re-apply the budget after a state grew in place."""
        state = self._states.get(variant)
        if state is None:
            return False
        self._states.move_to_end(variant)
        if state.nbytes > self.max_bytes:
            del self._states[variant]
            self.evictions += 1
            return False
        self._shrink()
        return variant in self._states

    def _shrink(self) -> None:
        while self.total_bytes > self.max_bytes and self._states:
            self._states.popitem(last=False)
            self.evictions += 1
