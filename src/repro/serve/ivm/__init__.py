"""Incremental view maintenance for the serving layer.

After an ``apply_delta``, the service normally cold-starts: every
per-version cache misses and the next request re-routes and re-joins
the whole database.  This package serves that request by routing
**only the delta** through the plan's own routing steps and merging
with retained per-worker state -- exploiting the source paper's core
structural property that MPC routing is a pure function of tuple
content, so a delta's routed image is independent of the rest of the
input.

Components:

- :mod:`~repro.serve.ivm.state` -- capture and retention of routed
  state (per-worker fragments, per-site answer tables, round stats)
  under an LRU byte budget.
- :mod:`~repro.serve.ivm.merge` -- the semi-naive delta merge that
  produces bit-identical answers, loads and ``CapacityExceeded``
  versus full re-execution.
- :mod:`~repro.serve.ivm.policy` -- the cost gate with named fallback
  reasons.

:class:`IvmManager` is the facade :class:`~repro.serve.service.
QueryService` drives: ``capture`` after every full execution,
``serve`` on a result-cache miss after a delta.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from repro.data.versioned import VersionedDatabase
from repro.engine.deadline import Deadline
from repro.engine.executor import PlanExecution
from repro.engine.plan import Plan

from .merge import MergeCapacity, MergeSuccess, merge_state
from .policy import FALLBACK_HISTORY_GAP, FALLBACK_NO_STATE, IvmPolicy
from .state import IvmStore, RetainedState, capture_state

__all__ = [
    "IvmManager",
    "IvmPolicy",
    "IvmStore",
    "MergeCapacity",
    "MergeSuccess",
    "RetainedState",
    "capture_state",
    "merge_state",
]


class IvmManager:
    """Drives capture, gating and merging for one service.

    Not thread-safe on its own; the owning service already serialises
    execution per request under its lock.
    """

    def __init__(self, policy: IvmPolicy | None = None) -> None:
        self.policy = policy or IvmPolicy()
        self.store = IvmStore(max_bytes=self.policy.max_bytes)
        #: fallback reason -> occurrences, for observability surfaces.
        self.fallback_reasons: Counter[str] = Counter()
        self._plan_reasons: dict[Any, str | None] = {}

    @property
    def retained_bytes(self) -> int:
        """Bytes currently held by retained state."""
        return self.store.total_bytes

    @property
    def retained_states(self) -> int:
        """Number of retained (plan variant) states."""
        return len(self.store)

    def _plan_reason(self, plan: Plan) -> str | None:
        key = plan.signature.cache_key
        if key not in self._plan_reasons:
            self._plan_reasons[key] = self.policy.plan_fallback_reason(
                plan
            )
            if len(self._plan_reasons) > 4096:
                self._plan_reasons.clear()
        return self._plan_reasons[key]

    def capture(
        self,
        variant: Any,
        plan: Plan,
        execution: PlanExecution,
        relation_map: dict[str, str] | None,
        version: int,
        database: VersionedDatabase,
    ) -> bool:
        """Retain a full execution's routed state (best effort)."""
        if self._plan_reason(plan) is not None:
            return False
        state = capture_state(
            plan, execution, relation_map, version, database.snapshot
        )
        if state is None:
            return False
        return self.store.put(variant, state)

    def serve(
        self,
        variant: Any,
        plan: Plan,
        version: int,
        database: VersionedDatabase,
        deadline: Deadline | None = None,
    ) -> MergeSuccess | MergeCapacity | str:
        """Try to serve a post-delta request incrementally.

        Returns a :class:`MergeSuccess`, a :class:`MergeCapacity`
        (both bit-identical to full re-execution), or the fallback
        reason string when the full path must run instead.  A
        ``DeadlineExceeded`` propagates with retained state intact.
        """
        reason = self._plan_reason(plan)
        if reason is not None:
            self.fallback_reasons[reason] += 1
            return reason
        state = self.store.get(variant)
        if state is None or state.version > version:
            self.fallback_reasons[FALLBACK_NO_STATE] += 1
            return FALLBACK_NO_STATE
        composed = database.delta_between(state.version, version)
        if composed is None:
            # The gap never heals (history is bounded); free the bytes.
            self.store.discard(variant)
            self.fallback_reasons[FALLBACK_HISTORY_GAP] += 1
            return FALLBACK_HISTORY_GAP
        reason = self.policy.merge_fallback_reason(
            state, composed, database.snapshot
        )
        if reason is not None:
            self.fallback_reasons[reason] += 1
            return reason
        result = merge_state(
            state, composed, database.snapshot, deadline=deadline
        )
        if isinstance(result, MergeSuccess):
            # The state may have grown past the budget; re-check.
            self.store.resized(variant)
        return result

    def fast_forward(self, old_version: int, new_version: int) -> None:
        """Advance every state pinned at ``old_version`` across a
        no-op version bump (contents identical by definition)."""
        for state in list(self.store._states.values()):
            if state.version == old_version:
                state.version = new_version

    def clear(self) -> None:
        """Drop all retained state (e.g. service close)."""
        self.store.clear()
        self._plan_reasons.clear()
