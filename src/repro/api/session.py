"""The one front door: ``repro.connect(db)`` -> :class:`Session`.

The paper is about *choosing* -- one round or many, which shares,
full or partial answers -- so the public API no longer asks the
caller to choose a ``run_*`` entry point.  A :class:`Session` wraps
the serving stack (:class:`~repro.serve.service.QueryService` over a
:class:`~repro.data.versioned.VersionedDatabase`) behind a planner:

    session = repro.connect(database, p=16)
    statement = session.query("S1(x,y), S2(y,z)")
    answers = statement.execute().answers     # planner picks the route
    print(statement.explain().format())       # ...and shows its work
    for row in statement.stream():            # lazy row iteration
        ...

Every :class:`Statement` is lazy: nothing touches the data until
``.execute()`` / ``.stream()`` (``.explain()`` reads only the cheap
statistics profile).  Results are bit-identical to calling the chosen
algorithm's ``run_*`` entry point directly -- the planner only decides
*which* compiler runs, never *how*.

Planner decisions and data profiles are cached per database version
in bounded LRU stores, and the same ``Statement`` semantics are the
wire protocol of the JSON-lines RPC server
(:mod:`repro.serve.rpc`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.core.query import ConjunctiveQuery, parse_query
from repro.data.columnar import ColumnarDatabase, ColumnarRelation
from repro.data.database import Database
from repro.data.versioned import DatabaseDelta, VersionedDatabase
from repro.engine import Plan, RoundProfiler
from repro.mpc.stats import SimulationReport
from repro.planner import (
    DataProfile,
    Explain,
    Planner,
    PlannerChoice,
    PlannerStats,
    collect_profile,
)
from repro.planner.stats import SAMPLE_CAP
from repro.serve.cache import LRUCache
from repro.serve.service import QueryService, ServiceResult, ServiceStats

#: Sentinel: "the session default", distinct from an explicit None.
_UNSET = object()


@dataclass(frozen=True)
class Result:
    """One executed statement's outcome.

    Everything a :class:`~repro.serve.service.ServiceResult` carries,
    plus the planner's :class:`~repro.planner.Explain` for the route
    that produced it.  Iterating a result iterates its answer rows.
    """

    raw: ServiceResult
    explain: Explain

    @property
    def answers(self) -> tuple[tuple[int, ...], ...]:
        """Sorted answer tuples in the statement's head order."""
        return self.raw.answers

    @property
    def algorithm(self) -> str:
        """The compiler that served this result."""
        return self.raw.algorithm

    @property
    def plan(self) -> Plan:
        """The compiled plan that served this result."""
        return self.raw.plan

    @property
    def report(self) -> SimulationReport:
        """Communication statistics of the (possibly cached) run."""
        return self.raw.report

    @property
    def per_server(self) -> tuple[int, ...]:
        """Per-worker answer counts, zero-padded to ``p``."""
        return self.raw.per_server

    @property
    def version(self) -> int:
        """Database version the result was computed against."""
        return self.raw.version

    @property
    def cached(self) -> bool:
        """True when the whole execution was memoized."""
        return self.raw.result_hit

    @property
    def ivm(self) -> str | None:
        """How incremental maintenance served this execution.

        ``"merged"`` when the answer came from a delta merge against
        retained state, a named fallback reason when the full path
        ran, None when IVM was not consulted (also mirrored on
        :attr:`explain`).
        """
        return self.raw.ivm

    @property
    def heavy_hitters(self) -> dict[str, frozenset[int]] | None:
        """Heavy values bound during execution (skew-aware routes)."""
        return self.raw.heavy_hitters

    @property
    def view_sizes(self) -> dict[str, int]:
        """Materialised intermediate-view sizes (multi-round routes)."""
        return self.raw.view_sizes

    def __len__(self) -> int:
        return len(self.raw.answers)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self.raw.answers)


@dataclass(frozen=True)
class Statement:
    """A prepared query bound to a session -- the unit of execution.

    Statements are immutable and lazy; build them with
    :meth:`Session.query`.  The same object can be executed any number
    of times (each execution answers against the database version
    current at that moment).
    """

    session: "Session"
    query: ConjunctiveQuery
    eps: Fraction | None = None
    algorithm: str | None = None
    allow_partial: bool = False
    #: Latency budget in milliseconds, counted from the moment the
    #: statement starts executing; None = no deadline.
    deadline_ms: float | None = None

    @property
    def text(self) -> str:
        """Canonical text of the statement's query."""
        return str(self.query)

    def canonical_key(self) -> tuple:
        """Hashable identity of this statement's semantics.

        Two statements with equal keys, executed at the same database
        version, return identical responses -- the coalescing key of
        the RPC front end.  ``deadline_ms`` is part of the key: two
        requests with different budgets must not share one in-flight
        execution (the shorter budget could poison the longer one's
        answer with a DeadlineExceeded).
        """
        return (
            str(self.query),
            self.query.head,
            self.eps,
            self.algorithm,
            self.allow_partial,
            self.deadline_ms,
        )

    def plan(self) -> PlannerChoice:
        """The planner's routing decision (cached per version)."""
        return self.session._decide(self)

    def explain(self) -> Explain:
        """Why the planner routes this statement the way it does.

        Reads only the statistics profile -- no execution happens.
        """
        return self.plan().explain

    def describe_plan(self) -> dict:
        """The compiled plan's structural summary (no execution).

        Compiles through the session's plan cache (so a later
        ``.execute()`` reuses the same plan) and returns
        :meth:`repro.engine.plan.Plan.describe`.
        """
        choice = self.plan()
        with self.session._lock:
            compiled = self.session.service.compile(
                self.query, algorithm=choice.algorithm, eps=choice.eps
            )
        return compiled.describe()

    def execute(self, profiler: RoundProfiler | None = None) -> Result:
        """Execute the statement against the current version.

        Raises:
            QueryError: unknown relation / arity mismatch / no
                eligible algorithm at the pinned ``eps``.
            CapacityExceeded: when the session enforces capacity and
                a worker overflowed.
            DeadlineExceeded: when the statement carries a
                ``deadline_ms`` budget and it ran out at a cooperative
                checkpoint.
        """
        return self.session._execute(self, profiler)

    def stream(
        self, batch_size: int = 1024
    ) -> Iterator[tuple[int, ...]]:
        """Iterate answer rows lazily.

        Execution happens on the first ``next()``; rows are then
        yielded in ``batch_size`` chunks from the (already memoized)
        result, so abandoning the iterator early costs nothing extra.
        The RPC server streams results to clients in the same batch
        granularity.
        """
        if batch_size < 1:
            raise ValueError(f"need batch_size >= 1, got {batch_size}")
        result = self.execute()
        for start in range(0, len(result.answers), batch_size):
            yield from result.answers[start:start + batch_size]


class Session:
    """A long-lived connection to one (mutating) database.

    The only public way in is :func:`repro.connect`.  A session owns:

    * a :class:`~repro.serve.service.QueryService` (plan / routing /
      result caches over a versioned database);
    * a :class:`~repro.planner.Planner` choosing the compiler for
      every statement from the registry's declared cost models;
    * bounded LRU caches of planner decisions and data profiles, keyed
      by database version.

    Thread safety: the fan-out query path (``workers >= 2``) may be
    driven from any number of threads at once -- each statement ships
    whole to a worker process owning its own state.  Every in-process
    path (planning, compiling, executing, updating) serializes on one
    internal lock, so concurrent callers -- including dispatcher
    threads degrading to local execution after the fan-out pool broke
    -- run single-file instead of corrupting the unsynchronized
    caches and pooled simulators.

    Args:
        database: initial contents (row database, columnar database,
            mapping of columnar relations, or an existing
            :class:`~repro.data.versioned.VersionedDatabase`).
        p: number of workers every statement runs on.
        backend: compute backend (``"pure"`` / ``"numpy"`` /
            ``"auto"``).
        seed: hash-family seed shared by all plans.
        eps: session-default space exponent (None = per-statement
            automatic).
        algorithm: session-default algorithm pin (None = cost-based
            planner); statements can still override per query.
        capacity_c: capacity constant override (None = each chosen
            algorithm's own default).
        enforce_capacity: raise on worker overload.
        plan_cache_size / routing_cache_size / result_cache_size:
            entry budgets of the service's cache layers (0 disables).
        decision_cache_size / profile_cache_size: entry budgets of the
            planner-decision and data-profile caches (0 disables,
            like the service cache sizes).
        sample_cap: stride-sample relations beyond this many rows when
            profiling.
        reuse_simulators / profile: forwarded to the service.
        ivm: serve post-update statements by incremental view
            maintenance when possible (forwarded to the service; see
            :mod:`repro.serve.ivm`).
        workers: executor process count for statement fan-out.  1 (the
            default) keeps everything in this process.  With ``N >= 2``
            the session spawns ``N`` worker processes, each holding a
            full planner-backed session over a shared-memory snapshot
            of the database, and ``.execute()`` calls dispatch to idle
            workers -- so independent statements from concurrent
            threads genuinely run in parallel.  Results are
            bit-identical to in-process execution (same data, same
            seed, same deterministic planner); updates broadcast to
            every worker behind a barrier; if workers die the session
            falls back to in-process execution.  Requires the numpy
            backend for zero-copy snapshots (pure-backend relations
            ship by value).
        chunk_rows: streaming block size forwarded to the service (and
            replayed by fan-out workers): shardable routing steps
            stream in ``chunk_rows``-row blocks with lazy delivery
            pools, bounding peak execution memory independently of the
            delivered volume.  None defers to ``REPRO_CHUNK_ROWS``;
            answers, loads and capacity behaviour are identical for
            every chunk size.
        worker_join_timeout: seconds :meth:`close` waits for each
            fan-out worker process before killing it (stragglers are
            counted in the pool's ``killed_stragglers``).
    """

    def __init__(
        self,
        database: Database
        | ColumnarDatabase
        | VersionedDatabase
        | Mapping[str, ColumnarRelation],
        *,
        p: int = 16,
        backend: str | None = None,
        seed: int = 0,
        eps: Fraction | float | None = None,
        algorithm: str | None = None,
        capacity_c: float | None = None,
        enforce_capacity: bool = False,
        plan_cache_size: int = 128,
        routing_cache_size: int = 512,
        result_cache_size: int = 512,
        decision_cache_size: int = 256,
        profile_cache_size: int = 64,
        sample_cap: int = SAMPLE_CAP,
        reuse_simulators: bool = True,
        profile: bool = True,
        ivm: bool = True,
        workers: int = 1,
        chunk_rows: int | None = None,
        worker_join_timeout: float = 5.0,
    ) -> None:
        # Serializes every touch of the unsynchronized underlying
        # state: the service's plan/routing/result caches and pooled
        # simulators, the planner's decision/profile LRUs.  The
        # fan-out query path never takes it (workers own their state),
        # which is what lets N RPC dispatcher threads drive a fan-out
        # session concurrently -- but the moment any of them falls
        # back to in-process execution (pool died mid-serve), this
        # lock is what keeps the fallback single-file.  RLock because
        # the locked paths nest (_execute -> _decide -> _profile).
        self._lock = threading.RLock()
        self._service = QueryService(
            database,
            p,
            algorithm="hypercube",
            eps=None,
            backend=backend,
            seed=seed,
            capacity_c=capacity_c,
            enforce_capacity=enforce_capacity,
            plan_cache_size=plan_cache_size,
            routing_cache_size=routing_cache_size,
            result_cache_size=result_cache_size,
            reuse_simulators=reuse_simulators,
            profile=profile,
            ivm=ivm,
            chunk_rows=chunk_rows,
        )
        self.default_eps = None if eps is None else Fraction(eps)
        if algorithm is not None:
            from repro.algorithms.registry import get_algorithm

            get_algorithm(algorithm)  # raises QueryError on unknown names
        self.default_algorithm = algorithm
        self.planner_stats = PlannerStats()
        self._planner = Planner(
            p, self._service.backend, stats=self.planner_stats
        )
        self._decisions = (
            LRUCache(decision_cache_size)
            if decision_cache_size > 0
            else None
        )
        self._profiles = (
            LRUCache(profile_cache_size) if profile_cache_size > 0 else None
        )
        self._sample_cap = sample_cap
        self.workers = workers
        self._fanout: Any = None
        if workers >= 2:
            from repro.engine.parallel.fanout import SessionWorkerPool

            # The worker sessions replay these options verbatim, so
            # their planner/caches behave identically to this one.
            options = dict(
                p=p,
                backend=backend,
                seed=seed,
                eps=eps,
                algorithm=algorithm,
                capacity_c=capacity_c,
                enforce_capacity=enforce_capacity,
                plan_cache_size=plan_cache_size,
                routing_cache_size=routing_cache_size,
                result_cache_size=result_cache_size,
                decision_cache_size=decision_cache_size,
                profile_cache_size=profile_cache_size,
                sample_cap=sample_cap,
                reuse_simulators=reuse_simulators,
                profile=profile,
                ivm=ivm,
                chunk_rows=chunk_rows,
            )
            self._fanout = SessionWorkerPool(
                self._service.database,
                options,
                workers,
                join_timeout=worker_join_timeout,
            )

    # -- construction of statements -----------------------------------------

    def query(
        self,
        query: str | ConjunctiveQuery,
        *,
        eps: Any = _UNSET,
        algorithm: str | None = None,
        allow_partial: bool = False,
        deadline_ms: float | None = None,
    ) -> Statement:
        """Prepare a statement (nothing executes yet).

        Args:
            query: query text (parsed here) or a prebuilt
                :class:`~repro.core.query.ConjunctiveQuery`.
            eps: pinned space exponent for this statement; unset means
                the session default, ``None`` means automatic.
            algorithm: pinned registry algorithm (skips the cost duel;
                ``"hypercube"``, ``"skewaware"``, ``"multiround"``,
                ``"partial"``).  ``None`` falls back to the session's
                ``algorithm`` default (itself None = planner).
            allow_partial: permit the inexact below-threshold
                algorithm to win the duel (needs a pinned ``eps``
                below the query's space exponent to ever matter).
            deadline_ms: per-execution latency budget in
                milliseconds; the budget starts counting when
                ``.execute()`` is called (covering planning and
                execution) and raises
                :class:`~repro.engine.deadline.DeadlineExceeded` at
                the first cooperative checkpoint past it.  None (the
                default) means no deadline.
        """
        if isinstance(query, str):
            query = parse_query(query)
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError(
                f"need deadline_ms > 0, got {deadline_ms}"
            )
        statement_eps = (
            self.default_eps if eps is _UNSET
            else None if eps is None
            else Fraction(eps)
        )
        return Statement(
            session=self,
            query=query,
            eps=statement_eps,
            algorithm=(
                self.default_algorithm if algorithm is None else algorithm
            ),
            allow_partial=allow_partial,
            deadline_ms=(
                None if deadline_ms is None else float(deadline_ms)
            ),
        )

    def execute(self, query: str | ConjunctiveQuery, **options: Any) -> Result:
        """Shorthand for ``session.query(...).execute()``."""
        return self.query(query, **options).execute()

    def explain(self, query: str | ConjunctiveQuery, **options: Any) -> Explain:
        """Shorthand for ``session.query(...).explain()``."""
        return self.query(query, **options).explain()

    # -- write side ---------------------------------------------------------

    def update(
        self,
        inserts: Mapping[str, Iterable[Sequence[int]]] | None = None,
        deletes: Mapping[str, Iterable[Sequence[int]]] | None = None,
    ) -> int:
        """Mutate the database; returns the new version.

        Stale planner decisions and profiles are purged eagerly (they
        are version-keyed, so this is belt and braces like the
        service's own cache purge).
        """
        return self.apply_delta(DatabaseDelta.of(inserts, deletes))

    def apply_delta(self, delta: DatabaseDelta) -> int:
        """Apply a prepared delta; see :meth:`update`.

        With fan-out workers the delta broadcasts behind a full
        barrier and this session's version bumps only *after* every
        worker already applied it -- so a statement that observes the
        new version can never reach a worker still at the old one
        (the version-at-submit == version-at-execute contract the RPC
        coalescing key relies on).  A worker that dies or diverges
        mid-broadcast marks the pool broken (later queries fall back
        to in-process execution) but never loses the parent's delta.
        """
        fanout = self._fanout
        if fanout is not None and fanout.usable:
            version = fanout.apply_delta(
                delta, lambda: self._apply_local_delta(delta)
            )
        else:
            version = self._apply_local_delta(delta)
        with self._lock:
            record = self._service.database.last_record
            if (
                record is not None
                and record.new_version == version
                and record.is_noop
            ):
                # An effective no-op bump: the snapshot is unchanged,
                # so decisions and profiles stay valid -- chain their
                # keys forward instead of orphaning them.
                old_version = record.old_version

                def _rekey(key: tuple) -> tuple | None:
                    if key[-1] == old_version:
                        return key[:-1] + (version,)
                    return None

                if self._decisions is not None:
                    self._decisions.remap(_rekey)
                if self._profiles is not None:
                    self._profiles.remap(_rekey)
            if self._decisions is not None:
                self._decisions.purge(lambda key: key[-1] != version)
            if self._profiles is not None:
                self._profiles.purge(lambda key: key[-1] != version)
        return version

    def _apply_local_delta(self, delta: DatabaseDelta) -> int:
        with self._lock:
            return self._service.apply_delta(delta)

    # -- introspection ------------------------------------------------------

    @property
    def service(self) -> QueryService:
        """The underlying query service (caches, simulators, stats)."""
        return self._service

    @property
    def database(self) -> VersionedDatabase:
        """The session's versioned database."""
        return self._service.database

    @property
    def version(self) -> int:
        """Current database version."""
        return self._service.version

    @property
    def p(self) -> int:
        """Worker count of every statement."""
        return self._service.p

    @property
    def backend(self) -> str:
        """Resolved compute backend."""
        return self._service.backend

    @property
    def stats(self) -> ServiceStats:
        """Service-level counters (cache hits, evictions, phases)."""
        return self._service.stats

    @property
    def fanout(self) -> Any:
        """The statement fan-out pool, or None (introspection/stats)."""
        return self._fanout

    def close(self) -> None:
        """Release cached state, worker processes and shared segments.

        The session stays usable for in-process execution.
        """
        with self._lock:
            if self._decisions is not None:
                self._decisions.purge(lambda key: True)
            if self._profiles is not None:
                self._profiles.purge(lambda key: True)
        if self._fanout is not None:
            self._fanout.close()
            self._fanout = None
        with self._lock:
            self._service.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- internals ----------------------------------------------------------

    def _profile(self, query: ConjunctiveQuery, version: int) -> DataProfile:
        with self._lock:
            key = (str(query), version)
            profile = (
                self._profiles.get(key)
                if self._profiles is not None
                else None
            )
            if profile is None:
                profile = collect_profile(
                    query,
                    self._service.database.snapshot,
                    backend=self._service.backend,
                    sample_cap=self._sample_cap,
                    version=version,
                )
                if self._profiles is not None:
                    self._profiles.put(key, profile)
            return profile

    def _decide(self, statement: Statement) -> PlannerChoice:
        with self._lock:
            version = self._service.version
            key = statement.canonical_key() + (version,)
            choice = (
                self._decisions.get(key)
                if self._decisions is not None
                else None
            )
            if choice is not None:
                self.planner_stats.decision_cache_hits += 1
                return choice
            self._service.validate(statement.query)
            profile = self._profile(statement.query, version)
            choice = self._planner.choose(
                statement.query,
                profile,
                eps=statement.eps,
                algorithm=statement.algorithm,
                allow_partial=statement.allow_partial,
            )
            if self._decisions is not None:
                self._decisions.put(key, choice)
            return choice

    def _execute(
        self, statement: Statement, profiler: RoundProfiler | None
    ) -> Result:
        from repro.engine.deadline import Deadline

        # The budget starts here, covering planning and (for fan-out)
        # dispatch; the worker gets whatever is left of it.
        deadline = Deadline.after_ms(statement.deadline_ms)
        if (
            self._fanout is not None
            and self._fanout.usable
            and profiler is None  # profiled runs stay local: the
            # caller wants *this* process's phase timings.
        ):
            from repro.engine.parallel.fanout import FanoutBroken

            try:
                raw, explain = self._fanout.execute(
                    statement.query,
                    statement.eps,
                    statement.algorithm,
                    statement.allow_partial,
                    deadline_ms=(
                        None
                        if deadline is None
                        else max(deadline.remaining_ms(), 0.001)
                    ),
                )
                return Result(raw=raw, explain=explain)
            except FanoutBroken:
                pass  # degrade to in-process execution below.
        # In-process path: serialized.  When the fan-out pool breaks
        # at runtime, several RPC dispatcher threads can land here
        # concurrently; the lock keeps them off the unsynchronized
        # plan cache and pooled simulators one at a time.
        with self._lock:
            choice = self._decide(statement)
            raw = self._service.execute(
                statement.query,
                profiler,
                algorithm=choice.algorithm,
                eps=choice.eps,
                deadline=deadline,
            )
        explain = choice.explain
        if raw.ivm is not None:
            explain = replace(explain, ivm=raw.ivm)
        return Result(raw=raw, explain=explain)


def connect(
    database: Database
    | ColumnarDatabase
    | VersionedDatabase
    | Mapping[str, ColumnarRelation],
    **options: Any,
) -> Session:
    """Open a :class:`Session` over ``database``.

    The front door of the public API::

        import repro
        session = repro.connect(db, p=16, backend="numpy")
        result = session.query("S1(x,y), S2(y,z)").execute()

    All keyword options are :class:`Session` parameters.
    """
    return Session(database, **options)
