"""The public API: one front door, a planner behind it.

``repro.connect(database)`` opens a :class:`Session`;
``session.query(text)`` prepares a :class:`Statement` supporting
``.execute()``, ``.explain()`` and ``.stream()``.  A cost-based
planner (:mod:`repro.planner`) picks the algorithm -- one-round
HyperCube, skew-aware HC, a multi-round plan, or (opt-in) the
below-threshold partial algorithm -- from the registry's declared
cost models, bit-identically to calling the chosen ``compile_*`` /
``run_*`` directly.

The legacy per-algorithm entry points (``run_hypercube``,
``run_plan``, ``run_hypercube_skew_aware``, ``run_partial_hypercube``)
remain as thin compile+execute shims and are deprecated for
application code in favour of this module; see the README's
deprecation table.
"""

from repro.api.session import Result, Session, Statement, connect
from repro.planner import Explain

__all__ = ["Explain", "Result", "Session", "Statement", "connect"]
