"""Columnar relation storage for the vectorized execution engine.

A :class:`ColumnarRelation` stores a relation as ``arity`` parallel
value columns instead of a tuple of row tuples.  Under the ``numpy``
backend the columns are int64 arrays and deduplication, sorting and
domain validation are single vectorized passes; under ``pure`` they
are plain Python lists and the same operations fall back to the
row-at-a-time reference code.

The row-oriented :class:`repro.data.database.Relation` remains the
canonical public type; the two are convertible both ways and agree on
contents, ordering (lexicographic) and bit accounting::

    columnar = ColumnarRelation.from_relation(relation)
    assert columnar.to_relation() == relation
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

from repro.backend import NUMPY, PURE, numpy_or_none, resolve_backend
from repro.data.database import DataError, Relation, bits_per_value

Columns = tuple[Any, ...]


def _dedup_sort_pure(
    rows: Iterable[tuple[int, ...]],
) -> list[tuple[int, ...]]:
    return sorted(set(rows))


def _columns_from_rows_pure(
    rows: Sequence[tuple[int, ...]], arity: int
) -> Columns:
    return tuple(
        [row[position] for row in rows] for position in range(arity)
    )


@dataclass(frozen=True)
class ColumnarRelation:
    """An immutable relation stored column-wise.

    Attributes:
        name: relation symbol.
        arity: number of columns.
        columns: one value sequence per attribute position -- int64
            numpy arrays (``numpy`` backend) or lists of int
            (``pure``).  Rows are deduplicated and lexicographically
            sorted, mirroring :class:`Relation`.
        domain_size: the ``n`` such that values lie in ``[1, n]``.
        backend: which backend owns the column storage.
    """

    name: str
    arity: int
    columns: Columns
    domain_size: int
    backend: str = PURE

    def __post_init__(self) -> None:
        if self.arity < 1:
            raise DataError(f"{self.name}: arity must be >= 1")
        if len(self.columns) != self.arity:
            raise DataError(
                f"{self.name}: {len(self.columns)} columns for arity "
                f"{self.arity}"
            )
        lengths = {len(column) for column in self.columns}
        if len(lengths) > 1:
            raise DataError(
                f"{self.name}: ragged columns with lengths "
                f"{sorted(lengths)}"
            )

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        name: str,
        rows: Iterable[Sequence[int]],
        domain_size: int,
        arity: int | None = None,
        backend: str | None = None,
    ) -> "ColumnarRelation":
        """Build from row tuples: dedup, sort, validate, columnarise."""
        backend = resolve_backend(backend)
        materialised = [tuple(row) for row in rows]
        if arity is None:
            if not materialised:
                raise DataError(
                    f"{name}: cannot infer arity of an empty relation"
                )
            arity = len(materialised[0])
        for row in materialised:
            if len(row) != arity:
                raise DataError(
                    f"{name}: tuple {row} has arity {len(row)}, "
                    f"expected {arity}"
                )
        if backend == NUMPY:
            numpy = numpy_or_none()
            table = numpy.asarray(
                materialised, dtype=numpy.int64
            ).reshape(len(materialised), arity)
            columns = _finalise_numpy(name, table, domain_size, numpy)
        else:
            columns = _finalise_pure(name, materialised, arity, domain_size)
        return cls(
            name=name,
            arity=arity,
            columns=columns,
            domain_size=domain_size,
            backend=backend,
        )

    @classmethod
    def from_relation(
        cls, relation: Relation, backend: str | None = None
    ) -> "ColumnarRelation":
        """Columnarise an already-validated row relation (no re-checks)."""
        backend = resolve_backend(backend)
        if backend == NUMPY:
            numpy = numpy_or_none()
            table = numpy.asarray(
                relation.tuples, dtype=numpy.int64
            ).reshape(len(relation.tuples), relation.arity)
            columns = tuple(
                numpy.ascontiguousarray(table[:, position])
                for position in range(relation.arity)
            )
        else:
            columns = _columns_from_rows_pure(
                relation.tuples, relation.arity
            )
        return cls(
            name=relation.name,
            arity=relation.arity,
            columns=columns,
            domain_size=relation.domain_size,
            backend=backend,
        )

    # -- conversion ---------------------------------------------------------

    def to_relation(self) -> Relation:
        """Materialise back to the row-oriented :class:`Relation`."""
        return Relation(
            name=self.name,
            arity=self.arity,
            tuples=tuple(self.rows()),
            domain_size=self.domain_size,
        )

    def rows(self) -> Iterator[tuple[int, ...]]:
        """Iterate rows as int tuples (materialising from columns)."""
        if self.backend == NUMPY:
            lists = [column.tolist() for column in self.columns]
        else:
            lists = list(self.columns)
        return iter(zip(*lists)) if lists and len(lists[0]) else iter(())

    def with_backend(self, backend: str | None) -> "ColumnarRelation":
        """The same relation under another backend (no-op if equal)."""
        backend = resolve_backend(backend)
        if backend == self.backend:
            return self
        return ColumnarRelation.from_rows(
            self.name,
            list(self.rows()),
            self.domain_size,
            arity=self.arity,
            backend=backend,
        )

    # -- accessors ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.columns[0])

    def column(self, position: int) -> Any:
        """The value column at a 0-based attribute position."""
        return self.columns[position]

    @property
    def tuple_bits(self) -> int:
        """Bits per tuple: ``arity * ceil(log2 n)`` (as row relations)."""
        return self.arity * bits_per_value(self.domain_size)

    @property
    def size_bits(self) -> int:
        """Encoding size of the whole relation in bits."""
        return len(self) * self.tuple_bits


def _finalise_numpy(
    name: str, table: Any, domain_size: int, numpy: Any
) -> Columns:
    """Vectorized validate + dedup + lexicographic sort."""
    if table.size:
        low = int(table.min())
        high = int(table.max())
        if low < 1 or high > domain_size:
            offender = low if low < 1 else high
            raise DataError(
                f"{name}: value {offender} outside domain "
                f"[1, {domain_size}]"
            )
        table = numpy.unique(table, axis=0)
    return tuple(
        numpy.ascontiguousarray(table[:, position])
        for position in range(table.shape[1])
    )


def _finalise_pure(
    name: str,
    rows: Sequence[tuple[int, ...]],
    arity: int,
    domain_size: int,
) -> Columns:
    for row in rows:
        for value in row:
            if not 1 <= value <= domain_size:
                raise DataError(
                    f"{name}: value {value} outside domain "
                    f"[1, {domain_size}]"
                )
    return _columns_from_rows_pure(_dedup_sort_pure(rows), arity)


def columnar_database(
    database: "Any", backend: str | None = None
) -> dict[str, ColumnarRelation]:
    """Columnarise every relation of a :class:`Database`.

    Accepts either a row-oriented :class:`~repro.data.database.Database`
    or a :class:`ColumnarDatabase` (whose relations are converted only
    if their backend differs -- the large-``n`` path never leaves
    column space).
    """
    backend = resolve_backend(backend)
    if isinstance(database, ColumnarDatabase):
        return {
            name: relation.with_backend(backend)
            for name, relation in database.relations.items()
        }
    return {
        relation.name: ColumnarRelation.from_relation(relation, backend)
        for relation in database
    }


@dataclass(frozen=True)
class ColumnarDatabase:
    """A database whose relations never existed as Python tuples.

    The columnar counterpart of :class:`~repro.data.database.Database`
    for the large-``n`` (10^5 - 10^6) generators and benchmarks: it
    exposes exactly the surface the executors consume (``total_bits``,
    ``domain_size``, per-relation lookup) without materialising row
    tuples anywhere.

    Attributes:
        relations: relation name -> :class:`ColumnarRelation`.
        domain_size: the shared domain bound ``n``.
    """

    relations: dict[str, ColumnarRelation]
    domain_size: int

    def __post_init__(self) -> None:
        for relation in self.relations.values():
            if relation.domain_size > self.domain_size:
                raise DataError(
                    f"{relation.name}: domain {relation.domain_size} "
                    f"exceeds database domain {self.domain_size}"
                )

    @classmethod
    def from_relations(
        cls, relations: Iterable[ColumnarRelation]
    ) -> "ColumnarDatabase":
        """Build from columnar relations (domain = the largest seen)."""
        by_name = {relation.name: relation for relation in relations}
        return cls(
            relations=by_name,
            domain_size=max(
                (r.domain_size for r in by_name.values()), default=1
            ),
        )

    def __getitem__(self, name: str) -> ColumnarRelation:
        return self.relations[name]

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __iter__(self) -> Iterator[ColumnarRelation]:
        return iter(self.relations.values())

    def __len__(self) -> int:
        return len(self.relations)

    @property
    def total_bits(self) -> int:
        """Input size ``N`` in bits (drives the capacity bound)."""
        return sum(
            relation.size_bits for relation in self.relations.values()
        )

    def to_database(self) -> "Any":
        """Materialise to a row-oriented :class:`Database` (tests)."""
        from repro.data.database import Database

        return Database(
            relations={
                name: relation.to_relation()
                for name, relation in self.relations.items()
            },
            domain_size=self.domain_size,
        )
