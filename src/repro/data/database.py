"""Relations and database instances with bit accounting (Section 2.1).

A :class:`Relation` is an immutable bag-free set of integer tuples over
domain ``[n] = {1, ..., n}``.  A :class:`Database` maps relation names
to instances and knows its total encoding size ``N`` in bits, which the
MPC simulator uses to enforce the per-round capacity
``O(N / p^{1-eps})``.

Bit accounting follows the paper's convention: a tuple over ``[n]`` of
arity ``a`` costs ``a * ceil(log2 n)`` bits, so a relation with ``n``
tuples costs ``Theta(n log n)`` bits and ``N = O(n log n)`` for a fixed
vocabulary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Iterator, Mapping


class DataError(Exception):
    """Raised for malformed relations or databases."""


def bits_per_value(domain_size: int) -> int:
    """Bits to encode one value of ``[n]``: ``ceil(log2 n)`` (min 1)."""
    if domain_size < 1:
        raise DataError(f"domain size must be >= 1, got {domain_size}")
    return max(1, math.ceil(math.log2(domain_size))) if domain_size > 1 else 1


@dataclass(frozen=True)
class Relation:
    """An immutable relation instance.

    Attributes:
        name: relation symbol.
        arity: number of columns.
        tuples: the rows, as a tuple of int-tuples (deduplicated,
            stored in sorted order for determinism).
        domain_size: the ``n`` such that values lie in ``[1, n]``.
    """

    name: str
    arity: int
    tuples: tuple[tuple[int, ...], ...]
    domain_size: int

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "tuples", tuple(sorted(set(map(tuple, self.tuples))))
        )
        for row in self.tuples:
            if len(row) != self.arity:
                raise DataError(
                    f"{self.name}: tuple {row} has arity {len(row)}, "
                    f"expected {self.arity}"
                )
            for value in row:
                if not 1 <= value <= self.domain_size:
                    raise DataError(
                        f"{self.name}: value {value} outside domain "
                        f"[1, {self.domain_size}]"
                    )

    @classmethod
    def from_tuples(
        cls,
        name: str,
        rows: Iterable[Iterable[int]],
        domain_size: int,
        arity: int | None = None,
    ) -> "Relation":
        """Build a relation, inferring arity from the first row."""
        materialised = tuple(tuple(row) for row in rows)
        if arity is None:
            if not materialised:
                raise DataError(
                    f"{name}: cannot infer arity of an empty relation"
                )
            arity = len(materialised[0])
        return cls(
            name=name,
            arity=arity,
            tuples=materialised,
            domain_size=domain_size,
        )

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self.tuples)

    def __contains__(self, row: object) -> bool:
        return row in self._tuple_set

    @cached_property
    def _tuple_set(self) -> frozenset[tuple[int, ...]]:
        return frozenset(self.tuples)

    @property
    def size_bits(self) -> int:
        """Encoding size: ``len * arity * ceil(log2 n)`` bits."""
        return len(self.tuples) * self.tuple_bits

    @property
    def tuple_bits(self) -> int:
        """Bits per tuple: ``arity * ceil(log2 n)``."""
        return self.arity * bits_per_value(self.domain_size)

    def is_matching(self) -> bool:
        """True when every column is a permutation of ``[1, n]``.

        This is the paper's matching-database invariant (Section 2.5):
        exactly ``n`` tuples and every attribute a key containing each
        value once.
        """
        n = self.domain_size
        if len(self.tuples) != n:
            return False
        expected = set(range(1, n + 1))
        for column in range(self.arity):
            if {row[column] for row in self.tuples} != expected:
                return False
        return True

    def project(self, positions: Iterable[int]) -> tuple[tuple[int, ...], ...]:
        """Project onto 0-based column positions (order preserved)."""
        selected = tuple(positions)
        return tuple(
            tuple(row[i] for i in selected) for row in self.tuples
        )

    def to_columnar(self, backend: str | None = None):
        """This relation as a :class:`repro.data.columnar.ColumnarRelation`."""
        from repro.data.columnar import ColumnarRelation

        return ColumnarRelation.from_relation(self, backend)


@dataclass(frozen=True)
class Database:
    """A database instance: named relations over a common domain.

    Attributes:
        relations: mapping from relation name to :class:`Relation`.
        domain_size: the common domain bound ``n``.
    """

    relations: dict[str, Relation] = field(default_factory=dict)
    domain_size: int = 1

    def __post_init__(self) -> None:
        for name, relation in self.relations.items():
            if relation.name != name:
                raise DataError(
                    f"relation key {name!r} != relation name "
                    f"{relation.name!r}"
                )
            if relation.domain_size != self.domain_size:
                raise DataError(
                    f"{name}: domain {relation.domain_size} != database "
                    f"domain {self.domain_size}"
                )

    @classmethod
    def from_relations(cls, relations: Iterable[Relation]) -> "Database":
        """Build a database; domain size is the max over relations."""
        materialised = list(relations)
        if not materialised:
            raise DataError("database needs at least one relation")
        domain = max(relation.domain_size for relation in materialised)
        rescaled = [
            Relation(
                name=relation.name,
                arity=relation.arity,
                tuples=relation.tuples,
                domain_size=domain,
            )
            for relation in materialised
        ]
        return cls(
            relations={relation.name: relation for relation in rescaled},
            domain_size=domain,
        )

    def __getitem__(self, name: str) -> Relation:
        return self.relations[name]

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self.relations.values())

    @property
    def total_bits(self) -> int:
        """``N``: the total input size in bits."""
        return sum(relation.size_bits for relation in self.relations.values())

    @property
    def total_tuples(self) -> int:
        """Total number of tuples across relations."""
        return sum(len(relation) for relation in self.relations.values())

    def is_matching_database(self) -> bool:
        """True when every relation is a matching (Section 2.5)."""
        return all(
            relation.is_matching() for relation in self.relations.values()
        )

    def restrict(self, names: Iterable[str]) -> "Database":
        """The sub-database containing only the named relations."""
        wanted = set(names)
        missing = wanted - set(self.relations)
        if missing:
            raise DataError(f"unknown relations: {sorted(missing)}")
        return Database(
            relations={
                name: relation
                for name, relation in self.relations.items()
                if name in wanted
            },
            domain_size=self.domain_size,
        )

    def to_columnar(self, backend: str | None = None):
        """All relations columnarised: ``name -> ColumnarRelation``."""
        from repro.data.columnar import columnar_database

        return columnar_database(self, backend)

    def with_relation(self, relation: Relation) -> "Database":
        """A copy with one relation added or replaced."""
        if relation.domain_size != self.domain_size:
            raise DataError(
                f"{relation.name}: domain {relation.domain_size} != "
                f"database domain {self.domain_size}"
            )
        updated = dict(self.relations)
        updated[relation.name] = relation
        return Database(relations=updated, domain_size=self.domain_size)


def as_mapping(database: Database) -> Mapping[str, tuple[tuple[int, ...], ...]]:
    """Plain ``name -> rows`` view used by the local join evaluator."""
    return {
        name: relation.tuples
        for name, relation in database.relations.items()
    }
