"""Input-data substrate: relations, databases and generators.

The paper's input model (Section 2.5) is the *matching database*: every
relation of arity ``a`` is an ``a``-dimensional matching over domain
``[n]`` -- exactly ``n`` tuples, every column a permutation of
``1..n``.  Matching databases are the skew-free worst case on which
both the lower bounds and the HyperCube upper bound are exact.

This package provides:

* :class:`repro.data.database.Relation` / ``Database`` -- immutable
  relation instances with the paper's bit accounting
  (``N = O(n log n)`` bits),
* :mod:`repro.data.matching` -- uniform random matching databases,
* :mod:`repro.data.generators` -- auxiliary inputs: skewed relations,
  the JOIN-WITNESS instances of Proposition 3.12, and the layered /
  dense graphs of the CONNECTED-COMPONENTS experiment (Theorem 4.10),
* :mod:`repro.data.versioned` -- the serving layer's mutating
  database: immutable columnar snapshots behind a monotonically
  increasing version number (the cache-invalidation token).
"""

from repro.data.columnar import ColumnarRelation, columnar_database
from repro.data.database import Database, Relation
from repro.data.versioned import DatabaseDelta, VersionedDatabase
from repro.data.matching import (
    identity_matching,
    matching_database,
    random_matching,
)
from repro.data.generators import (
    dense_graph,
    layered_path_graph,
    skewed_database,
    skewed_relation,
    witness_database,
)

__all__ = [
    "ColumnarRelation",
    "columnar_database",
    "Database",
    "DatabaseDelta",
    "Relation",
    "VersionedDatabase",
    "identity_matching",
    "matching_database",
    "random_matching",
    "dense_graph",
    "layered_path_graph",
    "skewed_database",
    "skewed_relation",
    "witness_database",
]
