"""A mutating columnar database with explicit versioning.

The serving layer executes cached plans repeatedly over a database
that changes between requests.  Cache safety hinges on one question --
"is this the same data the cached artifact was computed from?" -- and
:class:`VersionedDatabase` answers it with a monotonically increasing
integer version: every :meth:`VersionedDatabase.apply_delta` installs
a fresh immutable :class:`~repro.data.columnar.ColumnarDatabase`
snapshot and bumps the version, so any cache entry stamped with an
older version is stale by construction.

Snapshots are immutable and shared: readers mid-request keep the
snapshot they started with; a concurrent update never mutates arrays
under them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.backend import resolve_backend
from repro.data.columnar import (
    ColumnarDatabase,
    ColumnarRelation,
    columnar_database,
)
from repro.data.database import Database, DataError

Rows = Iterable[Sequence[int]]


@dataclass(frozen=True)
class DatabaseDelta:
    """One update's worth of row-level changes.

    Attributes:
        inserts: relation name -> rows to add (new relation names are
            allowed; arity is inferred from the first row).
        deletes: relation name -> rows to remove (absent rows are
            ignored -- deletion is idempotent).
    """

    inserts: Mapping[str, tuple[tuple[int, ...], ...]] = field(
        default_factory=dict
    )
    deletes: Mapping[str, tuple[tuple[int, ...], ...]] = field(
        default_factory=dict
    )

    @classmethod
    def of(
        cls,
        inserts: Mapping[str, Rows] | None = None,
        deletes: Mapping[str, Rows] | None = None,
    ) -> "DatabaseDelta":
        """Normalise loose row iterables into an immutable delta."""
        return cls(
            inserts={
                name: tuple(tuple(row) for row in rows)
                for name, rows in (inserts or {}).items()
            },
            deletes={
                name: tuple(tuple(row) for row in rows)
                for name, rows in (deletes or {}).items()
            },
        )

    @property
    def is_empty(self) -> bool:
        """True when the delta changes nothing."""
        return not any(self.inserts.values()) and not any(
            self.deletes.values()
        )


class VersionedDatabase:
    """A columnar database that mutates through numbered versions.

    Args:
        database: the initial contents -- a row
            :class:`~repro.data.database.Database`, a
            :class:`~repro.data.columnar.ColumnarDatabase`, or a
            mapping of name to
            :class:`~repro.data.columnar.ColumnarRelation`.
        backend: column storage backend; relations are converted once
            here so every later snapshot (and every plan execution
            over it) reads the same arrays.
        initial_version: version number of the initial contents.
            Defaults to 0; a parallel executor process reconstructing
            the parent's database mid-life passes the parent's current
            version so version-stamped results agree across processes.
    """

    def __init__(
        self,
        database: Database | ColumnarDatabase | Mapping[str, ColumnarRelation],
        backend: str | None = None,
        initial_version: int = 0,
    ) -> None:
        self._backend = resolve_backend(backend)
        if isinstance(database, Mapping):
            relations = {
                name: relation.with_backend(self._backend)
                for name, relation in database.items()
            }
        else:
            relations = columnar_database(database, self._backend)
        domain = getattr(database, "domain_size", None)
        if domain is None:
            domain = max(
                (r.domain_size for r in relations.values()), default=1
            )
        self._snapshot = ColumnarDatabase(
            relations=relations, domain_size=domain
        )
        self._version = initial_version

    # -- read side ----------------------------------------------------------

    @property
    def version(self) -> int:
        """The current version number (0 for the initial contents)."""
        return self._version

    @property
    def snapshot(self) -> ColumnarDatabase:
        """The current immutable snapshot (never mutated in place)."""
        return self._snapshot

    @property
    def backend(self) -> str:
        """The resolved column-storage backend."""
        return self._backend

    @property
    def domain_size(self) -> int:
        """The snapshot's domain bound ``n``."""
        return self._snapshot.domain_size

    @property
    def total_bits(self) -> int:
        """The snapshot's input size ``N`` in bits."""
        return self._snapshot.total_bits

    def __getitem__(self, name: str) -> ColumnarRelation:
        return self._snapshot[name]

    def __contains__(self, name: str) -> bool:
        return name in self._snapshot

    def __iter__(self) -> Iterator[ColumnarRelation]:
        return iter(self._snapshot)

    def __len__(self) -> int:
        return len(self._snapshot)

    # -- write side ---------------------------------------------------------

    def apply_delta(self, delta: DatabaseDelta) -> int:
        """Install a new snapshot with the delta applied; bump version.

        Inserts and deletes are applied per relation through the
        standard dedup/sort/validate constructor, so a snapshot always
        satisfies every :class:`ColumnarRelation` invariant.  The
        domain grows automatically when inserted values exceed it
        (which changes per-tuple bit accounting -- another reason the
        version must move).  An empty delta still bumps the version:
        the caller said "the data may have changed", and cache safety
        errs on invalidation.

        Returns:
            The new version number.

        Raises:
            DataError: on ragged insert arities or values below 1.
        """
        relations = dict(self._snapshot.relations)
        domain = self._snapshot.domain_size
        for name in set(delta.inserts) | set(delta.deletes):
            inserts = delta.inserts.get(name, ())
            deletes = {
                tuple(row) for row in delta.deletes.get(name, ())
            }
            existing = relations.get(name)
            if existing is None:
                if not inserts:
                    raise DataError(
                        f"{name}: cannot delete from an unknown relation"
                    )
                rows = []
                arity = len(inserts[0])
            else:
                rows = list(existing.rows())
                arity = existing.arity
            rows = [tuple(row) for row in rows if tuple(row) not in deletes]
            rows.extend(tuple(row) for row in inserts)
            peak = max(
                (value for row in rows for value in row), default=1
            )
            domain = max(domain, peak)
            relation_domain = max(
                existing.domain_size if existing is not None else 1, peak
            )
            relations[name] = ColumnarRelation.from_rows(
                name,
                rows,
                domain_size=relation_domain,
                arity=arity,
                backend=self._backend,
            )
        self._snapshot = ColumnarDatabase(
            relations=relations, domain_size=domain
        )
        self._version += 1
        return self._version

    def update(
        self,
        inserts: Mapping[str, Rows] | None = None,
        deletes: Mapping[str, Rows] | None = None,
    ) -> int:
        """Convenience wrapper: build the delta and apply it."""
        return self.apply_delta(DatabaseDelta.of(inserts, deletes))
