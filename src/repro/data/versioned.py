"""A mutating columnar database with explicit versioning.

The serving layer executes cached plans repeatedly over a database
that changes between requests.  Cache safety hinges on one question --
"is this the same data the cached artifact was computed from?" -- and
:class:`VersionedDatabase` answers it with a monotonically increasing
integer version: every :meth:`VersionedDatabase.apply_delta` installs
a fresh immutable :class:`~repro.data.columnar.ColumnarDatabase`
snapshot and bumps the version, so any cache entry stamped with an
older version is stale by construction.

Snapshots are immutable and shared: readers mid-request keep the
snapshot they started with; a concurrent update never mutates arrays
under them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.backend import resolve_backend
from repro.data.columnar import (
    ColumnarDatabase,
    ColumnarRelation,
    columnar_database,
)
from repro.data.database import Database, DataError

Rows = Iterable[Sequence[int]]


@dataclass(frozen=True)
class DatabaseDelta:
    """One update's worth of row-level changes.

    Edge semantics (pinned by ``tests/data/test_versioned.py``):

    - Deleting an absent row is a no-op -- deletion is idempotent,
      never an error (deleting from an *unknown relation* is an
      error, because the arity cannot be inferred).
    - Duplicate inserts collapse to one row, and inserting a row that
      already exists leaves the relation unchanged (relations are
      sets).
    - When the same row appears in both ``inserts`` and ``deletes``
      of one delta, the insert wins: deletes filter the old snapshot
      first, then inserts are added, so the row is present afterwards.

    Attributes:
        inserts: relation name -> rows to add (new relation names are
            allowed; arity is inferred from the first row).
        deletes: relation name -> rows to remove (absent rows are
            ignored -- deletion is idempotent).
    """

    inserts: Mapping[str, tuple[tuple[int, ...], ...]] = field(
        default_factory=dict
    )
    deletes: Mapping[str, tuple[tuple[int, ...], ...]] = field(
        default_factory=dict
    )

    @classmethod
    def of(
        cls,
        inserts: Mapping[str, Rows] | None = None,
        deletes: Mapping[str, Rows] | None = None,
    ) -> "DatabaseDelta":
        """Normalise loose row iterables into an immutable delta."""
        return cls(
            inserts={
                name: tuple(tuple(row) for row in rows)
                for name, rows in (inserts or {}).items()
            },
            deletes={
                name: tuple(tuple(row) for row in rows)
                for name, rows in (deletes or {}).items()
            },
        )

    @property
    def is_empty(self) -> bool:
        """True when the delta changes nothing."""
        return not any(self.inserts.values()) and not any(
            self.deletes.values()
        )


@dataclass(frozen=True)
class DeltaRecord:
    """The *effective* change one :meth:`~VersionedDatabase.apply_delta`
    made, as provenance between two adjacent snapshot versions.

    Unlike the raw :class:`DatabaseDelta` (whose inserts may already
    exist and whose deletes may be absent), a record stores only rows
    that actually changed membership, so ``new = (old - removed) +
    added`` holds exactly per relation.  Incremental view maintenance
    consumes these to route deltas instead of whole relations.

    Attributes:
        old_version: version the delta was applied to.
        new_version: version it produced (``old_version + 1``).
        added: relation name -> rows newly present.
        removed: relation name -> rows no longer present.
        bits_changed: True when per-tuple bit accounting moved -- a
            relation was created, a relation's domain grew, or the
            database-wide domain grew.  Consumers that patch load
            arithmetic must fall back to full recompute past such a
            record.
    """

    old_version: int
    new_version: int
    added: Mapping[str, frozenset[tuple[int, ...]]]
    removed: Mapping[str, frozenset[tuple[int, ...]]]
    bits_changed: bool

    @property
    def is_noop(self) -> bool:
        """True when no row changed membership (pure version bump)."""
        return not any(self.added.values()) and not any(
            self.removed.values()
        )


#: How many :class:`DeltaRecord` entries a database retains.  Bounded
#: so long-lived services cannot accumulate unbounded provenance; a
#: consumer asking across a trimmed gap simply gets ``None`` and falls
#: back to full recompute.
DELTA_HISTORY_LIMIT = 64


@dataclass(frozen=True)
class ComposedDelta:
    """Net effective change between two (not necessarily adjacent)
    versions, composed from consecutive :class:`DeltaRecord` entries.

    Satisfies ``snapshot(new) = (snapshot(old) - removed) + added``
    per relation, with ``added`` disjoint from ``snapshot(old)`` and
    ``removed`` a subset of it.
    """

    old_version: int
    new_version: int
    added: Mapping[str, frozenset[tuple[int, ...]]]
    removed: Mapping[str, frozenset[tuple[int, ...]]]
    bits_changed: bool

    @property
    def is_noop(self) -> bool:
        """True when the versions hold identical contents."""
        return not any(self.added.values()) and not any(
            self.removed.values()
        )

    def touched(self) -> frozenset[str]:
        """Relations whose contents differ between the versions."""
        return frozenset(
            name
            for name, rows in list(self.added.items())
            + list(self.removed.items())
            if rows
        )

    def change_count(self) -> int:
        """Total rows that changed membership, across relations."""
        return sum(len(rows) for rows in self.added.values()) + sum(
            len(rows) for rows in self.removed.values()
        )


class VersionedDatabase:
    """A columnar database that mutates through numbered versions.

    Args:
        database: the initial contents -- a row
            :class:`~repro.data.database.Database`, a
            :class:`~repro.data.columnar.ColumnarDatabase`, or a
            mapping of name to
            :class:`~repro.data.columnar.ColumnarRelation`.
        backend: column storage backend; relations are converted once
            here so every later snapshot (and every plan execution
            over it) reads the same arrays.
        initial_version: version number of the initial contents.
            Defaults to 0; a parallel executor process reconstructing
            the parent's database mid-life passes the parent's current
            version so version-stamped results agree across processes.
    """

    def __init__(
        self,
        database: Database | ColumnarDatabase | Mapping[str, ColumnarRelation],
        backend: str | None = None,
        initial_version: int = 0,
    ) -> None:
        self._backend = resolve_backend(backend)
        if isinstance(database, Mapping):
            relations = {
                name: relation.with_backend(self._backend)
                for name, relation in database.items()
            }
        else:
            relations = columnar_database(database, self._backend)
        domain = getattr(database, "domain_size", None)
        if domain is None:
            domain = max(
                (r.domain_size for r in relations.values()), default=1
            )
        self._snapshot = ColumnarDatabase(
            relations=relations, domain_size=domain
        )
        self._version = initial_version
        self._history: deque[DeltaRecord] = deque(
            maxlen=DELTA_HISTORY_LIMIT
        )

    # -- read side ----------------------------------------------------------

    @property
    def version(self) -> int:
        """The current version number (0 for the initial contents)."""
        return self._version

    @property
    def snapshot(self) -> ColumnarDatabase:
        """The current immutable snapshot (never mutated in place)."""
        return self._snapshot

    @property
    def backend(self) -> str:
        """The resolved column-storage backend."""
        return self._backend

    @property
    def domain_size(self) -> int:
        """The snapshot's domain bound ``n``."""
        return self._snapshot.domain_size

    @property
    def total_bits(self) -> int:
        """The snapshot's input size ``N`` in bits."""
        return self._snapshot.total_bits

    def __getitem__(self, name: str) -> ColumnarRelation:
        return self._snapshot[name]

    def __contains__(self, name: str) -> bool:
        return name in self._snapshot

    def __iter__(self) -> Iterator[ColumnarRelation]:
        return iter(self._snapshot)

    def __len__(self) -> int:
        return len(self._snapshot)

    # -- write side ---------------------------------------------------------

    def apply_delta(self, delta: DatabaseDelta) -> int:
        """Install a new snapshot with the delta applied; bump version.

        Inserts and deletes are applied per relation through the
        standard dedup/sort/validate constructor, so a snapshot always
        satisfies every :class:`ColumnarRelation` invariant.  The
        domain grows automatically when inserted values exceed it
        (which changes per-tuple bit accounting -- another reason the
        version must move).  An empty delta still bumps the version:
        the caller said "the data may have changed", and cache safety
        errs on invalidation.

        Returns:
            The new version number.

        Raises:
            DataError: on ragged insert arities or values below 1.
        """
        relations = dict(self._snapshot.relations)
        domain = self._snapshot.domain_size
        added: dict[str, frozenset[tuple[int, ...]]] = {}
        removed: dict[str, frozenset[tuple[int, ...]]] = {}
        bits_changed = False
        for name in set(delta.inserts) | set(delta.deletes):
            inserts = delta.inserts.get(name, ())
            deletes = {
                tuple(row) for row in delta.deletes.get(name, ())
            }
            existing = relations.get(name)
            if existing is None:
                if not inserts:
                    raise DataError(
                        f"{name}: cannot delete from an unknown relation"
                    )
                rows = []
                arity = len(inserts[0])
                bits_changed = True
            else:
                rows = list(existing.rows())
                arity = existing.arity
            old_rows = {tuple(row) for row in rows}
            insert_rows = {tuple(row) for row in inserts}
            rows = [tuple(row) for row in rows if tuple(row) not in deletes]
            rows.extend(tuple(row) for row in inserts)
            peak = max(
                (value for row in rows for value in row), default=1
            )
            domain = max(domain, peak)
            relation_domain = max(
                existing.domain_size if existing is not None else 1, peak
            )
            if (
                existing is not None
                and relation_domain != existing.domain_size
            ):
                bits_changed = True
            relations[name] = ColumnarRelation.from_rows(
                name,
                rows,
                domain_size=relation_domain,
                arity=arity,
                backend=self._backend,
            )
            effective_added = frozenset(insert_rows - old_rows)
            effective_removed = frozenset(
                row
                for row in deletes
                if row in old_rows and row not in insert_rows
            )
            if effective_added:
                added[name] = effective_added
            if effective_removed:
                removed[name] = effective_removed
        if domain != self._snapshot.domain_size:
            bits_changed = True
        self._snapshot = ColumnarDatabase(
            relations=relations, domain_size=domain
        )
        record = DeltaRecord(
            old_version=self._version,
            new_version=self._version + 1,
            added=added,
            removed=removed,
            bits_changed=bits_changed,
        )
        self._history.append(record)
        self._version += 1
        return self._version

    # -- provenance ---------------------------------------------------------

    @property
    def last_record(self) -> DeltaRecord | None:
        """The provenance record of the most recent delta, if any."""
        return self._history[-1] if self._history else None

    def delta_between(
        self, old_version: int, new_version: int
    ) -> ComposedDelta | None:
        """Net effective change from one version to a later one.

        Composes the retained per-version :class:`DeltaRecord` chain.
        Returns ``None`` when the span is not fully covered by history
        (too old, trimmed, or from a foreign version) -- callers must
        then treat the old version's derived state as unusable.
        """
        if old_version > new_version or new_version > self._version:
            return None
        records = [
            record
            for record in self._history
            if old_version < record.new_version <= new_version
        ]
        if len(records) != new_version - old_version:
            return None
        added: dict[str, set[tuple[int, ...]]] = {}
        removed: dict[str, set[tuple[int, ...]]] = {}
        bits_changed = False
        for record in records:
            bits_changed = bits_changed or record.bits_changed
            for name in set(record.added) | set(record.removed):
                step_added = record.added.get(name, frozenset())
                step_removed = record.removed.get(name, frozenset())
                net_added = added.setdefault(name, set())
                net_removed = removed.setdefault(name, set())
                # Relative to the *old* snapshot: a row removed now
                # either undoes a prior add or is a genuine removal;
                # a row added now either undoes a prior removal or is
                # a genuine addition.
                next_added = (net_added - step_removed) | (
                    step_added - net_removed
                )
                next_removed = (
                    net_removed | (step_removed - net_added)
                ) - step_added
                added[name] = next_added
                removed[name] = next_removed
        return ComposedDelta(
            old_version=old_version,
            new_version=new_version,
            added={
                name: frozenset(rows) for name, rows in added.items()
            },
            removed={
                name: frozenset(rows) for name, rows in removed.items()
            },
            bits_changed=bits_changed,
        )

    def update(
        self,
        inserts: Mapping[str, Rows] | None = None,
        deletes: Mapping[str, Rows] | None = None,
    ) -> int:
        """Convenience wrapper: build the delta and apply it."""
        return self.apply_delta(DatabaseDelta.of(inserts, deletes))
