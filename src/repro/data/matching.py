"""Uniform random matching databases (Section 2.5).

An ``a``-dimensional matching over ``[n]`` has exactly ``n`` tuples and
every column is a permutation of ``1..n``; for ``a = 2`` an instance is
a permutation, for ``a = 3`` a set of ``n`` node-disjoint triangles.
There are exactly ``(n!)^(a-1)`` such matchings, and
:func:`random_matching` draws uniformly from them by fixing the first
column to ``1..n`` (every matching has a unique such presentation) and
sampling ``a - 1`` independent uniform permutations for the remaining
columns.

These are the paper's lower-bound *and* upper-bound inputs: skew-free
by construction, with ``E[|q(I)|] = n^(1 + chi(q))`` (Lemma 3.4).
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.core.query import ConjunctiveQuery
from repro.data.database import Database, DataError, Relation


def random_permutation(n: int, rng: random.Random) -> list[int]:
    """A uniform permutation of ``[1, n]`` (Fisher-Yates via shuffle)."""
    values = list(range(1, n + 1))
    rng.shuffle(values)
    return values


def random_matching(
    name: str, arity: int, n: int, rng: random.Random
) -> Relation:
    """A uniform random ``arity``-dimensional matching over ``[n]``.

    Args:
        name: relation symbol for the instance.
        arity: number of columns (>= 1).
        n: domain size; the matching has exactly ``n`` tuples.
        rng: source of randomness (seeded for reproducibility).
    """
    if arity < 1:
        raise DataError(f"{name}: arity must be >= 1, got {arity}")
    if n < 1:
        raise DataError(f"{name}: domain size must be >= 1, got {n}")
    columns = [list(range(1, n + 1))]
    for _ in range(arity - 1):
        columns.append(random_permutation(n, rng))
    rows = tuple(
        tuple(column[i] for column in columns) for i in range(n)
    )
    return Relation(name=name, arity=arity, tuples=rows, domain_size=n)


def identity_matching(name: str, arity: int, n: int) -> Relation:
    """The identity matching ``{(1,..,1), (2,..,2), ...}``.

    Used by the retraction argument of Lemma 4.12 and by
    Proposition 4.7's reduction (pad a subquery's instance with
    identity permutations for the removed atoms).
    """
    rows = tuple(tuple([i] * arity) for i in range(1, n + 1))
    return Relation(name=name, arity=arity, tuples=rows, domain_size=n)


def matching_database(
    query: ConjunctiveQuery,
    n: int,
    rng: random.Random | int | None = None,
    identity_atoms: Iterable[str] = (),
) -> Database:
    """A uniform random matching database for a query's vocabulary.

    Each atom ``S_j`` of arity ``a_j`` receives an independent uniform
    ``a_j``-dimensional matching; atoms listed in ``identity_atoms``
    receive the identity matching instead.

    Args:
        query: fixes the vocabulary (names and arities).
        n: the domain size.
        rng: a :class:`random.Random`, an int seed, or None (seed 0).
        identity_atoms: atom names to instantiate with identities.
    """
    if isinstance(rng, int) or rng is None:
        rng = random.Random(rng or 0)
    identity = set(identity_atoms)
    relations = []
    for atom in query.atoms:
        if atom.name in identity:
            relations.append(identity_matching(atom.name, atom.arity, n))
        else:
            relations.append(random_matching(atom.name, atom.arity, n, rng))
    return Database(
        relations={relation.name: relation for relation in relations},
        domain_size=n,
    )
