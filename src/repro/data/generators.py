"""Auxiliary input generators for the paper's experiments.

* :func:`skewed_relation` -- Zipf-like skew, used to contrast the
  matching-database assumption (the paper defers skew to [17], we keep
  a generator so tests can show where HC's load guarantee needs the
  skew-free assumption).
* :func:`skewed_database` -- one skewed relation per query atom (heavy
  hitter on the first attribute), the input family of the
  ``repro skew`` command and the skew-aware parity/speedup suites.
* :func:`witness_database` -- the Proposition 3.12 instances:
  ``R(w), S1(w,x), S2(x,y), S3(y,z), T(z)`` with ``S_i`` matchings and
  ``R, T`` uniform subsets of size ``ceil(sqrt(n))``.
* :func:`layered_path_graph` -- Theorem 4.10's hard instances for
  CONNECTED-COMPONENTS: ``k + 1`` layers of ``n_layer`` vertices with a
  random perfect matching between adjacent layers, so each component is
  a path of length ``k`` -- one per tuple of the corresponding ``L_k``.
* :func:`dense_graph` -- dense random graphs for the contrast with the
  two-round algorithm of Karloff et al. [16].
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.query import ConjunctiveQuery
from repro.data.database import Database, DataError, Relation
from repro.data.matching import random_matching, random_permutation


def skewed_relation(
    name: str,
    n: int,
    rng: random.Random,
    heavy_fraction: float = 0.5,
) -> Relation:
    """A binary relation where one value is ``heavy``: it appears in a
    ``heavy_fraction`` share of first-column positions.

    Not a matching: demonstrates load imbalance under HC hashing.
    """
    if not 0 <= heavy_fraction <= 1:
        raise DataError(f"heavy_fraction must be in [0,1], got {heavy_fraction}")
    heavy_count = int(n * heavy_fraction)
    rows = []
    for i in range(1, n + 1):
        left = 1 if i <= heavy_count else rng.randint(1, n)
        rows.append((left, rng.randint(1, n)))
    return Relation.from_tuples(name, rows, domain_size=n, arity=2)


def skewed_database(
    query: ConjunctiveQuery,
    n: int,
    rng: random.Random | int | None = None,
    heavy_fraction: float = 0.5,
) -> Database:
    """A skewed instance for every relation of a query.

    Each relation gets ``n`` rows whose *first* attribute funnels a
    ``heavy_fraction`` share of rows into the value ``1`` (the heavy
    hitter); every other position is uniform in ``[1, n]``.  The
    result violates the matching assumption on every join attribute in
    first position -- the adversarial regime the skew-aware executor
    (and the ``repro skew`` CLI command) is built for.
    """
    if not 0 <= heavy_fraction <= 1:
        raise DataError(
            f"heavy_fraction must be in [0,1], got {heavy_fraction}"
        )
    if isinstance(rng, int) or rng is None:
        rng = random.Random(rng or 0)
    heavy_count = int(n * heavy_fraction)
    relations = []
    for atom in query.atoms:
        rows = []
        for i in range(1, n + 1):
            first = 1 if i <= heavy_count else rng.randint(1, n)
            rows.append(
                (first,)
                + tuple(rng.randint(1, n) for _ in range(atom.arity - 1))
            )
        relations.append(
            Relation.from_tuples(
                atom.name, rows, domain_size=n, arity=atom.arity
            )
        )
    return Database.from_relations(relations)


def witness_database(n: int, rng: random.Random | int | None = None) -> Database:
    """Proposition 3.12's input family.

    ``S1, S2, S3`` are uniform 2-dimensional matchings; ``R`` and ``T``
    are uniform random subsets of ``[n]`` of size ``ceil(sqrt(n))``,
    stored as unary relations.  The expected number of query answers is
    1, making JOIN-WITNESS a needle-in-a-haystack problem.
    """
    if isinstance(rng, int) or rng is None:
        rng = random.Random(rng or 0)
    size = math.ceil(math.sqrt(n))
    r_values = rng.sample(range(1, n + 1), size)
    t_values = rng.sample(range(1, n + 1), size)
    relations = [
        Relation.from_tuples(
            "R", [(v,) for v in r_values], domain_size=n, arity=1
        ),
        random_matching("S1", 2, n, rng),
        random_matching("S2", 2, n, rng),
        random_matching("S3", 2, n, rng),
        Relation.from_tuples(
            "T", [(v,) for v in t_values], domain_size=n, arity=1
        ),
    ]
    return Database(
        relations={relation.name: relation for relation in relations},
        domain_size=n,
    )


@dataclass(frozen=True)
class GraphInstance:
    """An undirected graph with ground-truth component labels.

    Attributes:
        num_vertices: vertices are ``1..num_vertices``.
        edges: undirected edges as ``(u, v)`` with ``u < v``.
        labels: ground truth: ``labels[v]`` is the smallest vertex in
            the component of ``v`` (the canonical component id).
    """

    num_vertices: int
    edges: tuple[tuple[int, int], ...]
    labels: dict[int, int]

    @property
    def num_components(self) -> int:
        """Number of connected components."""
        return len(set(self.labels.values()))

    def edge_relation(self, domain_size: int | None = None) -> Relation:
        """The edge set as a binary relation ``E`` (both orientations)."""
        n = domain_size or self.num_vertices
        rows = [(u, v) for u, v in self.edges] + [
            (v, u) for u, v in self.edges
        ]
        return Relation.from_tuples("E", rows, domain_size=n, arity=2)


def _component_labels(
    num_vertices: int, edges: list[tuple[int, int]]
) -> dict[int, int]:
    """Union-find ground truth, labelling by the component minimum."""
    parent = list(range(num_vertices + 1))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[max(ru, rv)] = min(ru, rv)
    return {v: find(v) for v in range(1, num_vertices + 1)}


def layered_path_graph(
    num_layers: int,
    layer_size: int,
    rng: random.Random | int | None = None,
) -> GraphInstance:
    """Theorem 4.10's hard instance: paths threaded through layers.

    Vertices split into ``num_layers + 1`` layers ``P_1..P_{k+1}`` of
    ``layer_size`` vertices each; a uniform random perfect matching
    joins adjacent layers.  Every component is a path visiting one
    vertex per layer, so component discovery is exactly the ``L_k``
    join of the ``k`` inter-layer permutations.

    Args:
        num_layers: the path length ``k`` (>= 1).
        layer_size: vertices per layer (the ``n/(k+1)`` of the paper).
        rng: seed or generator.
    """
    if num_layers < 1:
        raise DataError(f"need num_layers >= 1, got {num_layers}")
    if layer_size < 1:
        raise DataError(f"need layer_size >= 1, got {layer_size}")
    if isinstance(rng, int) or rng is None:
        rng = random.Random(rng or 0)

    def vertex(layer: int, index: int) -> int:
        return layer * layer_size + index + 1

    edges: list[tuple[int, int]] = []
    for layer in range(num_layers):
        permutation = random_permutation(layer_size, rng)
        for index in range(layer_size):
            u = vertex(layer, index)
            v = vertex(layer + 1, permutation[index] - 1)
            edges.append((min(u, v), max(u, v)))
    num_vertices = (num_layers + 1) * layer_size
    return GraphInstance(
        num_vertices=num_vertices,
        edges=tuple(sorted(set(edges))),
        labels=_component_labels(num_vertices, edges),
    )


def dense_graph(
    num_vertices: int,
    num_edges: int,
    rng: random.Random | int | None = None,
) -> GraphInstance:
    """A uniform random graph with ``num_edges`` distinct edges.

    Dense inputs (``num_edges >> num_vertices``) are where the
    two-round spanning-forest algorithm of [16] applies; used as the
    contrast case in the CONNECTED-COMPONENTS experiment.
    """
    if num_vertices < 2:
        raise DataError(f"need >= 2 vertices, got {num_vertices}")
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges > max_edges:
        raise DataError(
            f"{num_edges} edges > maximum {max_edges} for "
            f"{num_vertices} vertices"
        )
    if isinstance(rng, int) or rng is None:
        rng = random.Random(rng or 0)
    edges: set[tuple[int, int]] = set()
    while len(edges) < num_edges:
        u = rng.randint(1, num_vertices)
        v = rng.randint(1, num_vertices)
        if u == v:
            continue
        edges.add((min(u, v), max(u, v)))
    edge_list = sorted(edges)
    return GraphInstance(
        num_vertices=num_vertices,
        edges=tuple(edge_list),
        labels=_component_labels(num_vertices, edge_list),
    )
