"""Auxiliary input generators for the paper's experiments.

* :func:`skewed_relation` -- Zipf-like skew, used to contrast the
  matching-database assumption (the paper defers skew to [17], we keep
  a generator so tests can show where HC's load guarantee needs the
  skew-free assumption).
* :func:`skewed_database` -- one skewed relation per query atom (heavy
  hitter on the first attribute), the input family of the
  ``repro skew`` command and the skew-aware parity/speedup suites.
* :func:`witness_database` -- the Proposition 3.12 instances:
  ``R(w), S1(w,x), S2(x,y), S3(y,z), T(z)`` with ``S_i`` matchings and
  ``R, T`` uniform subsets of size ``ceil(sqrt(n))``.
* :func:`layered_path_graph` -- Theorem 4.10's hard instances for
  CONNECTED-COMPONENTS: ``k + 1`` layers of ``n_layer`` vertices with a
  random perfect matching between adjacent layers, so each component is
  a path of length ``k`` -- one per tuple of the corresponding ``L_k``.
* :func:`dense_graph` -- dense random graphs for the contrast with the
  two-round algorithm of Karloff et al. [16].
* :func:`matching_database_columnar` / :func:`skewed_database_columnar`
  -- the large-``n`` (10^5 - 10^6) generators: columns are built
  directly as int64 arrays (uniform fills in bounded chunks), so no
  Python tuple is ever materialised and peak memory stays within a
  small constant of the output size.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.backend import NUMPY, require_numpy, resolve_backend
from repro.core.query import ConjunctiveQuery
from repro.data.columnar import ColumnarDatabase, ColumnarRelation
from repro.data.database import Database, DataError, Relation
from repro.data.matching import random_matching, random_permutation

# Chunk size (rows) for the large-n generators' random fills: bounds
# transient allocations without affecting the generated values.
GENERATOR_CHUNK_ROWS = 1 << 18


def skewed_relation(
    name: str,
    n: int,
    rng: random.Random,
    heavy_fraction: float = 0.5,
) -> Relation:
    """A binary relation where one value is ``heavy``: it appears in a
    ``heavy_fraction`` share of first-column positions.

    Not a matching: demonstrates load imbalance under HC hashing.
    """
    if not 0 <= heavy_fraction <= 1:
        raise DataError(f"heavy_fraction must be in [0,1], got {heavy_fraction}")
    heavy_count = int(n * heavy_fraction)
    rows = []
    for i in range(1, n + 1):
        left = 1 if i <= heavy_count else rng.randint(1, n)
        rows.append((left, rng.randint(1, n)))
    return Relation.from_tuples(name, rows, domain_size=n, arity=2)


def skewed_database(
    query: ConjunctiveQuery,
    n: int,
    rng: random.Random | int | None = None,
    heavy_fraction: float = 0.5,
) -> Database:
    """A skewed instance for every relation of a query.

    Each relation gets ``n`` rows whose *first* attribute funnels a
    ``heavy_fraction`` share of rows into the value ``1`` (the heavy
    hitter); every other position is uniform in ``[1, n]``.  The
    result violates the matching assumption on every join attribute in
    first position -- the adversarial regime the skew-aware executor
    (and the ``repro skew`` CLI command) is built for.
    """
    if not 0 <= heavy_fraction <= 1:
        raise DataError(
            f"heavy_fraction must be in [0,1], got {heavy_fraction}"
        )
    if isinstance(rng, int) or rng is None:
        rng = random.Random(rng or 0)
    heavy_count = int(n * heavy_fraction)
    relations = []
    for atom in query.atoms:
        rows = []
        for i in range(1, n + 1):
            first = 1 if i <= heavy_count else rng.randint(1, n)
            rows.append(
                (first,)
                + tuple(rng.randint(1, n) for _ in range(atom.arity - 1))
            )
        relations.append(
            Relation.from_tuples(
                atom.name, rows, domain_size=n, arity=atom.arity
            )
        )
    return Database.from_relations(relations)


def matching_database_columnar(
    query: ConjunctiveQuery,
    n: int,
    seed: int = 0,
    backend: str | None = None,
) -> ColumnarDatabase:
    """A uniform matching database built straight into columns.

    The large-``n`` counterpart of
    :func:`repro.data.matching.matching_database`: each atom's
    relation is one ascending first column plus ``arity - 1``
    independent uniform permutations, written directly as int64 arrays
    -- no Python tuples, no per-row loop, already lexicographically
    sorted and duplicate-free (the first column is strictly
    increasing), so construction is O(n) memory with a small constant.

    Draws come from ``numpy.random.default_rng`` (seeded), so
    instances are reproducible but *not* equal to the row generator's
    for the same seed.

    Args:
        query: fixes the vocabulary (names and arities).
        n: the domain size (= tuples per relation).
        seed: generator seed.
        backend: ``"numpy"`` (default via ``"auto"``) or ``"pure"``
            (columns become Python lists; for parity tests at small
            ``n`` only).
    """
    backend = resolve_backend(backend or "auto")
    numpy = require_numpy()
    rng = numpy.random.default_rng(seed)
    relations = []
    for atom in query.atoms:
        columns = [numpy.arange(1, n + 1, dtype=numpy.int64)]
        for _ in range(atom.arity - 1):
            columns.append(
                rng.permutation(n).astype(numpy.int64) + 1
            )
        relations.append(
            _columnar_relation(atom.name, tuple(columns), n, backend)
        )
    return ColumnarDatabase.from_relations(relations)


def skewed_database_columnar(
    query: ConjunctiveQuery,
    n: int,
    seed: int = 0,
    heavy_fraction: float = 0.5,
    backend: str | None = None,
    chunk_rows: int = GENERATOR_CHUNK_ROWS,
) -> ColumnarDatabase:
    """A skewed instance per atom, generated chunk-wise into columns.

    The large-``n`` counterpart of :func:`skewed_database`: a
    ``heavy_fraction`` share of each relation's first column is the
    heavy value ``1``, every other position is uniform in ``[1, n]``.
    Uniform fills happen in ``chunk_rows``-row slices of preallocated
    arrays, so transient memory stays bounded regardless of ``n``;
    rows are then deduplicated and sorted in one vectorized pass
    (mirroring :class:`~repro.data.database.Relation` semantics).

    Args:
        query: fixes the vocabulary.
        n: rows generated per relation (before dedup).
        seed: generator seed.
        heavy_fraction: share of first-column positions set to ``1``.
        backend: ``"numpy"`` (default via ``"auto"``) or ``"pure"``.
        chunk_rows: rows filled per chunk (memory bound knob).
    """
    if not 0 <= heavy_fraction <= 1:
        raise DataError(
            f"heavy_fraction must be in [0,1], got {heavy_fraction}"
        )
    if chunk_rows < 1:
        raise DataError(f"chunk_rows must be >= 1, got {chunk_rows}")
    backend = resolve_backend(backend or "auto")
    numpy = require_numpy()
    root = numpy.random.SeedSequence(seed)
    heavy_count = int(n * heavy_fraction)
    relations = []
    for atom_sequence, atom in zip(
        root.spawn(len(query.atoms)), query.atoms
    ):
        columns = [
            numpy.empty(n, dtype=numpy.int64)
            for _ in range(atom.arity)
        ]
        columns[0][:heavy_count] = 1
        # One independent stream per column, drawn sequentially in
        # chunks: the generated instance is invariant under
        # ``chunk_rows`` (the knob only bounds transient memory).
        streams = [
            numpy.random.default_rng(column_sequence)
            for column_sequence in atom_sequence.spawn(atom.arity)
        ]
        for start in range(0, n, chunk_rows):
            end = min(start + chunk_rows, n)
            for position, column in enumerate(columns):
                fill_start = max(start, heavy_count) if position == 0 else start
                if fill_start < end:
                    column[fill_start:end] = streams[position].integers(
                        1, n + 1, size=end - fill_start, dtype=numpy.int64
                    )
        table = numpy.unique(numpy.column_stack(columns), axis=0)
        sorted_columns = tuple(
            numpy.ascontiguousarray(table[:, position])
            for position in range(atom.arity)
        )
        relations.append(
            _columnar_relation(atom.name, sorted_columns, n, backend)
        )
    return ColumnarDatabase.from_relations(relations)


def _columnar_relation(
    name: str, columns: tuple, n: int, backend: str
) -> ColumnarRelation:
    """Wrap generated int64 columns (already sorted+unique) directly."""
    if backend != NUMPY:
        columns = tuple(column.tolist() for column in columns)
    return ColumnarRelation(
        name=name,
        arity=len(columns),
        columns=columns,
        domain_size=n,
        backend=backend,
    )


def witness_database(n: int, rng: random.Random | int | None = None) -> Database:
    """Proposition 3.12's input family.

    ``S1, S2, S3`` are uniform 2-dimensional matchings; ``R`` and ``T``
    are uniform random subsets of ``[n]`` of size ``ceil(sqrt(n))``,
    stored as unary relations.  The expected number of query answers is
    1, making JOIN-WITNESS a needle-in-a-haystack problem.
    """
    if isinstance(rng, int) or rng is None:
        rng = random.Random(rng or 0)
    size = math.ceil(math.sqrt(n))
    r_values = rng.sample(range(1, n + 1), size)
    t_values = rng.sample(range(1, n + 1), size)
    relations = [
        Relation.from_tuples(
            "R", [(v,) for v in r_values], domain_size=n, arity=1
        ),
        random_matching("S1", 2, n, rng),
        random_matching("S2", 2, n, rng),
        random_matching("S3", 2, n, rng),
        Relation.from_tuples(
            "T", [(v,) for v in t_values], domain_size=n, arity=1
        ),
    ]
    return Database(
        relations={relation.name: relation for relation in relations},
        domain_size=n,
    )


@dataclass(frozen=True)
class GraphInstance:
    """An undirected graph with ground-truth component labels.

    Attributes:
        num_vertices: vertices are ``1..num_vertices``.
        edges: undirected edges as ``(u, v)`` with ``u < v``.
        labels: ground truth: ``labels[v]`` is the smallest vertex in
            the component of ``v`` (the canonical component id).
    """

    num_vertices: int
    edges: tuple[tuple[int, int], ...]
    labels: dict[int, int]

    @property
    def num_components(self) -> int:
        """Number of connected components."""
        return len(set(self.labels.values()))

    def edge_relation(self, domain_size: int | None = None) -> Relation:
        """The edge set as a binary relation ``E`` (both orientations)."""
        n = domain_size or self.num_vertices
        rows = [(u, v) for u, v in self.edges] + [
            (v, u) for u, v in self.edges
        ]
        return Relation.from_tuples("E", rows, domain_size=n, arity=2)


def _component_labels(
    num_vertices: int, edges: list[tuple[int, int]]
) -> dict[int, int]:
    """Union-find ground truth, labelling by the component minimum."""
    parent = list(range(num_vertices + 1))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in edges:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[max(ru, rv)] = min(ru, rv)
    return {v: find(v) for v in range(1, num_vertices + 1)}


def layered_path_graph(
    num_layers: int,
    layer_size: int,
    rng: random.Random | int | None = None,
) -> GraphInstance:
    """Theorem 4.10's hard instance: paths threaded through layers.

    Vertices split into ``num_layers + 1`` layers ``P_1..P_{k+1}`` of
    ``layer_size`` vertices each; a uniform random perfect matching
    joins adjacent layers.  Every component is a path visiting one
    vertex per layer, so component discovery is exactly the ``L_k``
    join of the ``k`` inter-layer permutations.

    Args:
        num_layers: the path length ``k`` (>= 1).
        layer_size: vertices per layer (the ``n/(k+1)`` of the paper).
        rng: seed or generator.
    """
    if num_layers < 1:
        raise DataError(f"need num_layers >= 1, got {num_layers}")
    if layer_size < 1:
        raise DataError(f"need layer_size >= 1, got {layer_size}")
    if isinstance(rng, int) or rng is None:
        rng = random.Random(rng or 0)

    def vertex(layer: int, index: int) -> int:
        return layer * layer_size + index + 1

    edges: list[tuple[int, int]] = []
    for layer in range(num_layers):
        permutation = random_permutation(layer_size, rng)
        for index in range(layer_size):
            u = vertex(layer, index)
            v = vertex(layer + 1, permutation[index] - 1)
            edges.append((min(u, v), max(u, v)))
    num_vertices = (num_layers + 1) * layer_size
    return GraphInstance(
        num_vertices=num_vertices,
        edges=tuple(sorted(set(edges))),
        labels=_component_labels(num_vertices, edges),
    )


def dense_graph(
    num_vertices: int,
    num_edges: int,
    rng: random.Random | int | None = None,
) -> GraphInstance:
    """A uniform random graph with ``num_edges`` distinct edges.

    Dense inputs (``num_edges >> num_vertices``) are where the
    two-round spanning-forest algorithm of [16] applies; used as the
    contrast case in the CONNECTED-COMPONENTS experiment.
    """
    if num_vertices < 2:
        raise DataError(f"need >= 2 vertices, got {num_vertices}")
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges > max_edges:
        raise DataError(
            f"{num_edges} edges > maximum {max_edges} for "
            f"{num_vertices} vertices"
        )
    if isinstance(rng, int) or rng is None:
        rng = random.Random(rng or 0)
    edges: set[tuple[int, int]] = set()
    while len(edges) < num_edges:
        u = rng.randint(1, num_vertices)
        v = rng.randint(1, num_vertices)
        if u == v:
            continue
        edges.add((min(u, v), max(u, v)))
    edge_list = sorted(edges)
    return GraphInstance(
        num_vertices=num_vertices,
        edges=tuple(edge_list),
        labels=_component_labels(num_vertices, edge_list),
    )
