"""Experiment harness: regenerate every table and figure of the paper.

* :mod:`repro.analysis.tables` -- Table 1 (query-family analysis) and
  Table 2 (rounds/space tradeoffs), recomputed from the generic LP and
  plan machinery and checked against the paper's closed forms.
* :mod:`repro.analysis.experiments` -- parameter sweeps behind the
  measured experiments (E4-E9 in DESIGN.md): HC load scaling, the
  one-round answer-fraction decay, multi-round round counts, connected
  components, JOIN-WITNESS and the cartesian-grid tradeoff.
* :mod:`repro.analysis.reporting` -- fixed-width table rendering for
  benchmark output.
"""

from repro.analysis.figures import ascii_curve, fit_power_law, slope_matches
from repro.analysis.reporting import format_table
from repro.analysis.tables import table1_rows, table2_rows
from repro.analysis.experiments import (
    sweep_cartesian_tradeoff,
    sweep_components_rounds,
    sweep_hc_load,
    sweep_multiround_rounds,
    sweep_one_round_fraction,
    sweep_witness,
)

__all__ = [
    "ascii_curve",
    "fit_power_law",
    "slope_matches",
    "format_table",
    "table1_rows",
    "table2_rows",
    "sweep_cartesian_tradeoff",
    "sweep_components_rounds",
    "sweep_hc_load",
    "sweep_multiround_rounds",
    "sweep_one_round_fraction",
    "sweep_witness",
]
