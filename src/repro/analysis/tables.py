"""Regenerate Table 1 and Table 2 of the paper from first principles.

Every cell is *recomputed*: ``tau*`` and the covers come from the exact
LP solver, the characteristic from the hypergraph, expected answer
sizes from measured random matching databases, and round counts from
the actual plan builder -- then cross-checked against the paper's
closed forms stored in :mod:`repro.core.families`.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass
from fractions import Fraction

from repro.algorithms.localjoin import evaluate_query
from repro.core.bounds import k_eps, round_upper_bound
from repro.core.covers import analyze_covers
from repro.core.families import (
    FamilyFacts,
    binomial_facts,
    cycle_facts,
    line_facts,
    spider_facts,
    star_facts,
)
from repro.core.plans import build_plan
from repro.core.query import ConjunctiveQuery
from repro.core.shares import share_exponents
from repro.data.matching import matching_database


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1, computed and cross-checked.

    Attributes:
        name: the query family instance (e.g. ``C3``).
        expected_answer_size: the paper's analytic
            ``E[|q(I)|] = n^{1+chi}``, at the given ``n``.
        measured_answer_size: mean measured ``|q(I)|`` over trials.
        vertex_cover: the computed minimum fractional vertex cover.
        share_exponents: the computed optimal share exponents.
        tau_star: the computed fractional covering number.
        space_exponent: the computed ``1 - 1/tau*``.
        matches_paper: True when every computed quantity equals the
            family's closed form.
    """

    name: str
    expected_answer_size: float
    measured_answer_size: float
    vertex_cover: dict[str, Fraction]
    share_exponents: dict[str, Fraction]
    tau_star: Fraction
    space_exponent: Fraction
    matches_paper: bool


def _check_row(facts: FamilyFacts, analysis, shares) -> bool:
    """A computed row matches when tau*, eps and the cover value agree.

    (The LP may return a different optimal cover vertex than the
    paper's canonical one; equality of the *objective* and feasibility
    at value tau* are the meaningful checks.)
    """
    cover_value = sum(analysis.vertex_cover.values(), start=Fraction(0))
    share_total = sum(shares.values(), start=Fraction(0))
    return (
        analysis.tau_star == facts.tau_star
        and analysis.space_exponent == facts.space_exp
        and cover_value == facts.tau_star
        and share_total == 1
    )


def table1_rows(
    n: int = 200, trials: int = 10, seed: int = 0
) -> list[Table1Row]:
    """Compute Table 1 for the paper's four families.

    Uses ``C_3, C_4, T_3, L_3, L_4, B_{3,2}, B_{4,3}`` as concrete
    instances (the table's families at small sizes).
    """
    instances = [
        cycle_facts(3),
        cycle_facts(4),
        star_facts(3),
        line_facts(3),
        line_facts(4),
        binomial_facts(3, 2),
        binomial_facts(4, 3),
    ]
    rows = []
    rng = random.Random(seed)
    for facts in instances:
        query = facts.query
        analysis = analyze_covers(query)
        shares = share_exponents(query, analysis.vertex_cover)
        measured = statistics.mean(
            _measured_answer_count(query, n, rng) for _ in range(trials)
        )
        rows.append(
            Table1Row(
                name=query.name,
                expected_answer_size=float(n) ** facts.answer_size_exponent,
                measured_answer_size=measured,
                vertex_cover=analysis.vertex_cover,
                share_exponents=shares,
                tau_star=analysis.tau_star,
                space_exponent=analysis.space_exponent,
                matches_paper=_check_row(facts, analysis, shares),
            )
        )
    return rows


def _measured_answer_count(
    query: ConjunctiveQuery, n: int, rng: random.Random
) -> int:
    database = matching_database(query, n, rng=random.Random(rng.random()))
    return len(
        evaluate_query(
            query,
            {name: database[name].tuples for name in database.relations},
        )
    )


@dataclass(frozen=True)
class Table2Row:
    """One row of Table 2: the rounds/space tradeoff.

    Attributes:
        name: the query instance.
        space_exponent: one-round space exponent (column 2).
        rounds_at_zero: plan depth at ``eps = 0`` from the actual plan
            builder (column 3; the paper's ``ceil(log k)`` etc.).
        rounds_by_eps: plan depth at several eps values (column 4's
            tradeoff curve, sampled).
        paper_rounds_at_zero: the closed-form entry, for comparison.
        upper_bound_at_zero: Lemma 4.3's formula at ``eps = 0``.
    """

    name: str
    space_exponent: Fraction
    rounds_at_zero: int
    rounds_by_eps: dict[Fraction, int]
    paper_rounds_at_zero: int | None
    upper_bound_at_zero: int


def table2_rows(
    eps_grid: tuple[Fraction, ...] = (
        Fraction(0),
        Fraction(1, 2),
        Fraction(2, 3),
    ),
) -> list[Table2Row]:
    """Compute Table 2 for ``C_k, L_k, T_k, SP_k`` instances."""
    instances = [
        cycle_facts(6),
        cycle_facts(8),
        line_facts(8),
        line_facts(16),
        star_facts(4),
        spider_facts(3),
    ]
    rows = []
    for facts in instances:
        query = facts.query
        depth_by_eps: dict[Fraction, int] = {}
        for eps in eps_grid:
            depth_by_eps[eps] = build_plan(query, eps).depth
        rows.append(
            Table2Row(
                name=query.name,
                space_exponent=facts.space_exp,
                rounds_at_zero=depth_by_eps[Fraction(0)],
                rounds_by_eps=depth_by_eps,
                paper_rounds_at_zero=facts.rounds_at_zero,
                upper_bound_at_zero=round_upper_bound(query, Fraction(0)),
            )
        )
    return rows


def tradeoff_curve(
    k: int, eps_values: tuple[Fraction, ...]
) -> list[tuple[Fraction, int, int]]:
    """The ``r ~ log k / log(2/(1-eps))`` curve for ``L_k``.

    Returns ``(eps, measured plan depth, k_eps)`` triples: the
    "rounds/space tradeoff" column of Table 2 made concrete.
    """
    from repro.core.families import line_query

    query = line_query(k)
    return [
        (eps, build_plan(query, eps).depth, k_eps(eps))
        for eps in eps_values
    ]
