"""Fixed-width text tables for benchmark and example output."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table.

    Args:
        headers: column titles.
        rows: row cells; each cell is str()-ed.
        title: optional caption printed above the table.
    """
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.ljust(width) for cell, width in zip(cells, widths)
        ).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append(render_row(["-" * width for width in widths]))
    lines.extend(render_row(row) for row in materialised)
    return "\n".join(lines)


def format_fraction(value: object) -> str:
    """Compact rendering for Fractions in table cells."""
    return str(value)
