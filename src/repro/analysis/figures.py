"""Plot-free figure generation: ASCII curves and log-log slope fits.

The paper's quantitative claims are power laws (answer fraction
``~ p^{-(tau*(1-eps)-1)}``) and logarithmic round growth.  Without a
plotting stack, the honest way to "draw" these is:

* :func:`fit_power_law` -- least-squares slope in log-log space, so a
  measured decay series can be summarised as a single exponent and
  compared against the theoretical one;
* :func:`ascii_curve` -- a terminal-friendly rendering of one or more
  series on a shared x-axis, used by benchmark output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence


@dataclass(frozen=True)
class PowerLawFit:
    """A fitted power law ``y ~ C * x^slope``.

    Attributes:
        slope: the exponent (negative for decays).
        intercept: ``log(C)``.
        r_squared: goodness of fit in log-log space.
    """

    slope: float
    intercept: float
    r_squared: float


def fit_power_law(
    xs: Sequence[float], ys: Sequence[float]
) -> PowerLawFit:
    """Least-squares fit of ``log y = slope * log x + intercept``.

    Args:
        xs, ys: positive samples (zero y values are dropped along
            with their x, since log is undefined there).

    Raises:
        ValueError: with fewer than two usable points.
    """
    pairs = [
        (math.log(x), math.log(y))
        for x, y in zip(xs, ys)
        if x > 0 and y > 0
    ]
    if len(pairs) < 2:
        raise ValueError("need at least two positive points to fit")
    n = len(pairs)
    mean_x = sum(lx for lx, _ in pairs) / n
    mean_y = sum(ly for _, ly in pairs) / n
    sxx = sum((lx - mean_x) ** 2 for lx, _ in pairs)
    sxy = sum((lx - mean_x) * (ly - mean_y) for lx, ly in pairs)
    if sxx == 0:
        raise ValueError("all x values identical")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_total = sum((ly - mean_y) ** 2 for _, ly in pairs)
    ss_residual = sum(
        (ly - (slope * lx + intercept)) ** 2 for lx, ly in pairs
    )
    r_squared = 1.0 if ss_total == 0 else 1.0 - ss_residual / ss_total
    return PowerLawFit(slope=slope, intercept=intercept, r_squared=r_squared)


def ascii_curve(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 50,
    height: int = 12,
    title: str | None = None,
) -> str:
    """Render series as a crude scatter chart in a character grid.

    Each series gets the first letter of its label as its marker; axes
    are linear.  Intended for benchmark output where a number table
    plus a visual trend beats neither.
    """
    if not xs:
        raise ValueError("need at least one x value")
    all_values = [v for values in series.values() for v in values]
    if not all_values:
        raise ValueError("need at least one series value")
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(all_values), max(all_values)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for label, values in series.items():
        marker = label[0]
        for x, y in zip(xs, values):
            column = int((x - x_low) / x_span * (width - 1))
            row = int((y - y_low) / y_span * (height - 1))
            grid[height - 1 - row][column] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: [{y_low:g}, {y_high:g}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"x: [{x_low:g}, {x_high:g}]   " + "  ".join(
        f"{label[0]}={label}" for label in series
    ))
    return "\n".join(lines)


def slope_matches(
    measured: PowerLawFit, theory_slope: float, tolerance: float = 0.35
) -> bool:
    """Is the fitted exponent within ``tolerance`` of the theory?

    A generous tolerance: the benchmarks run at modest n and few
    trials, so sampling noise on the order of 0.1-0.2 in the exponent
    is expected; what we are ruling out is the *wrong* power law.
    """
    return abs(measured.slope - theory_slope) <= tolerance
