"""Parameter sweeps for the measured experiments (E4-E9 in DESIGN.md).

Each sweep returns a list of plain dict rows, ready for
:func:`repro.analysis.reporting.format_table`; benchmarks print them
and EXPERIMENTS.md records paper-vs-measured per row.  Shapes to watch:

* E4 :func:`sweep_hc_load` -- HC max load tracks ``n / p^{1-eps(q)}``.
* E5 :func:`sweep_one_round_fraction` -- below the space exponent the
  reported-answer fraction decays like ``p^{-(tau*(1-eps)-1)}``.
* E6 :func:`sweep_multiround_rounds` -- plan depth for ``L_k`` steps
  like ``ceil(log_{k_eps} k)``.
* E7 :func:`sweep_components_rounds` -- sparse CC rounds grow with
  ``log p``; dense CC stays at 2 rounds.
* E8 :func:`sweep_witness` -- witness hit-rate decays with ``p``.
* E9 :func:`sweep_cartesian_tradeoff` -- replication ``g`` versus
  reducer size ``2n/g``.
"""

from __future__ import annotations

import random
import statistics
from fractions import Fraction

from repro.algorithms.baselines import run_cartesian_grid
from repro.algorithms.components import run_dense_two_round, run_hash_to_min
from repro.algorithms.hypercube import run_hypercube
from repro.algorithms.multiround import run_plan
from repro.algorithms.partial import run_partial_hypercube
from repro.algorithms.registry import legacy_entry_points_allowed
from repro.algorithms.witness import run_witness_experiment
from repro.core.bounds import (
    cc_round_lower_bound,
    k_eps,
    one_round_answer_fraction,
    round_lower_bound,
    round_upper_bound,
)
from repro.core.covers import covering_number, space_exponent
from repro.core.families import line_query
from repro.core.plans import build_plan
from repro.core.query import ConjunctiveQuery
from repro.data.database import Relation
from repro.data.generators import dense_graph, layered_path_graph
from repro.data.matching import matching_database


def sweep_hc_load(
    query: ConjunctiveQuery,
    n: int = 400,
    p_values: tuple[int, ...] = (4, 8, 16, 32, 64),
    trials: int = 3,
    seed: int = 0,
    backend: str | None = None,
) -> list[dict[str, object]]:
    """E4: HC maximum load (tuples/server) versus ``p``.

    The theory column is ``l * n / p^{1-eps(q)}`` tuples (each of the
    ``l`` atoms contributes up to ``n / p^{1-eps}``); the measured
    column should track it within small constants, and the ratio
    column (measured / theory) should stay roughly flat in ``p`` --
    that flatness is Proposition 3.2.  ``backend`` selects the
    execution engine (loads are backend-independent).
    """
    eps = space_exponent(query)
    rows = []
    for p in p_values:
        loads = []
        for trial in range(trials):
            database = matching_database(query, n, rng=seed + trial)
            with legacy_entry_points_allowed():
                result = run_hypercube(
                    query, database, p=p, seed=seed + trial,
                    backend=backend,
                )
            loads.append(result.report.max_load_tuples)
        theory = (
            query.num_atoms * n / float(p) ** float(1 - eps)
        )
        measured = statistics.mean(loads)
        rows.append(
            {
                "query": query.name,
                "p": p,
                "eps": eps,
                "max_load_tuples": round(measured, 1),
                "theory_load": round(theory, 1),
                "ratio": round(measured / theory, 2),
            }
        )
    return rows


def sweep_one_round_fraction(
    query: ConjunctiveQuery,
    eps: Fraction,
    n: int = 300,
    p_values: tuple[int, ...] = (4, 8, 16, 32, 64),
    trials: int = 5,
    seed: int = 0,
) -> list[dict[str, object]]:
    """E5: reported-answer fraction of the Prop 3.11 algorithm vs p.

    Valid regime: ``eps < 1 - 1/tau*(query)``.  The theory column is
    ``p^{-(tau*(1-eps)-1)}`` (Theorem 3.3); measured/theory should be
    roughly flat in ``p``.
    """
    rows = []
    for p in p_values:
        fractions = []
        for trial in range(trials):
            database = matching_database(query, n, rng=seed + 31 * trial)
            with legacy_entry_points_allowed():
                result = run_partial_hypercube(
                    query, database, p=p, eps=eps, seed=seed + 17 * trial
                )
            fractions.append(result.reported_fraction)
        theory = one_round_answer_fraction(query, eps, p)
        measured = statistics.mean(fractions)
        rows.append(
            {
                "query": query.name,
                "p": p,
                "eps": eps,
                "measured_fraction": round(measured, 4),
                "theory_fraction": round(theory, 4),
                "ratio": round(measured / theory, 2) if theory else None,
            }
        )
    return rows


def sweep_multiround_rounds(
    k_values: tuple[int, ...] = (4, 8, 16),
    eps_values: tuple[Fraction, ...] = (Fraction(0), Fraction(1, 2)),
    n: int = 100,
    p: int = 8,
    seed: int = 0,
) -> list[dict[str, object]]:
    """E6: rounds used by the ``L_k`` plan versus theory.

    Columns: measured simulator rounds, the paper's target
    ``ceil(log_{k_eps} k)``, and Lemma 4.3 / Corollary 4.8 bounds.
    Every execution is verified against the single-site join.
    """
    from repro.algorithms.localjoin import evaluate_query

    rows = []
    for k in k_values:
        query = line_query(k)
        database = matching_database(query, n, rng=seed)
        truth = evaluate_query(
            query,
            {name: database[name].tuples for name in database.relations},
        )
        for eps in eps_values:
            plan = build_plan(query, eps)
            with legacy_entry_points_allowed():
                result = run_plan(plan, database, p=p, seed=seed)
            if result.answers != truth:
                raise AssertionError(
                    f"plan execution wrong for L{k} at eps={eps}"
                )
            base = k_eps(eps)
            target = _ceil_log(base, k)
            rows.append(
                {
                    "query": query.name,
                    "eps": eps,
                    "k_eps": base,
                    "rounds_measured": result.rounds_used,
                    "paper_rounds": target,
                    "lower_bound": round_lower_bound(query, eps),
                    "upper_bound": round_upper_bound(query, eps),
                }
            )
    return rows


def sweep_components_rounds(
    p_values: tuple[int, ...] = (4, 16, 64, 256),
    layer_size: int = 24,
    seed: int = 0,
) -> list[dict[str, object]]:
    """E7: CC rounds on sparse layered graphs vs dense graphs.

    The sparse instance uses ``k = floor(sqrt(p))`` layers (the
    ``p^delta`` of Theorem 4.10 at ``eps = 0``), so measured rounds
    should grow with ``log p``; the dense contrast stays at 2.
    """
    rows = []
    for p in p_values:
        k = max(2, int(p ** 0.5))
        sparse = layered_path_graph(
            num_layers=k, layer_size=layer_size, rng=seed
        )
        sparse_run = run_hash_to_min(sparse, p=p, seed=seed)
        if not sparse_run.correct:
            raise AssertionError(f"hash-to-min wrong at p={p}")
        vertices = 8 * p
        dense = dense_graph(
            num_vertices=vertices,
            num_edges=min(
                vertices * (vertices - 1) // 2, 16 * vertices
            ),
            rng=seed,
        )
        dense_run = run_dense_two_round(dense, p=p, seed=seed)
        if not dense_run.correct:
            raise AssertionError(f"dense CC wrong at p={p}")
        rows.append(
            {
                "p": p,
                "path_length_k": k,
                "sparse_rounds": sparse_run.rounds_used,
                "lower_bound": cc_round_lower_bound(p, Fraction(0)),
                "dense_rounds": dense_run.rounds_used,
            }
        )
    return rows


def sweep_witness(
    n: int = 144,
    p_values: tuple[int, ...] = (2, 4, 8, 16),
    eps: Fraction = Fraction(0),
    trials: int = 20,
    seed: int = 0,
) -> list[dict[str, object]]:
    """E8: JOIN-WITNESS hit rate vs p (Proposition 3.12).

    Hit rate is measured conditionally on a witness existing (the
    instance has ``E[|q|] = 1``, so many draws are empty).  The chain
    fraction column is the Theorem 3.3 decay for ``tau* = 2``.
    """
    rows = []
    for p in p_values:
        hits = 0
        eligible = 0
        chain_fractions = []
        for trial in range(trials):
            result = run_witness_experiment(
                n=n, p=p, eps=eps, seed=seed + 101 * trial
            )
            chain_fractions.append(result.chain_fraction)
            if result.true_witnesses:
                eligible += 1
                if result.found:
                    hits += 1
        rows.append(
            {
                "p": p,
                "eps": eps,
                "instances_with_witness": eligible,
                "witness_found": hits,
                "hit_rate": round(hits / eligible, 3) if eligible else None,
                "mean_chain_fraction": round(
                    statistics.mean(chain_fractions), 4
                ),
                "theory_chain_fraction": round(
                    float(p) ** -(2 * float(1 - eps) - 1), 4
                ),
            }
        )
    return rows


def sweep_cartesian_tradeoff(
    n: int = 512,
    p: int = 64,
    group_values: tuple[int, ...] = (1, 2, 4, 8),
    seed: int = 0,
) -> list[dict[str, object]]:
    """E9: the drug-interaction tradeoff (introduction).

    Replication rate equals ``g`` while the reducer input is
    ``2n/g``; the product of the two is invariant (``2n``), and
    ``g = sqrt(p)`` balances reducer size against total communication.
    """
    rng = random.Random(seed)
    left = Relation.from_tuples(
        "A", [(value,) for value in range(1, n + 1)], domain_size=n
    )
    right = Relation.from_tuples(
        "B", [(value,) for value in rng.sample(range(1, n + 1), n)],
        domain_size=n,
    )
    rows = []
    for g in group_values:
        result = run_cartesian_grid(left, right, p=p, groups=g)
        if result.num_pairs != n * n:
            raise AssertionError(f"cartesian grid missed pairs at g={g}")
        rows.append(
            {
                "g": g,
                "replication_rate": round(result.replication_rate, 2),
                "max_reducer_tuples": result.max_reducer_tuples,
                "theory_reducer": round(2 * n / g, 1),
                "total_tuples_moved": result.report.rounds[0].total_tuples,
            }
        )
    return rows


def _ceil_log(base: int, value: int) -> int:
    result = 0
    power = 1
    while power < value:
        power *= base
        result += 1
    return result
