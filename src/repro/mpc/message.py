"""Messages exchanged on the simulated network.

A :class:`Message` is a batch of same-shaped tuples for one relation
(or view) sent from one endpoint to one worker, with its bit cost
computed once at construction.  Batching per (sender, receiver,
relation) keeps the simulator allocation-light while preserving exact
bit accounting: the paper charges ``Theta(log n)`` bits per tuple, and
we charge exactly ``arity * ceil(log2 n)``.

Senders are either worker indices (``int``) or input-server labels
(``"input:S1"``); receivers are always worker indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

Endpoint = int | str


def input_server(relation: str) -> str:
    """The endpoint label of the input server holding ``relation``."""
    return f"input:{relation}"


@dataclass(frozen=True)
class Message:
    """A batch of tuples in flight.

    Attributes:
        sender: worker index or input-server label.
        receiver: destination worker index.
        relation: the relation/view these tuples belong to.
        rows: the tuples themselves.
        bits_per_tuple: exact cost charged per tuple.
    """

    sender: Endpoint
    receiver: int
    relation: str
    rows: tuple[tuple[int, ...], ...]
    bits_per_tuple: int

    def __post_init__(self) -> None:
        if self.bits_per_tuple < 0:
            raise ValueError(
                f"bits_per_tuple must be >= 0, got {self.bits_per_tuple}"
            )
        object.__setattr__(self, "rows", tuple(map(tuple, self.rows)))

    @property
    def size_bits(self) -> int:
        """Total bit cost of the batch."""
        return len(self.rows) * self.bits_per_tuple

    @property
    def num_tuples(self) -> int:
        """Number of tuples in the batch."""
        return len(self.rows)


@dataclass
class Mailbox:
    """Per-worker accumulation of received data, by relation.

    Data arrives either row-wise (tuples, the reference path) or as
    column batches (the vectorized path).  Column batches stay
    columnar until someone asks for :meth:`rows`, at which point they
    are materialised once; :meth:`column_batches` hands them out
    as-is for the vectorized local join.

    Attributes:
        storage: relation name -> list of received rows (kept across
            rounds: the model lets workers remember everything they
            have ever received).
        column_storage: relation name -> list of column batches, each
            a tuple of parallel value columns.
    """

    storage: dict[str, list[tuple[int, ...]]] = field(default_factory=dict)
    column_storage: dict[str, list[tuple]] = field(default_factory=dict)
    _materialised: dict[str, int] = field(default_factory=dict)

    def deliver(self, message: Message) -> None:
        """Append a message's rows to the receiver's storage."""
        self.storage.setdefault(message.relation, []).extend(message.rows)

    def deliver_rows(
        self, relation: str, rows: Iterable[tuple[int, ...]]
    ) -> None:
        """Append already-materialised rows for ``relation``."""
        self.storage.setdefault(relation, []).extend(rows)

    def deliver_columns(self, relation: str, columns: tuple) -> None:
        """Append one column batch (parallel value columns)."""
        self.column_storage.setdefault(relation, []).append(columns)

    def rows(self, relation: str) -> list[tuple[int, ...]]:
        """Rows received so far for ``relation`` (possibly empty).

        Column batches received for the relation are materialised to
        tuples (each batch once) and appended after the row-wise
        deliveries.  The batches themselves stay available through
        :meth:`column_batches`, so the row view and the columnar view
        can be read in any order without losing data.
        """
        batches = self.column_storage.get(relation, ())
        done = self._materialised.get(relation, 0)
        if len(batches) > done:
            target = self.storage.setdefault(relation, [])
            for columns in batches[done:]:
                lists = [
                    column.tolist() if hasattr(column, "tolist")
                    else list(column)
                    for column in columns
                ]
                target.extend(zip(*lists))
            self._materialised[relation] = len(batches)
        return self.storage.get(relation, [])

    def column_batches(self, relation: str) -> list[tuple]:
        """Unmaterialised column batches for ``relation`` (may be [])."""
        return self.column_storage.get(relation, [])

    def relations(self) -> Iterable[str]:
        """Names of relations with at least one received row."""
        return self.storage.keys() | self.column_storage.keys()

    def clear(self) -> None:
        """Drop all stored rows (used between independent runs)."""
        self.storage.clear()
        self.column_storage.clear()
        self._materialised.clear()
