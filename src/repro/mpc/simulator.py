"""The round-based MPC network simulator (Sections 2.1 and 2.4).

Usage pattern (one HyperCube round)::

    simulator = MPCSimulator(config, input_bits=database.total_bits)
    simulator.begin_round()
    for relation in database:
        for row in relation:
            for worker in destinations(row):
                simulator.send_from_input(relation.name, worker, [row],
                                          bits_per_tuple=relation.tuple_bits)
    stats = simulator.end_round()
    rows_at_3 = simulator.mailbox(3).rows("S1")

Staging is columnar-first: row sends accumulate into per-(receiver,
relation) batch buffers and per-worker bit/tuple totals are kept as
running aggregates (no per-message object allocation), while the
vectorized path ships a whole relation's routing decision in one
:meth:`MPCSimulator.send_columns` call -- an array of destination
workers plus the source columns -- and the simulator bin-counts the
load and pools the deliveries at round end.

Columnar delivery is *pooled*: all of a relation's staged column sends
for the round are gathered into one contiguous :class:`ColumnPool`
whose rows are grouped by receiving worker (one stable sort per
relation per round), with a ``(worker -> offset range)`` index.  Each
worker's mailbox fragment is then a zero-copy basic slice of the pool,
and fleet-wide consumers (the segmented local join) read the whole
pool plus the index via :meth:`MPCSimulator.relation_pool` without any
per-worker concatenation.

The simulator enforces the model's ground rules:

* messages are staged during a round and delivered only at
  :meth:`MPCSimulator.end_round` (communication is synchronous);
* each worker's received bits per round are compared against
  ``c * N / p^{1-eps}``; exceeding the budget raises
  :class:`CapacityExceeded` when enforcement is on (the paper's
  algorithms abort in this event, which occurs with exponentially
  small probability on matching inputs -- Proposition 3.2);
* input servers (one per relation, Section 2.4) may send only during
  round 1, after which they fall silent -- matching the lower-bound
  model;
* workers keep everything they have ever received (servers are
  infinitely powerful; only communication is scarce).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.backend import require_numpy
from repro.mpc.message import Endpoint, Mailbox, input_server
from repro.mpc.model import MPCConfig
from repro.mpc.stats import RoundStats, SimulationReport


class ProtocolError(Exception):
    """Raised when an algorithm violates the MPC ground rules."""


class CapacityExceeded(Exception):
    """A worker received more than ``c * N / p^{1-eps}`` bits in a round.

    Attributes:
        worker: the overloaded worker index.
        received_bits: what it received this round.
        capacity_bits: its budget.
        round_index: the offending round.
    """

    def __init__(
        self,
        worker: int,
        received_bits: int,
        capacity_bits: float,
        round_index: int,
    ) -> None:
        super().__init__(
            f"worker {worker} received {received_bits} bits in round "
            f"{round_index}, capacity {capacity_bits:.0f}"
        )
        self.worker = worker
        self.received_bits = received_bits
        self.capacity_bits = capacity_bits
        self.round_index = round_index


@dataclass
class _ColumnStage:
    """One vectorized send: destination per row plus source columns.

    ``row_indices`` (optional) indexes into ``columns``; when present
    the stage represents ``columns[row_indices[i]] -> receivers[i]``
    without materialising the replicated rows, which is what keeps
    HC's ``p^{1-1/tau}``-fold replication cheap to stage.

    ``source_sorted`` is the sender's promise that, restricted to any
    one receiver, staged rows appear in ascending source-row order --
    true for every routing step whose replication pattern is a
    ``repeat``/``tile`` of ``arange`` (see
    :attr:`repro.engine.steps.RoutingStep.preserves_source_order`).
    """

    relation: str
    receivers: Any
    columns: tuple
    bits_per_tuple: int
    row_indices: Any | None = None
    source_sorted: bool = False


@dataclass(frozen=True)
class ColumnPool:
    """One relation's pooled columnar deliveries, grouped by worker.

    Attributes:
        columns: parallel value columns holding every delivered row of
            the relation, ordered by receiving worker (ascending).
        offsets: int64 array of length ``p + 1``; worker ``w``'s rows
            occupy ``columns[:][offsets[w]:offsets[w+1]]`` -- a basic
            (zero-copy) numpy slice.
        source_sorted: True when each worker's slice preserves the
            source relation's row order.  Source relations
            (:class:`~repro.data.columnar.ColumnarRelation`) are
            lexicographically sorted, so a True flag means every
            worker's fragment is lex-sorted too -- the precondition of
            the sort-free join fast path.
    """

    columns: tuple
    offsets: Any
    source_sorted: bool = False

    def __len__(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    @property
    def num_workers(self) -> int:
        """Number of workers the offset index covers."""
        return len(self.offsets) - 1

    def worker_slice(self, worker: int) -> tuple:
        """Worker ``w``'s fragment as zero-copy column views."""
        start = int(self.offsets[worker])
        end = int(self.offsets[worker + 1])
        return tuple(column[start:end] for column in self.columns)

    def worker_count(self, worker: int) -> int:
        """Number of rows delivered to one worker."""
        return int(self.offsets[worker + 1]) - int(self.offsets[worker])

    def shard(self, lo: int, hi: int) -> "ColumnPool":
        """The sub-pool of workers ``[lo, hi)`` (zero-copy slices).

        Rows stay worker-grouped and the offset index is rebased to
        the shard, so the result is itself a valid pool over
        ``hi - lo`` workers: a parallel consumer can hand each
        executor process one contiguous worker range and evaluate it
        with the exact same segmented code that runs fleet-wide.
        """
        if not 0 <= lo <= hi <= self.num_workers:
            raise ValueError(
                f"shard [{lo}, {hi}) outside [0, {self.num_workers})"
            )
        start = int(self.offsets[lo])
        end = int(self.offsets[hi])
        return ColumnPool(
            columns=tuple(column[start:end] for column in self.columns),
            offsets=self.offsets[lo : hi + 1] - start,
            source_sorted=self.source_sorted,
        )


class MPCSimulator:
    """A synchronous network of ``p`` workers plus input servers.

    Args:
        config: the MPC(eps) parameters.
        input_bits: the input size ``N`` (drives the capacity bound).
        enforce_capacity: raise :class:`CapacityExceeded` on overload
            when True; otherwise loads are recorded but not enforced
            (useful for measuring *how far* an algorithm overshoots).
    """

    def __init__(
        self,
        config: MPCConfig,
        input_bits: int,
        enforce_capacity: bool = True,
    ) -> None:
        self.config = config
        self.input_bits = input_bits
        self.enforce_capacity = enforce_capacity
        self.report = SimulationReport(input_bits=input_bits)
        self._mailboxes = [Mailbox() for _ in range(config.p)]
        self._round_index = 0
        self._in_round = False
        # Columnar deliveries pooled per relation (kept across rounds,
        # like mailboxes: workers remember everything they received).
        self._pools: dict[str, list[ColumnPool]] = {}
        self._merged_pools: dict[str, ColumnPool] = {}
        # Streamed (lazy) deliveries per relation: re-routable recipes
        # plus per-worker delivered tuple counts.  Loads were accounted
        # when the contribution was staged; rows are materialised on
        # demand one worker shard at a time (never into mailboxes).
        self._lazy: dict[str, list[Any]] = {}
        self._lazy_counts: dict[str, Any] = {}
        # Relations that ever received row-path deliveries; their
        # pools (if any) are incomplete, so fleet-wide consumers must
        # fall back to the per-worker mailbox view.
        self._row_delivered: set[str] = set()
        self._reset_staging()

    def _reset_staging(self) -> None:
        p = self.config.p
        self._staged_rows: dict[tuple[int, str], list[tuple[int, ...]]] = {}
        self._staged_columns: list[_ColumnStage] = []
        self._staged_lazy: list[tuple[str, Any, Any]] = []
        self._received_bits = [0] * p
        self._received_tuples = [0] * p

    def reset(
        self,
        input_bits: int | None = None,
        enforce_capacity: bool | None = None,
    ) -> None:
        """Return the simulator to its just-constructed state.

        The serving layer reuses one simulator across many plan
        executions instead of allocating ``p`` mailboxes per request;
        a reset drops every mailbox, delivery pool and report while
        keeping the configuration.  Optionally rebinds the input size
        (databases mutate between requests) and capacity enforcement.

        An open round is aborted: a :class:`CapacityExceeded` raise
        leaves the simulator mid-round by design (the algorithm died
        there), and a reset is exactly how a serving layer recovers
        the pooled simulator afterwards.
        """
        self._in_round = False
        if input_bits is not None:
            self.input_bits = input_bits
        if enforce_capacity is not None:
            self.enforce_capacity = enforce_capacity
        self.report = SimulationReport(input_bits=self.input_bits)
        for mailbox in self._mailboxes:
            mailbox.clear()
        self._round_index = 0
        self._pools.clear()
        self._merged_pools.clear()
        self._lazy.clear()
        self._lazy_counts.clear()
        self._row_delivered.clear()
        self._reset_staging()

    # -- round lifecycle ----------------------------------------------------

    @property
    def round_index(self) -> int:
        """The current round number (1-based once a round begins)."""
        return self._round_index

    @property
    def num_workers(self) -> int:
        """Number of workers ``p``."""
        return self.config.p

    def begin_round(self) -> int:
        """Open a new communication round and return its index."""
        if self._in_round:
            raise ProtocolError("previous round still open")
        self._round_index += 1
        self._in_round = True
        self._reset_staging()
        return self._round_index

    def end_round(self) -> RoundStats:
        """Deliver staged messages, account loads, close the round.

        Raises:
            CapacityExceeded: if enforcement is on and some worker
                exceeded its receive budget this round.
        """
        if not self._in_round:
            raise ProtocolError("no round in progress")
        capacity = self.config.capacity_bits(self.input_bits)
        if self.enforce_capacity:
            for worker, bits in enumerate(self._received_bits):
                if bits > capacity:
                    raise CapacityExceeded(
                        worker, bits, capacity, self._round_index
                    )
        for (receiver, relation), rows in self._staged_rows.items():
            self._mailboxes[receiver].deliver_rows(relation, rows)
            self._row_delivered.add(relation)
        self._deliver_column_pools()
        self._commit_lazy()
        stats = RoundStats(
            round_index=self._round_index,
            received_bits=tuple(self._received_bits),
            received_tuples=tuple(self._received_tuples),
            capacity_bits=capacity,
        )
        self.report.rounds.append(stats)
        self._reset_staging()
        self._in_round = False
        return stats

    def _deliver_column_pools(self) -> None:
        """Pool the round's column stages per relation and deliver.

        One stable sort per relation groups every staged row by its
        receiving worker; each worker's mailbox fragment is then a
        zero-copy basic slice of the pooled columns, and the pool plus
        its offset index stays available fleet-wide through
        :meth:`relation_pool`.
        """
        if not self._staged_columns:
            return
        by_relation: dict[str, list[_ColumnStage]] = {}
        for stage in self._staged_columns:
            by_relation.setdefault(stage.relation, []).append(stage)
        for relation, stages in by_relation.items():
            pool = self._build_pool(stages)
            self._pools.setdefault(relation, []).append(pool)
            self._merged_pools.pop(relation, None)
            for worker in range(self.config.p):
                if pool.worker_count(worker):
                    self._mailboxes[worker].deliver_columns(
                        relation, pool.worker_slice(worker)
                    )

    def _commit_lazy(self) -> None:
        """Commit the round's streamed deliveries as worker state.

        Mirrors pool delivery semantics: contributions staged during a
        round only become part of the fleet's delivered state once the
        round closes under its capacity budget -- a round that raises
        :class:`CapacityExceeded` leaves the contribution unstaged,
        exactly as a monolithic delivery would never have pooled.
        """
        if not self._staged_lazy:
            return
        numpy = require_numpy()
        for relation, contribution, counts in self._staged_lazy:
            self._lazy.setdefault(relation, []).append(contribution)
            existing = self._lazy_counts.get(relation)
            if existing is None:
                self._lazy_counts[relation] = counts.astype(numpy.int64)
            else:
                self._lazy_counts[relation] = existing + counts
            self._merged_pools.pop(relation, None)

    def _build_pool(self, stages: list[_ColumnStage]) -> ColumnPool:
        """Gather one relation's stages into a worker-grouped pool."""
        numpy = require_numpy()
        if len(stages) == 1:
            stage = stages[0]
            receivers = stage.receivers
            order = numpy.argsort(receivers, kind="stable")
            selected = (
                order
                if stage.row_indices is None
                else stage.row_indices[order]
            )
            columns = tuple(column[selected] for column in stage.columns)
            source_sorted = stage.source_sorted
        else:
            receivers = numpy.concatenate(
                [stage.receivers for stage in stages]
            )
            order = numpy.argsort(receivers, kind="stable")
            arity = len(stages[0].columns)
            expanded = [
                tuple(
                    column
                    if stage.row_indices is None
                    else column[stage.row_indices]
                    for column in stage.columns
                )
                for stage in stages
            ]
            columns = tuple(
                numpy.concatenate(
                    [stage_columns[i] for stage_columns in expanded]
                )[order]
                for i in range(arity)
            )
            # Interleaved stages break within-worker source order.
            source_sorted = False
        offsets = numpy.searchsorted(
            receivers[order],
            numpy.arange(self.config.p + 1, dtype=numpy.int64),
        )
        return ColumnPool(
            columns=columns,
            offsets=offsets.astype(numpy.int64),
            source_sorted=source_sorted,
        )

    # -- sending --------------------------------------------------------------

    def _validate_send(
        self,
        sender: Endpoint,
        receiver: int | None,
        bits_per_tuple: int,
    ) -> None:
        if not self._in_round:
            raise ProtocolError("send outside of a round")
        if bits_per_tuple < 0:
            raise ValueError(
                f"bits_per_tuple must be >= 0, got {bits_per_tuple}"
            )
        if receiver is not None and not 0 <= receiver < self.config.p:
            raise ProtocolError(
                f"receiver {receiver} outside [0, {self.config.p})"
            )
        if isinstance(sender, int) and not 0 <= sender < self.config.p:
            raise ProtocolError(
                f"worker sender {sender} outside [0, {self.config.p})"
            )
        if (
            isinstance(sender, str)
            and sender.startswith("input:")
            and self._round_index > 1
        ):
            raise ProtocolError(
                "input servers may send only during round 1 "
                f"(round {self._round_index})"
            )

    def send(
        self,
        sender: Endpoint,
        receiver: int,
        relation: str,
        rows: Iterable[Sequence[int]],
        bits_per_tuple: int,
    ) -> None:
        """Stage a batch of tuples for delivery at round end.

        Args:
            sender: worker index, or an input-server label.
            receiver: destination worker index.
            relation: relation/view name the rows belong to.
            rows: the tuples.
            bits_per_tuple: exact per-tuple cost in bits.
        """
        self._validate_send(sender, receiver, bits_per_tuple)
        materialised = [tuple(row) for row in rows]
        if not materialised:
            return
        self._staged_rows.setdefault((receiver, relation), []).extend(
            materialised
        )
        self._received_bits[receiver] += len(materialised) * bits_per_tuple
        self._received_tuples[receiver] += len(materialised)

    def send_columns(
        self,
        sender: Endpoint,
        receivers: Any,
        relation: str,
        columns: tuple,
        bits_per_tuple: int,
        row_indices: Any | None = None,
        source_sorted: bool = False,
    ) -> None:
        """Stage a whole routing decision in one vectorized call.

        Row ``i`` of the batch goes to worker ``receivers[i]``; its
        values are ``columns[:][i]`` directly, or
        ``columns[:][row_indices[i]]`` when ``row_indices`` is given
        (replication without materialising the copies).  Load is
        accounted immediately via a bincount; per-receiver fragments
        are sliced out of the round's :class:`ColumnPool` at delivery
        time.

        Args:
            sender: worker index, or an input-server label.
            receivers: int array of destination workers, one per row.
            relation: relation/view name the rows belong to.
            columns: parallel value columns (numpy int64 arrays).
            bits_per_tuple: exact per-tuple cost in bits.
            row_indices: optional gather indices into ``columns``.
            source_sorted: sender's promise that rows staged for any
                one receiver appear in ascending source-row order
                (lets the pool keep worker fragments pre-sorted; see
                :class:`ColumnPool`).
        """
        numpy = require_numpy()
        self._validate_send(sender, None, bits_per_tuple)
        receivers = numpy.asarray(receivers, dtype=numpy.int64)
        if row_indices is not None:
            row_indices = numpy.asarray(row_indices, dtype=numpy.int64)
        num_source_rows = len(columns[0]) if columns else 0
        staged_rows = (
            len(row_indices) if row_indices is not None else num_source_rows
        )
        if len(receivers) != staged_rows:
            raise ProtocolError(
                f"{len(receivers)} receivers for {staged_rows} staged "
                "rows (one destination per row required)"
            )
        if len(receivers) == 0:
            return
        if row_indices is not None and len(row_indices):
            if (
                int(row_indices.min()) < 0
                or int(row_indices.max()) >= num_source_rows
            ):
                raise ProtocolError(
                    f"row_indices outside [0, {num_source_rows})"
                )
        low = int(receivers.min())
        high = int(receivers.max())
        if low < 0 or high >= self.config.p:
            offender = low if low < 0 else high
            raise ProtocolError(
                f"receiver {offender} outside [0, {self.config.p})"
            )
        counts = numpy.bincount(receivers, minlength=self.config.p)
        for worker, count in enumerate(counts.tolist()):
            if count:
                self._received_bits[worker] += count * bits_per_tuple
                self._received_tuples[worker] += count
        self._staged_columns.append(
            _ColumnStage(
                relation=relation,
                receivers=receivers,
                columns=columns,
                bits_per_tuple=bits_per_tuple,
                row_indices=row_indices,
                source_sorted=source_sorted,
            )
        )

    def stage_lazy_columns(
        self,
        sender: Endpoint,
        relation: str,
        contribution: Any,
        counts: Any,
        bits_per_tuple: int,
    ) -> None:
        """Stage one streamed routing step without materialising rows.

        The streaming engine's ship verb: ``counts`` is the per-worker
        delivered-tuple bincount its counting pass computed (identical
        totals to :meth:`send_columns`' own bincount by construction),
        and ``contribution`` is a re-routable delivery recipe (a
        :class:`~repro.engine.streaming.LazyContribution`).  Load is
        accounted immediately; the recipe becomes part of the fleet's
        delivered state at :meth:`end_round` -- after the capacity
        check, like every other delivery -- and its rows are
        materialised on demand, one worker shard at a time, through
        :meth:`pool_shard`.  Mailboxes are never populated: streamed
        relations are consumed through the pool/shard interface only.
        """
        self._validate_send(sender, None, bits_per_tuple)
        if len(counts) != self.config.p:
            raise ProtocolError(
                f"{len(counts)} worker counts for {self.config.p} workers"
            )
        for worker, count in enumerate(counts.tolist()):
            if count:
                self._received_bits[worker] += count * bits_per_tuple
                self._received_tuples[worker] += count
        self._staged_lazy.append((relation, contribution, counts))

    def send_from_input(
        self,
        relation: str,
        receiver: int,
        rows: Iterable[Sequence[int]],
        bits_per_tuple: int,
    ) -> None:
        """Convenience: send from the input server of ``relation``."""
        self.send(
            input_server(relation), receiver, relation, rows, bits_per_tuple
        )

    def send_columns_from_input(
        self,
        relation: str,
        receivers: Any,
        columns: tuple,
        bits_per_tuple: int,
        row_indices: Any | None = None,
    ) -> None:
        """Vectorized :meth:`send_columns` from a relation's input server."""
        self.send_columns(
            input_server(relation),
            receivers,
            relation,
            columns,
            bits_per_tuple,
            row_indices=row_indices,
        )

    def broadcast_from_input(
        self,
        relation: str,
        rows: Iterable[Sequence[int]],
        bits_per_tuple: int,
    ) -> None:
        """Send the same rows to every worker (round-1 broadcast)."""
        materialised = tuple(tuple(row) for row in rows)
        for worker in range(self.config.p):
            self.send_from_input(
                relation, worker, materialised, bits_per_tuple
            )

    # -- worker state ------------------------------------------------------------

    def mailbox(self, worker: int) -> Mailbox:
        """The accumulated storage of one worker."""
        return self._mailboxes[worker]

    def worker_rows(self, worker: int, relation: str) -> list[tuple[int, ...]]:
        """Rows of ``relation`` held by ``worker`` (ever received)."""
        return self._mailboxes[worker].rows(relation)

    def worker_column_batches(self, worker: int, relation: str) -> list[tuple]:
        """Columnar fragments of ``relation`` held by ``worker``."""
        return self._mailboxes[worker].column_batches(relation)

    def has_lazy_deliveries(self, relation: str) -> bool:
        """Whether ``relation`` has streamed (recipe-only) deliveries.

        True means :meth:`relation_pool` would *materialise* the full
        pool (a memory cliff the streaming mode exists to avoid);
        shard-wise consumers should iterate :meth:`pool_shard` ranges
        instead.
        """
        return relation in self._lazy

    def has_row_deliveries(self, relation: str) -> bool:
        """Whether ``relation`` ever received row-path deliveries."""
        return relation in self._row_delivered

    def has_eager_pools(self, relation: str) -> bool:
        """Whether ``relation`` holds materialised delivery pools."""
        return bool(self._pools.get(relation))

    def lazy_contributions(self, relation: str) -> tuple:
        """The streamed delivery recipes of one relation (may be empty)."""
        return tuple(self._lazy.get(relation, ()))

    def pool_worker_counts(self, relation: str) -> Any | None:
        """Per-worker delivered tuple counts, without materialising.

        Covers eager pools and streamed contributions alike; None
        exactly when :meth:`relation_pool` would return None (row-path
        deliveries present, or nothing columnar delivered).
        """
        if relation in self._row_delivered:
            return None
        pools = self._pools.get(relation)
        lazy_counts = self._lazy_counts.get(relation)
        if not pools and lazy_counts is None:
            return None
        numpy = require_numpy()
        counts = numpy.zeros(self.config.p, dtype=numpy.int64)
        for pool in pools or ():
            counts += pool.offsets[1:] - pool.offsets[:-1]
        if lazy_counts is not None:
            counts += lazy_counts
        return counts

    def pool_worker_bytes(self, relation: str) -> Any | None:
        """Per-worker pooled bytes of ``relation`` (shard planning)."""
        counts = self.pool_worker_counts(relation)
        if counts is None:
            return None
        arity = 0
        pools = self._pools.get(relation)
        if pools:
            arity = len(pools[0].columns)
        for contribution in self._lazy.get(relation, ()):
            arity = max(arity, len(contribution.columns))
        return counts * (arity * 8)

    def pool_shard(
        self, relation: str, lo: int, hi: int
    ) -> ColumnPool | None:
        """Workers ``[lo, hi)`` of one relation's delivery pool.

        The shard-wise counterpart of :meth:`relation_pool`: eager
        pools contribute zero-copy :meth:`ColumnPool.shard` views,
        streamed contributions are re-routed and materialised for this
        worker range only, and multiple sources merge through the
        streaming :class:`~repro.engine.streaming.PoolBuilder`.  Peak
        memory is the shard, never the fleet.  None exactly when
        :meth:`relation_pool` would return None.
        """
        if relation in self._row_delivered:
            return None
        pools = self._pools.get(relation)
        lazy = self._lazy.get(relation)
        if not pools and not lazy:
            return None
        if not lazy and len(pools) == 1:
            return pools[0].shard(lo, hi)
        from repro.engine.streaming import materialize_shard

        return materialize_shard(
            lazy or (),
            lo,
            hi,
            self.config.p,
            extra_blocks=[pool.shard(lo, hi) for pool in pools or ()],
        )

    def relation_pool(self, relation: str) -> ColumnPool | None:
        """The fleet-wide delivery pool of one relation, or None.

        Returns the pooled columns of *every* worker's fragment of
        ``relation`` plus the ``(worker -> offset range)`` index, for
        consumers that evaluate the whole fleet in one vectorized pass
        (the segmented local join).  Pools from multiple rounds are
        merged (and cached) on demand.

        Returns None when the relation received no columnar deliveries
        or when any delivery travelled the row path (mixed storage:
        the pool would be incomplete, so callers must fall back to the
        per-worker mailbox view).

        Streamed deliveries (see :meth:`stage_lazy_columns`) are
        materialised *in full* here -- the correctness fallback, never
        cached.  Memory-conscious consumers check
        :meth:`has_lazy_deliveries` and iterate :meth:`pool_shard`
        worker ranges instead.
        """
        if relation in self._row_delivered:
            return None
        if relation in self._lazy:
            return self.pool_shard(relation, 0, self.config.p)
        pools = self._pools.get(relation)
        if not pools:
            return None
        if len(pools) == 1:
            return pools[0]
        merged = self._merged_pools.get(relation)
        if merged is None:
            merged = self._merge_pools(pools)
            self._merged_pools[relation] = merged
        return merged

    def relation_pool_shards(
        self, relation: str, num_shards: int
    ) -> list[tuple[int, int, ColumnPool]] | None:
        """One relation's pool split into contiguous worker shards.

        Returns ``[(lo, hi, shard pool), ...]`` covering workers
        ``[0, p)`` in at most ``num_shards`` near-equal contiguous
        ranges, or None exactly when :meth:`relation_pool` would
        return None.  Eager pools are sliced zero-copy; streamed
        deliveries are materialised per shard (the full pool never
        exists at once on the producing side -- each shard is an
        independent :meth:`pool_shard` call, so parallel consumers can
        fan route *and* ship/deliver out per shard).
        """
        if num_shards < 1:
            raise ValueError(f"need num_shards >= 1, got {num_shards}")
        if relation in self._row_delivered:
            return None
        if not self._pools.get(relation) and relation not in self._lazy:
            return None
        p = self.config.p
        per_shard = -(-p // num_shards)  # ceil division
        shards = []
        for lo in range(0, p, per_shard):
            hi = min(lo + per_shard, p)
            shards.append((lo, hi, self.pool_shard(relation, lo, hi)))
        return shards

    def iter_relation_pool_shards(
        self, relation: str, shard_bytes: int | None = None
    ):
        """Budget-driven generator of ``(lo, hi, pool)`` worker shards.

        Shard boundaries come from
        :func:`~repro.engine.streaming.plan_worker_shards` over the
        relation's per-worker pooled bytes: each yielded pool holds at
        most ``shard_bytes`` of rows (single oversized workers
        excepted), and only one shard is alive at a time -- the
        memory contract of streamed local evaluation.  Yields nothing
        when the relation has no (complete) columnar deliveries.
        """
        from repro.engine.streaming import (
            plan_worker_shards,
            resolve_shard_bytes,
        )

        byte_counts = self.pool_worker_bytes(relation)
        if byte_counts is None:
            return
        budget = resolve_shard_bytes(shard_bytes)
        for lo, hi in plan_worker_shards(byte_counts, self.config.p, budget):
            yield lo, hi, self.pool_shard(relation, lo, hi)

    def _merge_pools(self, pools: list[ColumnPool]) -> ColumnPool:
        """Merge several rounds' pools into one worker-grouped pool.

        Each pool becomes a synthetic stage (its receiver array is
        reconstructed from the offset index) so the group-by-worker
        construction lives in exactly one place, :meth:`_build_pool`.
        """
        numpy = require_numpy()
        p = self.config.p
        stages = [
            _ColumnStage(
                relation="",
                receivers=numpy.repeat(
                    numpy.arange(p, dtype=numpy.int64),
                    pool.offsets[1:] - pool.offsets[:-1],
                ),
                columns=pool.columns,
                bits_per_tuple=0,
            )
            for pool in pools
        ]
        return self._build_pool(stages)
