"""The round-based MPC network simulator (Sections 2.1 and 2.4).

Usage pattern (one HyperCube round)::

    simulator = MPCSimulator(config, input_bits=database.total_bits)
    simulator.begin_round()
    for relation in database:
        for row in relation:
            for worker in destinations(row):
                simulator.send_from_input(relation.name, worker, [row],
                                          bits_per_tuple=relation.tuple_bits)
    stats = simulator.end_round()
    rows_at_3 = simulator.mailbox(3).rows("S1")

The simulator enforces the model's ground rules:

* messages are staged during a round and delivered only at
  :meth:`MPCSimulator.end_round` (communication is synchronous);
* each worker's received bits per round are compared against
  ``c * N / p^{1-eps}``; exceeding the budget raises
  :class:`CapacityExceeded` when enforcement is on (the paper's
  algorithms abort in this event, which occurs with exponentially
  small probability on matching inputs -- Proposition 3.2);
* input servers (one per relation, Section 2.4) may send only during
  round 1, after which they fall silent -- matching the lower-bound
  model;
* workers keep everything they have ever received (servers are
  infinitely powerful; only communication is scarce).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.mpc.message import Endpoint, Mailbox, Message, input_server
from repro.mpc.model import MPCConfig
from repro.mpc.stats import RoundStats, SimulationReport


class ProtocolError(Exception):
    """Raised when an algorithm violates the MPC ground rules."""


class CapacityExceeded(Exception):
    """A worker received more than ``c * N / p^{1-eps}`` bits in a round.

    Attributes:
        worker: the overloaded worker index.
        received_bits: what it received this round.
        capacity_bits: its budget.
        round_index: the offending round.
    """

    def __init__(
        self,
        worker: int,
        received_bits: int,
        capacity_bits: float,
        round_index: int,
    ) -> None:
        super().__init__(
            f"worker {worker} received {received_bits} bits in round "
            f"{round_index}, capacity {capacity_bits:.0f}"
        )
        self.worker = worker
        self.received_bits = received_bits
        self.capacity_bits = capacity_bits
        self.round_index = round_index


class MPCSimulator:
    """A synchronous network of ``p`` workers plus input servers.

    Args:
        config: the MPC(eps) parameters.
        input_bits: the input size ``N`` (drives the capacity bound).
        enforce_capacity: raise :class:`CapacityExceeded` on overload
            when True; otherwise loads are recorded but not enforced
            (useful for measuring *how far* an algorithm overshoots).
    """

    def __init__(
        self,
        config: MPCConfig,
        input_bits: int,
        enforce_capacity: bool = True,
    ) -> None:
        self.config = config
        self.input_bits = input_bits
        self.enforce_capacity = enforce_capacity
        self.report = SimulationReport(input_bits=input_bits)
        self._mailboxes = [Mailbox() for _ in range(config.p)]
        self._pending: list[Message] = []
        self._round_index = 0
        self._in_round = False

    # -- round lifecycle ----------------------------------------------------

    @property
    def round_index(self) -> int:
        """The current round number (1-based once a round begins)."""
        return self._round_index

    @property
    def num_workers(self) -> int:
        """Number of workers ``p``."""
        return self.config.p

    def begin_round(self) -> int:
        """Open a new communication round and return its index."""
        if self._in_round:
            raise ProtocolError("previous round still open")
        self._round_index += 1
        self._in_round = True
        self._pending = []
        return self._round_index

    def end_round(self) -> RoundStats:
        """Deliver staged messages, account loads, close the round.

        Raises:
            CapacityExceeded: if enforcement is on and some worker
                exceeded its receive budget this round.
        """
        if not self._in_round:
            raise ProtocolError("no round in progress")
        received_bits = [0] * self.config.p
        received_tuples = [0] * self.config.p
        for message in self._pending:
            received_bits[message.receiver] += message.size_bits
            received_tuples[message.receiver] += message.num_tuples
        capacity = self.config.capacity_bits(self.input_bits)
        if self.enforce_capacity:
            for worker, bits in enumerate(received_bits):
                if bits > capacity:
                    raise CapacityExceeded(
                        worker, bits, capacity, self._round_index
                    )
        for message in self._pending:
            self._mailboxes[message.receiver].deliver(message)
        stats = RoundStats(
            round_index=self._round_index,
            received_bits=tuple(received_bits),
            received_tuples=tuple(received_tuples),
            capacity_bits=capacity,
        )
        self.report.rounds.append(stats)
        self._pending = []
        self._in_round = False
        return stats

    # -- sending --------------------------------------------------------------

    def send(
        self,
        sender: Endpoint,
        receiver: int,
        relation: str,
        rows: Iterable[Sequence[int]],
        bits_per_tuple: int,
    ) -> None:
        """Stage a batch of tuples for delivery at round end.

        Args:
            sender: worker index, or an input-server label.
            receiver: destination worker index.
            relation: relation/view name the rows belong to.
            rows: the tuples.
            bits_per_tuple: exact per-tuple cost in bits.
        """
        if not self._in_round:
            raise ProtocolError("send outside of a round")
        if not 0 <= receiver < self.config.p:
            raise ProtocolError(
                f"receiver {receiver} outside [0, {self.config.p})"
            )
        if isinstance(sender, int) and not 0 <= sender < self.config.p:
            raise ProtocolError(
                f"worker sender {sender} outside [0, {self.config.p})"
            )
        if (
            isinstance(sender, str)
            and sender.startswith("input:")
            and self._round_index > 1
        ):
            raise ProtocolError(
                "input servers may send only during round 1 "
                f"(round {self._round_index})"
            )
        materialised = tuple(tuple(row) for row in rows)
        if not materialised:
            return
        self._pending.append(
            Message(
                sender=sender,
                receiver=receiver,
                relation=relation,
                rows=materialised,
                bits_per_tuple=bits_per_tuple,
            )
        )

    def send_from_input(
        self,
        relation: str,
        receiver: int,
        rows: Iterable[Sequence[int]],
        bits_per_tuple: int,
    ) -> None:
        """Convenience: send from the input server of ``relation``."""
        self.send(
            input_server(relation), receiver, relation, rows, bits_per_tuple
        )

    def broadcast_from_input(
        self,
        relation: str,
        rows: Iterable[Sequence[int]],
        bits_per_tuple: int,
    ) -> None:
        """Send the same rows to every worker (round-1 broadcast)."""
        materialised = tuple(tuple(row) for row in rows)
        for worker in range(self.config.p):
            self.send_from_input(
                relation, worker, materialised, bits_per_tuple
            )

    # -- worker state ------------------------------------------------------------

    def mailbox(self, worker: int) -> Mailbox:
        """The accumulated storage of one worker."""
        return self._mailboxes[worker]

    def worker_rows(self, worker: int, relation: str) -> list[tuple[int, ...]]:
        """Rows of ``relation`` held by ``worker`` (ever received)."""
        return self._mailboxes[worker].rows(relation)
