"""Per-round and whole-run communication statistics.

The two quantities the paper bounds are the number of rounds and the
bits received per worker per round; :class:`RoundStats` captures the
latter exactly for one round, and :class:`SimulationReport` aggregates
a full run, deriving the observed replication rate (total bits moved
divided by input bits) that Table 1's space exponents predict.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RoundStats:
    """Exact communication accounting for one round.

    Attributes:
        round_index: 1-based round number.
        received_bits: per-worker bits received this round.
        received_tuples: per-worker tuples received this round.
        capacity_bits: the enforced per-worker budget this round.
    """

    round_index: int
    received_bits: tuple[int, ...]
    received_tuples: tuple[int, ...]
    capacity_bits: float

    @property
    def max_received_bits(self) -> int:
        """The most loaded worker's received bits (the paper's load)."""
        return max(self.received_bits) if self.received_bits else 0

    @property
    def max_received_tuples(self) -> int:
        """The most loaded worker's received tuple count."""
        return max(self.received_tuples) if self.received_tuples else 0

    @property
    def total_bits(self) -> int:
        """Bits moved across the network this round."""
        return sum(self.received_bits)

    @property
    def total_tuples(self) -> int:
        """Tuples moved across the network this round."""
        return sum(self.received_tuples)

    @property
    def load_imbalance(self) -> float:
        """Max/mean received bits (1.0 = perfectly balanced)."""
        if not self.received_bits or self.total_bits == 0:
            return 1.0
        mean = self.total_bits / len(self.received_bits)
        return self.max_received_bits / mean


@dataclass
class SimulationReport:
    """Aggregated statistics for a completed simulation.

    Attributes:
        input_bits: the input size ``N`` used for capacity.
        rounds: per-round statistics, in order.
    """

    input_bits: int
    rounds: list[RoundStats] = field(default_factory=list)

    @property
    def num_rounds(self) -> int:
        """Number of communication rounds executed."""
        return len(self.rounds)

    @property
    def max_load_bits(self) -> int:
        """The worst per-worker per-round received bits of the run."""
        return max(
            (stats.max_received_bits for stats in self.rounds), default=0
        )

    @property
    def max_load_tuples(self) -> int:
        """The worst per-worker per-round received tuple count."""
        return max(
            (stats.max_received_tuples for stats in self.rounds), default=0
        )

    @property
    def total_bits(self) -> int:
        """All bits moved across the network over all rounds."""
        return sum(stats.total_bits for stats in self.rounds)

    @property
    def replication_rate(self) -> float:
        """Total bits moved divided by input bits.

        For one HC round this is the replication factor the space
        exponent controls: ``O(p^eps)``.
        """
        if self.input_bits == 0:
            return 0.0
        return self.total_bits / self.input_bits

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"rounds={self.num_rounds} input_bits={self.input_bits} "
            f"total_bits={self.total_bits} "
            f"replication={self.replication_rate:.3f}"
        ]
        for stats in self.rounds:
            lines.append(
                f"  round {stats.round_index}: max_bits="
                f"{stats.max_received_bits} max_tuples="
                f"{stats.max_received_tuples} total_bits="
                f"{stats.total_bits} imbalance={stats.load_imbalance:.2f} "
                f"capacity={stats.capacity_bits:.0f}"
            )
        return "\n".join(lines)
