"""The Massively Parallel Communication (MPC) simulator (Section 2.1).

The MPC(eps) model: ``p`` workers with unlimited local compute joined
by private channels; computation proceeds in rounds of local work plus
global communication; per round each worker may *receive* at most
``O(N / p^{1-eps})`` bits, where ``N`` is the input size in bits and
``eps`` is the space exponent.

The simulator is an exact bookkeeping device for the two quantities
the paper bounds -- rounds and received bits per worker per round --
so algorithm implementations (HyperCube, multi-round plans, connected
components) run unchanged against it while their communication
behaviour is measured and, optionally, *enforced* (a worker receiving
more than its capacity raises :class:`CapacityExceeded`, the
simulator's analogue of the paper's load-balance failure event).

Input relations start on dedicated *input servers* (Section 2.4), one
per relation, which may send arbitrary messages during round 1 and are
silent afterwards -- exactly the model the lower bounds assume.
"""

from repro.mpc.model import MPCConfig
from repro.mpc.message import Message
from repro.mpc.simulator import (
    CapacityExceeded,
    MPCSimulator,
    ProtocolError,
)
from repro.mpc.stats import RoundStats, SimulationReport
from repro.mpc.routing import (
    HashFamily,
    grid_coordinates,
    grid_rank,
    grid_rank_columns,
)

__all__ = [
    "MPCConfig",
    "Message",
    "CapacityExceeded",
    "MPCSimulator",
    "ProtocolError",
    "RoundStats",
    "SimulationReport",
    "HashFamily",
    "grid_coordinates",
    "grid_rank",
    "grid_rank_columns",
]
