"""Seeded hash families and hypercube addressing (Section 3.1).

The HC algorithm needs ``k`` independent hash functions
``h_i : [n] -> [p_i]``, one per query variable.  We derive them from a
single 64-bit seed with a splitmix64-style mixer: deterministic across
runs (reproducible experiments) while behaving like independent
uniform hashing, which is what the Chernoff load argument of
Proposition 3.2 needs on matching inputs.

The grid helpers convert between a worker's flat index in ``[0, P)``
and its coordinates in the ``[p_1] x ... x [p_k]`` hypercube
(mixed-radix encoding).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def splitmix64(value: int) -> int:
    """The splitmix64 finaliser: a high-quality 64-bit mixer."""
    value = (value + _GOLDEN) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


@dataclass(frozen=True)
class HashFamily:
    """A keyed family of hash functions indexed by dimension name.

    Two families with the same seed agree everywhere; distinct
    dimension names give (empirically) independent functions.
    """

    seed: int = 0

    def hash_value(self, dimension: str, value: int, buckets: int) -> int:
        """Hash ``value`` into ``[0, buckets)`` for one dimension.

        Args:
            dimension: the variable name owning this hash function.
            value: the domain value to hash.
            buckets: the share ``p_i`` of the dimension (>= 1).
        """
        if buckets < 1:
            raise ValueError(f"need >= 1 bucket, got {buckets}")
        if buckets == 1:
            return 0
        dimension_key = splitmix64(hash(dimension) & _MASK64)
        mixed = splitmix64((self.seed ^ dimension_key) + value * _GOLDEN)
        return mixed % buckets


def grid_rank(coordinates: Sequence[int], dimensions: Sequence[int]) -> int:
    """Flatten hypercube coordinates to a worker index (mixed radix).

    Args:
        coordinates: one coordinate per dimension, ``0 <= c_i < p_i``.
        dimensions: the shares ``(p_1, ..., p_k)``.
    """
    if len(coordinates) != len(dimensions):
        raise ValueError("coordinate/dimension length mismatch")
    rank = 0
    for coordinate, size in zip(coordinates, dimensions):
        if not 0 <= coordinate < size:
            raise ValueError(
                f"coordinate {coordinate} outside [0, {size})"
            )
        rank = rank * size + coordinate
    return rank


def grid_coordinates(rank: int, dimensions: Sequence[int]) -> tuple[int, ...]:
    """Inverse of :func:`grid_rank`."""
    total = 1
    for size in dimensions:
        total *= size
    if not 0 <= rank < total:
        raise ValueError(f"rank {rank} outside [0, {total})")
    coordinates = []
    for size in reversed(dimensions):
        coordinates.append(rank % size)
        rank //= size
    return tuple(reversed(coordinates))


def grid_size(dimensions: Sequence[int]) -> int:
    """Total number of grid points ``prod_i p_i``."""
    total = 1
    for size in dimensions:
        total *= size
    return total
