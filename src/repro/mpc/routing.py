"""Seeded hash families and hypercube addressing (Section 3.1).

The HC algorithm needs ``k`` independent hash functions
``h_i : [n] -> [p_i]``, one per query variable.  We derive them from a
single 64-bit seed with a splitmix64-style mixer: deterministic across
runs and processes (reproducible experiments) while behaving like
independent uniform hashing, which is what the Chernoff load argument
of Proposition 3.2 needs on matching inputs.  Per-dimension keys come
from blake2b rather than Python's salted ``hash()`` so that two
processes with the same seed route identically.

Hashing comes in two bit-identical flavours: the scalar
:meth:`HashFamily.hash_value` (the reference path) and the columnar
:meth:`HashFamily.hash_column`, which mixes a whole value column in
one vectorized splitmix64 pass under the numpy backend.

The grid helpers convert between a worker's flat index in ``[0, P)``
and its coordinates in the ``[p_1] x ... x [p_k]`` hypercube
(mixed-radix encoding); :func:`grid_rank_columns` ranks a batch of
coordinate columns at once.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Sequence

from repro.backend import numpy_or_none

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def splitmix64(value: int) -> int:
    """The splitmix64 finaliser: a high-quality 64-bit mixer."""
    value = (value + _GOLDEN) & _MASK64
    value = ((value ^ (value >> 30)) * _MIX1) & _MASK64
    value = ((value ^ (value >> 27)) * _MIX2) & _MASK64
    return value ^ (value >> 31)


@lru_cache(maxsize=None)
def _dimension_key(dimension: str) -> int:
    """A stable 64-bit key per dimension name (process-independent)."""
    digest = hashlib.blake2b(
        dimension.encode("utf-8"), digest_size=8
    ).digest()
    return splitmix64(int.from_bytes(digest, "big"))


def _splitmix64_array(values: Any, numpy: Any) -> Any:
    """Vectorized splitmix64 over a uint64 array (wrapping mod 2^64)."""
    u64 = numpy.uint64
    values = (values + u64(_GOLDEN))
    values = (values ^ (values >> u64(30))) * u64(_MIX1)
    values = (values ^ (values >> u64(27))) * u64(_MIX2)
    return values ^ (values >> u64(31))


@dataclass(frozen=True)
class HashFamily:
    """A keyed family of hash functions indexed by dimension name.

    Two families with the same seed agree everywhere; distinct
    dimension names give (empirically) independent functions.
    """

    seed: int = 0

    def hash_value(self, dimension: str, value: int, buckets: int) -> int:
        """Hash ``value`` into ``[0, buckets)`` for one dimension.

        Args:
            dimension: the variable name owning this hash function.
            value: the domain value to hash.
            buckets: the share ``p_i`` of the dimension (>= 1).
        """
        if buckets < 1:
            raise ValueError(f"need >= 1 bucket, got {buckets}")
        if buckets == 1:
            return 0
        mixed = splitmix64(
            (self.seed ^ _dimension_key(dimension)) + value * _GOLDEN
        )
        return mixed % buckets

    def hash_column(
        self, dimension: str, values: Any, buckets: int
    ) -> Any:
        """Hash a whole value column into ``[0, buckets)`` at once.

        Bit-identical to mapping :meth:`hash_value` over ``values``.
        When ``values`` is a numpy array (and numpy is enabled) the
        mix runs as one vectorized uint64 pass and an int64 array is
        returned; otherwise a plain list of ints comes back.

        Args:
            dimension: the variable name owning this hash function.
            values: the domain values to hash (sequence or ndarray).
            buckets: the share ``p_i`` of the dimension (>= 1).
        """
        if buckets < 1:
            raise ValueError(f"need >= 1 bucket, got {buckets}")
        numpy = numpy_or_none()
        vectorized = numpy is not None and isinstance(
            values, numpy.ndarray
        )
        if vectorized:
            if buckets == 1:
                return numpy.zeros(len(values), dtype=numpy.int64)
            base = (self.seed ^ _dimension_key(dimension)) & _MASK64
            mixed = _splitmix64_array(
                numpy.uint64(base)
                + values.astype(numpy.uint64) * numpy.uint64(_GOLDEN),
                numpy,
            )
            return (mixed % numpy.uint64(buckets)).astype(numpy.int64)
        if buckets == 1:
            return [0] * len(values)
        base = self.seed ^ _dimension_key(dimension)
        return [
            splitmix64(base + value * _GOLDEN) % buckets
            for value in values
        ]


def residual_key(values: Sequence[int]) -> int:
    """Fold a residual tuple into one 64-bit key (order-sensitive).

    The skew-aware heavy-grid split hashes the *residual* attributes
    of a tuple (everything except the heavy dimension) to pick its row
    or column in the ``g1 x g2`` sub-grid.  The fold is a splitmix64
    chain so :func:`residual_key_columns` can reproduce it exactly
    with wrapping uint64 array arithmetic.
    """
    key = 0
    for value in values:
        key = splitmix64((key ^ (value * _GOLDEN)) & _MASK64)
    return key


def residual_key_columns(columns: Sequence[Any], num_rows: int) -> Any:
    """Vectorized :func:`residual_key` over parallel value columns.

    Bit-identical to mapping :func:`residual_key` over the rows formed
    by zipping ``columns``; returns a uint64 array (numpy backend
    required).  ``num_rows`` disambiguates the zero-column case (a
    heavy dimension on a unary atom has an empty residual).
    """
    numpy = numpy_or_none()
    if numpy is None:
        raise RuntimeError("residual_key_columns requires numpy")
    keys = numpy.zeros(num_rows, dtype=numpy.uint64)
    for column in columns:
        keys = _splitmix64_array(
            keys ^ (column.astype(numpy.uint64) * numpy.uint64(_GOLDEN)),
            numpy,
        )
    return keys


def grid_rank(coordinates: Sequence[int], dimensions: Sequence[int]) -> int:
    """Flatten hypercube coordinates to a worker index (mixed radix).

    Args:
        coordinates: one coordinate per dimension, ``0 <= c_i < p_i``.
        dimensions: the shares ``(p_1, ..., p_k)``.
    """
    if len(coordinates) != len(dimensions):
        raise ValueError("coordinate/dimension length mismatch")
    rank = 0
    for coordinate, size in zip(coordinates, dimensions):
        if not 0 <= coordinate < size:
            raise ValueError(
                f"coordinate {coordinate} outside [0, {size})"
            )
        rank = rank * size + coordinate
    return rank


def grid_weights(dimensions: Sequence[int]) -> tuple[int, ...]:
    """Mixed-radix weight of each dimension: ``w_i = prod_{j>i} p_j``.

    ``grid_rank(c, dims) == sum_i c_i * w_i`` -- the weights let a
    batch of coordinate columns be ranked with one multiply-add per
    dimension instead of a per-row loop.
    """
    weights = [1] * len(dimensions)
    for index in range(len(dimensions) - 2, -1, -1):
        weights[index] = weights[index + 1] * dimensions[index + 1]
    return tuple(weights)


def grid_rank_columns(
    coordinate_columns: Sequence[Any], dimensions: Sequence[int]
) -> Any:
    """Batched :func:`grid_rank` over parallel coordinate columns.

    Args:
        coordinate_columns: one column per dimension; all the same
            length (numpy int arrays or Python sequences).
        dimensions: the shares ``(p_1, ..., p_k)``.

    Returns:
        The flat rank per row -- an int64 array when the columns are
        numpy arrays, else a list of ints.
    """
    if len(coordinate_columns) != len(dimensions):
        raise ValueError("coordinate/dimension length mismatch")
    weights = grid_weights(dimensions)
    numpy = numpy_or_none()
    if numpy is not None and coordinate_columns and isinstance(
        coordinate_columns[0], numpy.ndarray
    ):
        ranks = numpy.zeros(len(coordinate_columns[0]), dtype=numpy.int64)
        for column, weight in zip(coordinate_columns, weights):
            ranks += column * weight
        return ranks
    if not coordinate_columns:
        return []
    return [
        sum(coordinate * weight for coordinate, weight in zip(row, weights))
        for row in zip(*coordinate_columns)
    ]


def grid_coordinates(rank: int, dimensions: Sequence[int]) -> tuple[int, ...]:
    """Inverse of :func:`grid_rank`."""
    total = 1
    for size in dimensions:
        total *= size
    if not 0 <= rank < total:
        raise ValueError(f"rank {rank} outside [0, {total})")
    coordinates = []
    for size in reversed(dimensions):
        coordinates.append(rank % size)
        rank //= size
    return tuple(reversed(coordinates))


def grid_size(dimensions: Sequence[int]) -> int:
    """Total number of grid points ``prod_i p_i``."""
    total = 1
    for size in dimensions:
        total *= size
    return total
