"""MPC(eps) model parameters (Section 2.1).

:class:`MPCConfig` bundles the three knobs of the model -- the number
of workers ``p``, the space exponent ``eps``, and the constant ``c`` in
the capacity bound ``c * N / p^{1-eps}`` -- and computes the per-round
per-worker receive capacity for a given input size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction


@dataclass(frozen=True)
class MPCConfig:
    """Parameters of an MPC(eps) execution.

    Attributes:
        p: number of workers (>= 1).
        eps: space exponent in ``[0, 1]``; ``eps = 0`` is the basic
            MPC model (no replication), ``eps = 1`` is degenerate
            (each worker may receive the entire input).
        c: the hidden constant of the ``O(N / p^{1-eps})`` capacity.
        backend: compute backend for executions driven by this config
            (``"pure"`` reference loops or vectorized ``"numpy"``);
            purely an execution-engine choice -- answers and load
            accounting are backend-independent.
    """

    p: int
    eps: Fraction = Fraction(0)
    c: float = 2.0
    backend: str = "pure"

    def __post_init__(self) -> None:
        if self.p < 1:
            raise ValueError(f"need p >= 1 workers, got {self.p}")
        eps = Fraction(self.eps)
        if not 0 <= eps <= 1:
            raise ValueError(f"space exponent must be in [0, 1], got {eps}")
        object.__setattr__(self, "eps", eps)
        if self.c <= 0:
            raise ValueError(f"capacity constant must be > 0, got {self.c}")
        from repro.backend import resolve_backend

        object.__setattr__(self, "backend", resolve_backend(self.backend))

    def capacity_bits(self, input_bits: int) -> float:
        """Per-worker per-round receive budget ``c * N / p^{1-eps}``."""
        if input_bits < 0:
            raise ValueError(f"input size must be >= 0, got {input_bits}")
        exponent = float(1 - self.eps)
        return self.c * input_bits / (self.p ** exponent)

    def replication_budget(self) -> float:
        """Total data exchanged per round relative to ``N``: ``p^eps``.

        Summing the per-worker capacity over all ``p`` workers gives
        ``c * N * p^eps``: the replication factor is ``O(p^eps)``.
        """
        return float(self.p) ** float(self.eps)

    def describe(self) -> str:
        """Human-readable one-line summary."""
        return (
            f"MPC(eps={self.eps}) with p={self.p}, capacity "
            f"{self.c}*N/p^{float(1 - self.eps):.3g}"
        )


def degenerate_rounds(config: MPCConfig) -> int:
    """Rounds after which the model becomes degenerate.

    Running for ``Theta(p^{1-eps})`` rounds lets every worker receive
    the entire input; bound used by tests to keep experiments honest.
    """
    return math.ceil(config.p ** float(1 - config.eps))
