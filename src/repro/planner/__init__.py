"""The cost-based planner behind the Session front door.

Splits into two halves:

* :mod:`repro.planner.stats` -- cheap, data-dependent statistics: a
  :class:`DataProfile` of relation cardinalities and skew samples
  (heavy-hitter detection under the query's own HyperCube shares).
* :mod:`repro.planner.planner` -- the data-independent choice: every
  registered algorithm's declared cost model
  (:mod:`repro.algorithms.registry`) bids under the profile and the
  cheapest eligible bid wins, with a full :class:`Explain` report of
  the duel (chosen algorithm, shares, predicted rounds/load, the
  paper's bounds, every candidate's reason).
"""

from repro.planner.planner import (
    Candidate,
    Explain,
    Planner,
    PlannerChoice,
    PlannerStats,
)
from repro.planner.stats import DataProfile, collect_profile

__all__ = [
    "Candidate",
    "DataProfile",
    "Explain",
    "Planner",
    "PlannerChoice",
    "PlannerStats",
    "collect_profile",
]
