"""The cost-based planner: query + data profile -> algorithm choice.

The Beame-Koutris-Suciu results are *choices* -- one round or many,
which share vector, full or partial answers -- and the planner makes
them automatically so callers never have to name a ``run_*`` function:

1. collect every registered algorithm's :class:`CostEstimate` from its
   declared cost model (:mod:`repro.algorithms.registry`), fed by the
   statement's :class:`~repro.planner.stats.DataProfile`;
2. drop ineligible bids (one-round algorithms below the query's space
   exponent, inexact algorithms unless the statement opted in, plans
   that do not exist at the requested ``eps``);
3. pick the cheapest bid, ties broken by registry order
   (hypercube first -- the paper's default).

Every choice carries an :class:`Explain` report: the chosen algorithm
and shares, the predicted rounds/load, the paper's bounds for the
query (``tau*``, space exponent, round bounds at the effective
``eps``), and each candidate's bid -- so ``.explain()`` answers not
just *what* was chosen but *what it beat and why*.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.algorithms.registry import (
    CostEstimate,
    algorithm_names,
    get_algorithm,
)
from repro.core.bounds import round_lower_bound, round_upper_bound
from repro.core.covers import covering_number, space_exponent
from repro.core.query import ConjunctiveQuery, QueryError
from repro.planner.stats import DataProfile

#: Preference order for cost ties (the paper's defaults first).
_TIE_ORDER = ("hypercube", "skewaware", "multiround", "partial")


@dataclass(frozen=True)
class Candidate:
    """One algorithm's bid, as reported in an explain."""

    algorithm: str
    eligible: bool
    cost: float
    predicted_load: float
    rounds: int
    reason: str


@dataclass(frozen=True)
class Explain:
    """Why the planner routed a statement the way it did.

    Attributes:
        query_text: canonical text of the statement's query.
        algorithm: the chosen registry name.
        eps_requested: the statement's ``eps`` (None = automatic).
        eps_effective: the ``eps`` the compiled plan will carry.
        p / backend: execution parameters.
        tau_star: the query's fractional covering number.
        space_exponent: ``1 - 1/tau*`` (Theorem 1.1) -- the smallest
            budget any one-round algorithm can answer fully at.
        predicted_rounds: rounds the chosen algorithm will take.
        predicted_load: predicted per-worker tuples of the heaviest
            round.
        round_bounds: the paper's (lower, upper) round bounds at the
            effective eps (None for disconnected queries).
        shares: the integer share vector of the chosen route (None for
            multi-round plans, whose operators each own a grid).
        heavy_values: per variable, how many heavy values the skew
            sample found (only non-zero entries).
        candidates: every algorithm's bid, chosen first.
        profile_sampled: the skew statistics came from a stride
            sample, not a full scan.
        pinned: the statement named the algorithm explicitly -- the
            costs are reported but did not decide.
        ivm: how incremental view maintenance served the execution
            that produced this explain: ``"merged"`` when the answer
            came from a delta merge, a named fallback reason when the
            full path ran instead, or None when IVM was not consulted
            (first execution at a version, cache hit, or IVM off).
            Always None on a pre-execution ``.explain()``.
    """

    query_text: str
    algorithm: str
    eps_requested: Fraction | None
    eps_effective: Fraction | None
    p: int
    backend: str
    tau_star: Fraction
    space_exponent: Fraction
    predicted_rounds: int
    predicted_load: float
    round_bounds: tuple[int, int] | None
    shares: tuple[tuple[str, int], ...] | None
    heavy_values: tuple[tuple[str, int], ...]
    candidates: tuple[Candidate, ...]
    profile_sampled: bool
    pinned: bool
    ivm: str | None = None

    def to_dict(self) -> dict:
        """A JSON-friendly rendering (the RPC ``explain`` payload)."""
        return {
            "query": self.query_text,
            "algorithm": self.algorithm,
            "eps_requested": _frac_str(self.eps_requested),
            "eps_effective": _frac_str(self.eps_effective),
            "p": self.p,
            "backend": self.backend,
            "tau_star": _frac_str(self.tau_star),
            "space_exponent": _frac_str(self.space_exponent),
            "predicted_rounds": self.predicted_rounds,
            "predicted_load": self.predicted_load,
            "round_bounds": list(self.round_bounds)
            if self.round_bounds
            else None,
            "shares": dict(self.shares) if self.shares else None,
            "heavy_values": dict(self.heavy_values),
            "profile_sampled": self.profile_sampled,
            "pinned": self.pinned,
            "ivm": self.ivm,
            "candidates": [
                {
                    "algorithm": candidate.algorithm,
                    "eligible": candidate.eligible,
                    "cost": candidate.cost,
                    "predicted_load": candidate.predicted_load,
                    "rounds": candidate.rounds,
                    "reason": candidate.reason,
                }
                for candidate in self.candidates
            ],
        }

    def format(self) -> str:
        """Human-readable report (the CLI's ``repro explain``)."""
        from repro.analysis.reporting import format_table

        rows = [
            ["query", self.query_text],
            ["chosen algorithm", self.algorithm
             + (" (pinned by caller)" if self.pinned else "")],
            ["p (servers)", self.p],
            ["backend", self.backend],
            ["eps requested", _frac_str(self.eps_requested) or "auto"],
            ["eps effective", _frac_str(self.eps_effective) or "per-query"],
            ["tau* (covering number)", self.tau_star],
            ["space exponent (Thm 1.1)", self.space_exponent],
            ["predicted rounds", self.predicted_rounds],
            ["predicted load (tuples/worker)",
             f"{self.predicted_load:.1f}"],
        ]
        if self.round_bounds is not None:
            rows.append(
                ["paper round bounds (lower, upper)", self.round_bounds]
            )
        if self.shares is not None:
            rows.append(["shares", dict(self.shares)])
        heavy = {v: c for v, c in self.heavy_values if c}
        rows.append(
            ["heavy values sampled", heavy or "none"]
        )
        if self.ivm is not None:
            rows.append(["incremental maintenance", self.ivm])
        header = format_table(["property", "value"], rows)
        bids = format_table(
            ["candidate", "eligible", "cost", "load", "rounds", "why"],
            [
                [
                    candidate.algorithm,
                    "yes" if candidate.eligible else "no",
                    "inf" if candidate.cost == float("inf")
                    else f"{candidate.cost:.1f}",
                    "inf" if candidate.predicted_load == float("inf")
                    else f"{candidate.predicted_load:.1f}",
                    candidate.rounds,
                    candidate.reason,
                ]
                for candidate in self.candidates
            ],
            title="planner bids (chosen first)",
        )
        return f"{header}\n\n{bids}"


def _frac_str(value: Fraction | None) -> str | None:
    return None if value is None else str(value)


@dataclass(frozen=True)
class PlannerChoice:
    """The planner's routing decision for one statement.

    ``eps`` is what the compiler should be called with (None lets the
    algorithm use its own per-query default, matching the bare
    ``run_*`` call).
    """

    algorithm: str
    eps: Fraction | None
    explain: Explain


@dataclass
class PlannerStats:
    """Counters for observability: what the planner has been choosing."""

    decisions: int = 0
    pinned: int = 0
    decision_cache_hits: int = 0
    by_algorithm: dict[str, int] | None = None

    def record(self, choice: PlannerChoice) -> None:
        if self.by_algorithm is None:
            self.by_algorithm = {}
        self.decisions += 1
        if choice.explain.pinned:
            self.pinned += 1
        self.by_algorithm[choice.algorithm] = (
            self.by_algorithm.get(choice.algorithm, 0) + 1
        )


class Planner:
    """Chooses the algorithm (and eps) for each statement.

    Args:
        p: worker count every choice is made for.
        backend: resolved compute backend (recorded in explains).
        stats: shared counters (a session passes its own).
    """

    def __init__(
        self,
        p: int,
        backend: str,
        stats: PlannerStats | None = None,
    ) -> None:
        self.p = p
        self.backend = backend
        self.stats = stats if stats is not None else PlannerStats()

    def choose(
        self,
        query: ConjunctiveQuery,
        profile: DataProfile,
        *,
        eps: Fraction | None = None,
        algorithm: str | None = None,
        allow_partial: bool = False,
    ) -> PlannerChoice:
        """Route one statement.

        Args:
            query: the parsed statement query.
            profile: data statistics for the current database version.
            eps: optional pinned space exponent; None = automatic
                (one-round algorithms use the query's own exponent,
                multi-round plans use 0).
            algorithm: optional pinned registry name -- skips the cost
                duel but still produces a full explain.
            allow_partial: permit the inexact below-threshold
                algorithm to win (it can only win when ``eps`` is
                pinned below the query's space exponent).

        Raises:
            QueryError: unknown pinned algorithm, or no eligible
                algorithm at the pinned ``eps``.
        """
        eps = None if eps is None else Fraction(eps)
        if algorithm is not None:
            get_algorithm(algorithm)  # raises on unknown names
        ordered = [
            name
            for name in _TIE_ORDER
            if name in algorithm_names()
        ] + [
            name for name in algorithm_names() if name not in _TIE_ORDER
        ]
        bids: list[Candidate] = []
        shares_by_algorithm: dict[str, tuple | None] = {}
        for name in ordered:
            spec = get_algorithm(name)
            try:
                estimate = spec.cost(query, profile, self.p, eps)
            except QueryError as error:
                estimate = CostEstimate(
                    eligible=False,
                    cost=float("inf"),
                    predicted_load=float("inf"),
                    rounds=0,
                    shares=None,
                    reason=str(error),
                )
            shares_by_algorithm[name] = estimate.shares
            if estimate.eligible and not spec.exact and not (
                allow_partial or algorithm == name
            ):
                estimate = CostEstimate(
                    eligible=False,
                    cost=float("inf"),
                    predicted_load=estimate.predicted_load,
                    rounds=estimate.rounds,
                    shares=estimate.shares,
                    reason="inexact (partial answers); pass "
                    "allow_partial=True to opt in",
                )
            bids.append(
                Candidate(
                    algorithm=name,
                    eligible=estimate.eligible,
                    cost=estimate.cost,
                    predicted_load=estimate.predicted_load,
                    rounds=estimate.rounds,
                    reason=estimate.reason,
                )
            )
        estimates = {bid.algorithm: bid for bid in bids}

        if algorithm is not None:
            chosen = algorithm
        else:
            eligible = [bid for bid in bids if bid.eligible]
            if not eligible:
                reasons = "; ".join(
                    f"{bid.algorithm}: {bid.reason}" for bid in bids
                )
                raise QueryError(
                    f"no algorithm can answer {query} at eps={eps} "
                    f"({reasons})"
                )
            chosen = min(eligible, key=lambda bid: bid.cost).algorithm

        chosen_bid = estimates[chosen]
        tau = covering_number(query)
        query_eps = space_exponent(query)
        eps_effective = self._effective_eps(chosen, eps, query_eps)
        round_bounds: tuple[int, int] | None = None
        if query.is_connected and eps_effective is not None:
            try:
                lower = round_lower_bound(query, eps_effective)
            except QueryError:
                lower = 1  # Corollary 4.8 needs tree-like queries
            try:
                round_bounds = (lower, round_upper_bound(query, eps_effective))
            except QueryError:
                round_bounds = None
        explain = Explain(
            query_text=str(query),
            algorithm=chosen,
            eps_requested=eps,
            eps_effective=eps_effective,
            p=self.p,
            backend=self.backend,
            tau_star=tau,
            space_exponent=query_eps,
            predicted_rounds=chosen_bid.rounds,
            predicted_load=chosen_bid.predicted_load,
            round_bounds=round_bounds,
            shares=shares_by_algorithm.get(chosen),
            heavy_values=tuple(
                (variable, count)
                for variable, count in profile.heavy_values
            ),
            candidates=tuple(
                sorted(bids, key=lambda bid: bid.algorithm != chosen)
            ),
            profile_sampled=profile.sampled,
            pinned=algorithm is not None,
        )
        choice = PlannerChoice(
            algorithm=chosen,
            eps=self._compile_eps(chosen, eps),
            explain=explain,
        )
        self.stats.record(choice)
        return choice

    @staticmethod
    def _compile_eps(chosen: str, eps: Fraction | None) -> Fraction | None:
        """The ``eps`` to hand the compiler (None = its own default)."""
        return eps

    @staticmethod
    def _effective_eps(
        chosen: str, eps: Fraction | None, query_eps: Fraction
    ) -> Fraction | None:
        if eps is not None:
            return eps
        if chosen in ("hypercube", "skewaware"):
            return query_eps
        if chosen == "multiround":
            return Fraction(0)
        return None
