"""Cheap data statistics the planner reads before choosing a route.

A :class:`DataProfile` is the planner's whole view of the data:
relation cardinalities plus a *skew sample* -- the heavy-hitter scan
of :func:`repro.algorithms.skewaware.detect_heavy_hitters` run under
the query's own HyperCube shares, on a deterministic stride sample
when relations are large.  Collection is O(data scanned) with no
joins, so profiling a statement costs far less than executing it; the
serving layer caches profiles per (query, database version).

Heavy multiplicities (the count of the most frequent heavy value per
variable) feed the registry cost models directly: plain HC's
predicted load rises to the full multiplicity, skew-aware's only to
``multiplicity / isqrt(share)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.algorithms.skewaware import detect_heavy_hitters
from repro.backend import NUMPY, resolve_backend
from repro.core.covers import fractional_vertex_cover
from repro.core.query import ConjunctiveQuery
from repro.core.shares import allocate_integer_shares, share_exponents
from repro.data.columnar import ColumnarRelation

#: Relations beyond this many rows are profiled on a stride sample.
SAMPLE_CAP = 100_000


@dataclass(frozen=True)
class DataProfile:
    """What the planner knows about the data, and nothing more.

    Attributes:
        relation_rows: per relation of the query, its cardinality.
        total_rows: sum of the above (the paper's ``n`` stands in for
            this in load formulas).
        heavy_values: per variable, how many distinct heavy values the
            skew sample found (a value is heavy when it appears more
            often than ``|S| / share`` -- a balanced hash bucket).
        heavy_multiplicities: per variable, the multiplicity of its
            most frequent heavy value (scaled back up when sampled).
        sampled: True when any relation was stride-sampled.
        version: database version the profile was computed at (-1 when
            the source had no version).
    """

    relation_rows: tuple[tuple[str, int], ...]
    total_rows: int
    heavy_values: tuple[tuple[str, int], ...]
    heavy_multiplicities: tuple[tuple[str, int], ...]
    sampled: bool
    version: int = -1

    def heavy_multiplicity(self, variable: str) -> int:
        """Most frequent heavy multiplicity on ``variable`` (0 if none)."""
        return dict(self.heavy_multiplicities).get(variable, 0)

    @property
    def has_skew(self) -> bool:
        """True when any variable sampled a heavy value."""
        return any(count for _, count in self.heavy_values)

    @property
    def max_rows(self) -> int:
        """Largest relation cardinality."""
        return max((rows for _, rows in self.relation_rows), default=0)


def _stride_sample(
    relation: ColumnarRelation, cap: int, backend: str
) -> ColumnarRelation:
    """Every k-th row, deterministically, when the relation is large."""
    size = len(relation)
    if size <= cap:
        return relation
    stride = -(-size // cap)  # ceil division
    if backend == NUMPY:
        columns = tuple(column[::stride] for column in relation.columns)
    else:
        columns = tuple(
            list(column[::stride]) for column in relation.columns
        )
    return ColumnarRelation(
        name=relation.name,
        arity=relation.arity,
        columns=columns,
        domain_size=relation.domain_size,
        backend=relation.backend,
    )


def collect_profile(
    query: ConjunctiveQuery,
    database: Mapping[str, ColumnarRelation],
    *,
    backend: str | None = None,
    sample_cap: int = SAMPLE_CAP,
    version: int = -1,
) -> DataProfile:
    """Profile ``database`` for ``query`` under its own HC shares.

    Args:
        query: the statement's query; only its relations are scanned.
        database: relation name -> columnar relation (a
            :class:`~repro.data.columnar.ColumnarDatabase` or
            :class:`~repro.data.versioned.VersionedDatabase` snapshot
            both satisfy this).
        backend: compute backend for the heavy-hitter scan.
        sample_cap: stride-sample relations beyond this many rows.
        version: recorded verbatim on the profile (cache stamping).
    """
    backend = resolve_backend(backend)
    cover = fractional_vertex_cover(query)
    shares = allocate_integer_shares(
        share_exponents(query, cover), p=_profile_p(query, cover)
    ).shares

    sampled = False
    sources: dict[str, ColumnarRelation] = {}
    relation_rows: list[tuple[str, int]] = []
    for atom in query.atoms:
        relation = database[atom.name]
        relation_rows.append((atom.name, len(relation)))
        sample = _stride_sample(relation, sample_cap, backend)
        sampled = sampled or sample is not relation
        sources[atom.name] = sample

    heavy_sets = detect_heavy_hitters(
        query, sources, shares, backend=backend, columnar=sources
    )
    multiplicities = _heavy_multiplicities(query, sources, heavy_sets)
    # A sampled scan undercounts by the stride factor; scale back so
    # cost models compare multiplicities against full cardinalities.
    if sampled:
        scaled: dict[str, int] = {}
        for atom in query.atoms:
            full = dict(relation_rows)[atom.name]
            seen = len(sources[atom.name])
            factor = full / seen if seen else 1.0
            for variable in atom.variable_set:
                if multiplicities.get(variable):
                    scaled[variable] = max(
                        scaled.get(variable, 0),
                        int(multiplicities[variable] * factor),
                    )
        for variable, count in scaled.items():
            multiplicities[variable] = count

    return DataProfile(
        relation_rows=tuple(relation_rows),
        total_rows=sum(rows for _, rows in relation_rows),
        heavy_values=tuple(
            (variable, len(values))
            for variable, values in sorted(heavy_sets.items())
        ),
        heavy_multiplicities=tuple(sorted(multiplicities.items())),
        sampled=sampled,
        version=version,
    )


def _profile_p(query: ConjunctiveQuery, cover: Mapping) -> int:
    """A nominal worker count for the profiling shares.

    The profile is collected once per (query, version) and consulted
    for any ``p``, so the heavy-hitter threshold uses a fixed nominal
    grid (16 workers) -- skew strong enough to matter shows up at any
    reasonable share split.
    """
    return 16


def _heavy_multiplicities(
    query: ConjunctiveQuery,
    sources: Mapping[str, ColumnarRelation],
    heavy_sets: Mapping[str, frozenset[int]],
) -> dict[str, int]:
    """Per variable, the count of its most frequent heavy value.

    Only variables whose heavy set is non-empty are scanned again, so
    the common skew-free profile pays nothing here.
    """
    multiplicities: dict[str, int] = {}
    for atom in query.atoms:
        positions = [
            (position, variable)
            for position, variable in enumerate(atom.variables)
            if heavy_sets.get(variable)
        ]
        if not positions:
            continue
        relation = sources[atom.name]
        for position, variable in positions:
            heavy = heavy_sets[variable]
            counts: dict[int, int] = {}
            column = relation.columns[position]
            values = (
                column.tolist()
                if hasattr(column, "tolist")
                else column
            )
            for value in values:
                if value in heavy:
                    counts[value] = counts.get(value, 0) + 1
            if counts:
                multiplicities[variable] = max(
                    multiplicities.get(variable, 0), max(counts.values())
                )
    return multiplicities
