"""Connected components: the Omega(log p) wall (Theorem 4.10).

The paper closes with a striking consequence of the ``L_k`` round
lower bound: on sparse graphs, *no* tuple-based MPC(eps < 1) algorithm
computes connected components in O(1) rounds -- rounds must grow like
``log p``.  Dense graphs escape: the two-round spanning-forest
algorithm of Karloff et al. applies.

This script runs both sides on the simulator:

* sparse layered path graphs with ``~sqrt(p)`` layers (the hard
  instances from the theorem's proof): measured rounds climb with p;
* dense random graphs: always exactly 2 rounds.

Run:  python examples/connected_components.py
"""

from __future__ import annotations

from repro.analysis import format_table, sweep_components_rounds


def main() -> None:
    rows = sweep_components_rounds(
        p_values=(4, 16, 64, 256), layer_size=16, seed=1
    )
    print(
        format_table(
            [
                "p",
                "path length k",
                "sparse rounds (measured)",
                "Thm 4.10 lower bound",
                "dense rounds (measured)",
            ],
            [
                [
                    row["p"],
                    row["path_length_k"],
                    row["sparse_rounds"],
                    row["lower_bound"],
                    row["dense_rounds"],
                ]
                for row in rows
            ],
            title="CONNECTED-COMPONENTS: rounds vs p "
            "(sparse grows ~log p, dense stays at 2)",
        )
    )


if __name__ == "__main__":
    main()
