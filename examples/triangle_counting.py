"""Triangle counting with HyperCube shares (Suri-Vassilvitskii).

The cycle query ``C3(x,y,z) = S1(x,y), S2(y,z), S3(z,x)`` is the
canonical "hard" one-round query: ``tau* = 3/2`` forces space exponent
``1/3``, i.e. every tuple must be replicated ``p^{1/3}`` times.  This
script counts triangles of a random graph by loading its edge set into
all three relations and running HC, then shows what happens when you
*refuse* to pay the replication (run at eps = 0 with Proposition 3.11:
most triangles are missed, at the predicted rate).

Run:  python examples/triangle_counting.py
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro.algorithms import run_hypercube, run_partial_hypercube
from repro.algorithms.localjoin import evaluate_query
from repro.core import one_round_answer_fraction, parse_query
from repro.data import Database, Relation


def random_graph_relation(
    name: str, num_vertices: int, num_edges: int, rng: random.Random
) -> Relation:
    """A symmetric edge relation (both orientations stored)."""
    edges: set[tuple[int, int]] = set()
    while len(edges) < num_edges:
        u = rng.randint(1, num_vertices)
        v = rng.randint(1, num_vertices)
        if u != v:
            edges.add((u, v))
            edges.add((v, u))
    return Relation.from_tuples(name, edges, domain_size=num_vertices)


def main() -> None:
    rng = random.Random(11)
    num_vertices, num_edges, p = 120, 900, 27

    base = random_graph_relation("S1", num_vertices, num_edges, rng)
    database = Database.from_relations(
        [
            base,
            Relation.from_tuples("S2", base.tuples, num_vertices),
            Relation.from_tuples("S3", base.tuples, num_vertices),
        ]
    )
    query = parse_query("C3(x,y,z) = S1(x,y), S2(y,z), S3(z,x)")

    truth = evaluate_query(
        query, {name: database[name].tuples for name in database.relations}
    )
    # Each triangle appears 6 times as an ordered (x, y, z) answer.
    print(f"graph: {num_vertices} vertices, {len(base) // 2} edges, "
          f"{len(truth) // 6} triangles")

    result = run_hypercube(query, database, p=p, seed=5)
    assert result.answers == truth
    print(f"\nHC with shares {result.allocation.shares} on p={p}:")
    print(f"  found all {len(result.answers)} ordered triangles")
    print(f"  max load {result.report.max_load_tuples} tuples "
          f"(input {database.total_tuples} tuples)")
    print(f"  replication rate {result.report.replication_rate:.2f} "
          f"~ p^(1/3) = {p ** (1 / 3):.2f}")

    # Refusing to replicate: eps = 0 cannot compute C3 in one round.
    partial = run_partial_hypercube(
        query, database, p=p, eps=Fraction(0), seed=5
    )
    bound = one_round_answer_fraction(query, Fraction(0), p)
    print(f"\nat eps=0 (no replication) only "
          f"{partial.reported_fraction:.1%} of answers were found; "
          f"Theorem 3.3 caps one-round algorithms at ~{bound:.1%}")


if __name__ == "__main__":
    main()
