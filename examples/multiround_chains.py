"""Multi-round plans for chain queries: the rounds/space tradeoff.

Example 4.2 of the paper: ``L_16`` at ``eps = 1/2`` has a depth-2 plan
(four ``L_4`` joins, then an ``L_4`` of views), while ``eps = 0``
forces a binary bushy tree of depth 4.  This script builds plans for
several ``(k, eps)`` combinations with the generic plan builder, runs
each on the simulator, verifies the answers, and prints the measured
round counts next to the paper's ``ceil(log_{k_eps} k)`` target and
the Corollary 4.8 lower bound.

Run:  python examples/multiround_chains.py
"""

from __future__ import annotations

from fractions import Fraction

from repro.analysis import format_table, sweep_multiround_rounds
from repro.core import build_plan, line_query


def main() -> None:
    rows = sweep_multiround_rounds(
        k_values=(4, 8, 16),
        eps_values=(Fraction(0), Fraction(1, 2), Fraction(2, 3)),
        n=80,
        p=8,
        seed=3,
    )
    print(
        format_table(
            [
                "query",
                "eps",
                "k_eps",
                "rounds (measured)",
                "paper ceil(log_keps k)",
                "lower bound",
                "upper bound",
            ],
            [
                [
                    row["query"],
                    row["eps"],
                    row["k_eps"],
                    row["rounds_measured"],
                    row["paper_rounds"],
                    row["lower_bound"],
                    row["upper_bound"],
                ]
                for row in rows
            ],
            title="Rounds/space tradeoff for chain queries (Table 2)",
        )
    )

    # Show one plan in full.
    plan = build_plan(line_query(16), Fraction(1, 2))
    print(f"\nThe depth-{plan.depth} plan for L16 at eps=1/2:")
    for index, round_ in enumerate(plan.rounds, start=1):
        for step in round_.steps:
            print(f"  round {index}: {step.output} := {step.query}")


if __name__ == "__main__":
    main()
