"""Session quickstart: one front door, a planner behind it.

The public API in five steps:

1. ``repro.connect(database)`` opens a :class:`repro.Session`;
2. ``session.query(text)`` prepares a lazy ``Statement``;
3. ``.explain()`` shows which algorithm the cost-based planner picks
   (and what it beat) without touching the data;
4. ``.execute()`` runs it -- bit-identical to calling the chosen
   algorithm's ``run_*`` entry point directly;
5. ``.stream()`` iterates answers lazily, and ``session.update``
   mutates the data under the caches.

Run:  python examples/session_quickstart.py
"""

from __future__ import annotations

from fractions import Fraction

import repro
from repro.core import parse_query
from repro.data import matching_database
from repro.data.generators import skewed_database


def main() -> None:
    # -- 1. connect over any database ----------------------------------
    triangle = parse_query("C3(x,y,z) = S1(x,y), S2(y,z), S3(z,x)")
    session = repro.connect(
        matching_database(triangle, n=200, rng=0), p=16
    )

    # -- 2-3. prepare a statement, ask the planner why -----------------
    statement = session.query(triangle)
    explain = statement.explain()
    print(f"query:            {triangle}")
    print(f"chosen algorithm: {explain.algorithm}")
    print(f"shares:           {dict(explain.shares or ())}")
    print(
        f"predicted:        {explain.predicted_rounds} round(s), "
        f"~{explain.predicted_load:.0f} tuples/worker"
    )
    print(f"beat:             "
          + ", ".join(c.algorithm for c in explain.candidates[1:]))

    # -- 4. execute (and re-execute: the second hit is memoized) -------
    result = statement.execute()
    print(f"answers:          {len(result.answers)} "
          f"(max load {result.report.max_load_tuples} tuples)")
    again = statement.execute()
    print(f"repeat cached:    {again.cached}")

    # -- 5. stream + update --------------------------------------------
    first_three = []
    for row in statement.stream():
        first_three.append(row)
        if len(first_three) == 3:
            break
    print(f"first rows:       {first_three}")
    version = session.update(inserts={"S1": [(7, 9)]})
    print(f"updated:          now at version {version}")

    # The planner routes by workload: a long chain goes multi-round,
    # a skewed join goes to heavy-hitter routing -- same front door.
    chain = parse_query(
        "S1(a,b), S2(b,c), S3(c,d), S4(d,e), S5(e,f), S6(f,g)"
    )
    chain_session = repro.connect(matching_database(chain, n=100, rng=0))
    print(f"long chain:       {chain_session.explain(chain).algorithm}")

    join = parse_query("S1(x,y), S2(y,z)")
    skew_session = repro.connect(
        skewed_database(join, n=200, rng=0, heavy_fraction=0.5)
    )
    print(f"skewed join:      {skew_session.explain(join).algorithm}")

    # Pinning is still one keyword away (and partial answers opt-in).
    pinned = chain_session.query(chain, algorithm="hypercube").execute()
    print(f"pinned HC:        {len(pinned.answers)} answers, "
          f"{pinned.report.max_load_tuples} max load")
    # Below C3's space exponent 1/3 a one-round algorithm cannot
    # report everything; opting in to partial answers takes the
    # Proposition 3.11 tradeoff instead of going multi-round.
    partial_session = repro.connect(matching_database(triangle, n=200, rng=0))
    total = len(partial_session.query(triangle).execute())
    partial = partial_session.query(
        triangle, eps=Fraction(1, 4), allow_partial=True
    ).execute()
    print(f"partial eps=1/4:  {partial.algorithm} reported "
          f"{len(partial.answers)} of {total} answers")

    # Multi-core: ``connect(db, workers=4)`` spawns four executor
    # processes over a shared-memory snapshot; independent statements
    # then run genuinely in parallel (the RPC server fans out across
    # them) with bit-identical answers.  Worth it for serving many
    # concurrent clients -- for a single closed loop like this script,
    # the in-process default is the right call.
    #
    #   fan_out = repro.connect(database, p=16, workers=4)
    #   ... fan_out.query(...).execute() ...
    #   fan_out.close()   # shuts workers down, unlinks segments


if __name__ == "__main__":
    main()
