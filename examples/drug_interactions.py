"""The introduction's drug-interaction example: cartesian tradeoffs.

Ullman's example: ``n`` drugs, a user-defined function applied to every
pair -- a cartesian product.  The two extremes both fail in practice:

* ``n^2`` reducers of size 2 -- replication rate ``n``;
* one reducer of size ``2n``     -- no parallelism at all.

The g-group tradeoff uses a ``g x g`` reducer grid: replication ``g``,
reducer input ``2n/g``.  With ``p`` servers the sweet spot is
``g = sqrt(p)``: this script sweeps ``g`` and prints both sides of the
tradeoff, measured exactly on the MPC simulator.

Run:  python examples/drug_interactions.py
"""

from __future__ import annotations

import math

from repro.analysis import format_table, sweep_cartesian_tradeoff


def main() -> None:
    n, p = 512, 64
    rows = sweep_cartesian_tradeoff(
        n=n, p=p, group_values=(1, 2, 4, 8), seed=7
    )
    print(
        format_table(
            [
                "g",
                "replication",
                "max reducer tuples",
                "theory 2n/g",
                "total tuples moved",
            ],
            [
                [
                    row["g"],
                    row["replication_rate"],
                    row["max_reducer_tuples"],
                    row["theory_reducer"],
                    row["total_tuples_moved"],
                ]
                for row in rows
            ],
            title=f"Cartesian product of two {n}-item sets on p={p} servers",
        )
    )
    print(
        f"\noptimal g = sqrt(p) = {int(math.sqrt(p))}: "
        "replication and reducer size meet in the middle."
    )


if __name__ == "__main__":
    main()
