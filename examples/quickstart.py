"""Quickstart: analyse a query and run HyperCube on one round.

Covers the core loop of the library:

1. write a conjunctive query in the paper's notation;
2. compute its fractional covering number ``tau*`` and space
   exponent ``eps = 1 - 1/tau*`` (Theorem 1.1) with the exact LP;
3. generate a random matching database (the paper's input model);
4. run the one-round HyperCube algorithm on a simulated MPC cluster
   and inspect answers, per-server load and replication rate;
5. re-run on the vectorized numpy backend (when available) and check
   the engines agree exactly.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.algorithms import run_hypercube
from repro.algorithms.localjoin import evaluate_query
from repro.backend import numpy_available
from repro.core import (
    analyze_covers,
    characteristic,
    parse_query,
    share_exponents,
)
from repro.data import matching_database


def main() -> None:
    # The triangle query C3 -- the paper's running example.
    query = parse_query("C3(x,y,z) = S1(x,y), S2(y,z), S3(z,x)")
    print(f"query:            {query}")

    analysis = analyze_covers(query)
    print(f"tau*:             {analysis.tau_star}")
    print(f"space exponent:   {analysis.space_exponent}")
    print(f"vertex cover:     {dict(analysis.vertex_cover)}")
    print(f"edge packing:     {dict(analysis.edge_packing)}")
    print(f"share exponents:  {share_exponents(query, analysis.vertex_cover)}")
    print(f"characteristic:   {characteristic(query)} "
          f"(E[|q|] = n^{1 + characteristic(query)})")

    # A uniform random matching database with domain size n.
    n, p = 200, 16
    database = matching_database(query, n=n, rng=42)
    print(f"\ninput: {database.total_tuples} tuples, "
          f"{database.total_bits} bits, matching={database.is_matching_database()}")

    result = run_hypercube(query, database, p=p, seed=42)
    truth = evaluate_query(
        query, {name: database[name].tuples for name in database.relations}
    )
    assert result.answers == truth

    print(f"\nHyperCube on p={p} servers "
          f"(grid {result.allocation.shares}):")
    print(f"answers found:    {len(result.answers)} (= exact join)")
    print(result.report.summary())

    # The columnar numpy engine runs the identical protocol, just
    # vectorized: same answers, same per-round load accounting.
    if numpy_available():
        vectorized = run_hypercube(
            query, database, p=p, seed=42, backend="numpy"
        )
        assert vectorized.answers == result.answers
        assert (
            vectorized.report.rounds[0].received_bits
            == result.report.rounds[0].received_bits
        )
        print("\nnumpy backend:    identical answers and load accounting")
    else:
        print("\nnumpy backend:    not available (pure reference only)")


if __name__ == "__main__":
    main()
