"""Needle in a haystack: the JOIN-WITNESS barrier (Proposition 3.12).

The query ``q = R(w), S1(w,x), S2(x,y), S3(y,z), T(z)`` with matchings
``S_i`` and sqrt(n)-sized endpoints ``R, T`` has exactly one expected
answer.  The paper proves no one-round MPC(eps) algorithm with
``eps < 1/2`` finds it except with polynomially small probability --
even producing a *single witness* requires the full replication budget
of the chain subquery.

This script hunts witnesses across p at eps = 0 and then repeats at the
legal eps = 1/2, showing the cliff: below budget the hit rate collapses
as 1/p; at budget every witness is found.

Run:  python examples/witness_hunt.py
"""

from __future__ import annotations

from fractions import Fraction

from repro.algorithms.witness import run_witness_experiment
from repro.analysis.reporting import format_table


def hunt(n: int, p: int, eps: Fraction, trials: int) -> tuple[int, int]:
    """(instances with a witness, witnesses found) over seeds."""
    eligible = found = 0
    for seed in range(trials):
        result = run_witness_experiment(n=n, p=p, eps=eps, seed=seed)
        if result.true_witnesses:
            eligible += 1
            if result.found:
                found += 1
    return eligible, found


def main() -> None:
    n, trials = 144, 24
    rows = []
    for p in (2, 4, 9, 16):
        low_eligible, low_found = hunt(n, p, Fraction(0), trials)
        high_eligible, high_found = hunt(n, p, Fraction(1, 2), trials)
        rows.append(
            [
                p,
                f"{low_found}/{low_eligible}",
                f"{high_found}/{high_eligible}",
            ]
        )
    print(
        format_table(
            ["p", "witnesses found at eps=0", "at eps=1/2 (the budget)"],
            rows,
            title=f"JOIN-WITNESS hunt (n={n}, {trials} instances per cell)",
        )
    )
    print(
        "\nBelow eps=1/2 the hit rate collapses like 1/p (Prop 3.12); "
        "at the budget the chain is fully recovered and every witness "
        "surfaces."
    )


if __name__ == "__main__":
    main()
