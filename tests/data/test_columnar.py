"""Unit tests for columnar relation storage and conversions."""

from __future__ import annotations

import pytest

from repro.backend import PURE, numpy_available
from repro.data.columnar import ColumnarRelation, columnar_database
from repro.data.database import Database, DataError, Relation

BACKENDS = ["pure"] + (["numpy"] if numpy_available() else [])

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend unavailable"
)


@pytest.fixture
def relation():
    return Relation.from_tuples(
        "R", [(3, 1), (1, 2), (2, 3), (1, 2)], domain_size=3
    )


class TestConversion:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_round_trip(self, relation, backend):
        columnar = ColumnarRelation.from_relation(relation, backend)
        assert columnar.to_relation() == relation

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_relation_to_columnar_method(self, relation, backend):
        assert relation.to_columnar(backend).to_relation() == relation

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_rows_sorted_and_deduped(self, backend):
        columnar = ColumnarRelation.from_rows(
            "R", [(2, 2), (1, 1), (2, 2)], domain_size=2, backend=backend
        )
        assert list(columnar.rows()) == [(1, 1), (2, 2)]
        assert len(columnar) == 2

    @needs_numpy
    def test_backends_agree_on_contents(self, relation):
        pure = ColumnarRelation.from_relation(relation, "pure")
        vectorized = ColumnarRelation.from_relation(relation, "numpy")
        assert list(pure.rows()) == list(vectorized.rows())

    @needs_numpy
    def test_with_backend_switches(self, relation):
        pure = ColumnarRelation.from_relation(relation, "pure")
        vectorized = pure.with_backend("numpy")
        assert vectorized.backend == "numpy"
        assert vectorized.to_relation() == relation
        assert pure.with_backend("pure") is pure

    def test_database_to_columnar(self, relation):
        database = Database.from_relations([relation])
        columnar = database.to_columnar(PURE)
        assert set(columnar) == {"R"}
        assert columnar["R"].to_relation() == database["R"]
        assert columnar == columnar_database(database, PURE)


class TestValidation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_domain_checked(self, backend):
        with pytest.raises(DataError, match="outside domain"):
            ColumnarRelation.from_rows(
                "R", [(1, 9)], domain_size=3, backend=backend
            )
        with pytest.raises(DataError, match="outside domain"):
            ColumnarRelation.from_rows(
                "R", [(0, 1)], domain_size=3, backend=backend
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_ragged_rows_rejected(self, backend):
        with pytest.raises(DataError, match="arity"):
            ColumnarRelation.from_rows(
                "R", [(1, 2), (1,)], domain_size=3, backend=backend
            )

    def test_empty_needs_explicit_arity(self):
        with pytest.raises(DataError, match="infer arity"):
            ColumnarRelation.from_rows("R", [], domain_size=3)
        empty = ColumnarRelation.from_rows("R", [], domain_size=3, arity=2)
        assert len(empty) == 0
        assert list(empty.rows()) == []


class TestAccounting:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bit_accounting_matches_row_relation(self, relation, backend):
        columnar = ColumnarRelation.from_relation(relation, backend)
        assert columnar.tuple_bits == relation.tuple_bits
        assert columnar.size_bits == relation.size_bits
