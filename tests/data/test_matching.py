"""Unit tests for matching-database generation (Section 2.5)."""

from __future__ import annotations

import random

import pytest

from repro.core.families import cycle_query, line_query
from repro.core.query import parse_query
from repro.data.database import DataError
from repro.data.matching import (
    identity_matching,
    matching_database,
    random_matching,
    random_permutation,
)


class TestRandomPermutation:
    def test_is_permutation(self, rng):
        values = random_permutation(20, rng)
        assert sorted(values) == list(range(1, 21))

    def test_seeded_reproducibility(self):
        a = random_permutation(10, random.Random(3))
        b = random_permutation(10, random.Random(3))
        assert a == b


class TestRandomMatching:
    @pytest.mark.parametrize("arity", [1, 2, 3, 4])
    def test_every_column_is_permutation(self, arity, rng):
        relation = random_matching("S", arity, 15, rng)
        assert relation.is_matching()
        assert len(relation) == 15

    def test_first_column_canonical(self, rng):
        relation = random_matching("S", 3, 10, rng)
        assert [row[0] for row in relation.tuples] == list(range(1, 11))

    def test_invalid_arguments(self, rng):
        with pytest.raises(DataError):
            random_matching("S", 0, 5, rng)
        with pytest.raises(DataError):
            random_matching("S", 2, 0, rng)

    def test_distribution_spreads(self):
        """Different seeds should give different matchings (n! >> 1)."""
        a = random_matching("S", 2, 30, random.Random(1))
        b = random_matching("S", 2, 30, random.Random(2))
        assert a.tuples != b.tuples


class TestIdentityMatching:
    def test_shape(self):
        relation = identity_matching("I", 3, 4)
        assert relation.tuples == tuple(
            (i, i, i) for i in range(1, 5)
        )
        assert relation.is_matching()


class TestMatchingDatabase:
    def test_vocabulary_respected(self, triangle):
        database = matching_database(triangle, n=12, rng=0)
        assert set(database.relations) == {"S1", "S2", "S3"}
        assert database.is_matching_database()

    def test_arities_follow_atoms(self):
        query = parse_query("R(x,y,z), S(z,w)")
        database = matching_database(query, n=8, rng=1)
        assert database["R"].arity == 3
        assert database["S"].arity == 2

    def test_int_seed_reproducible(self, chain4):
        a = matching_database(chain4, n=10, rng=5)
        b = matching_database(chain4, n=10, rng=5)
        assert all(
            a[name].tuples == b[name].tuples for name in a.relations
        )

    def test_identity_atoms(self):
        query = line_query(3)
        database = matching_database(
            query, n=6, rng=0, identity_atoms=["S2"]
        )
        assert database["S2"].tuples == tuple(
            (i, i) for i in range(1, 7)
        )
        assert database["S1"].is_matching()

    def test_expected_answer_count_matches_lemma_34(self):
        """Empirical check of E[|q(I)|] = n^{1+chi} for L3 and C3."""
        from repro.algorithms.localjoin import evaluate_query

        n, trials = 64, 30
        line = line_query(3)
        counts = []
        for seed in range(trials):
            database = matching_database(line, n=n, rng=seed)
            counts.append(
                len(
                    evaluate_query(
                        line,
                        {r.name: r.tuples for r in database},
                    )
                )
            )
        # chi(L3) = 0: |q(I)| is exactly n for every matching input.
        assert all(count == n for count in counts)

        triangle = cycle_query(3)
        total = 0
        for seed in range(trials):
            database = matching_database(triangle, n=n, rng=seed)
            total += len(
                evaluate_query(
                    triangle, {r.name: r.tuples for r in database}
                )
            )
        # chi(C3) = -1: expected 1 answer; allow generous slack.
        assert total / trials < 5
